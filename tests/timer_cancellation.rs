//! Cancelled timers must vanish from the event stream: a TCP session arms
//! a retransmit/keepalive timer per segment and cancels it on ACK, so a
//! healthy transfer should cancel far more timers than it lets fire — and
//! none of the cancelled ones may ever be dispatched (they used to fire
//! into guard code, inflating event counts and run_until_idle budgets).

use mobility4x4::mip_core::scenario::{build, ChKind, ScenarioConfig};
use mobility4x4::netsim::SimDuration;
use mobility4x4::transport::apps::{KeystrokeSession, TcpEchoServer};

#[test]
fn acked_tcp_segments_cancel_their_timers() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(200),
        25,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(30));

    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    assert!(
        sess.broken.is_none() && sess.all_echoed(),
        "session must complete cleanly: typed {} echoed {} broken {:?}",
        sess.typed(),
        sess.echoed,
        sess.broken
    );

    let stats = s.world.scheduler_stats();
    // Every ACKed segment cancels its RTO timer; with 25 round trips the
    // cancel count dwarfs any timer that legitimately fired.
    assert!(
        stats.cancelled >= 25,
        "expected many cancelled TCP timers, got {stats:?}"
    );
    // Cancelled events were never dispatched: the books balance exactly,
    // with cancelled ones absent from the dispatch count.
    assert_eq!(
        stats.dispatched + stats.cancelled + s.world.pending_events() as u64,
        stats.pushed,
        "every push is dispatched, cancelled, or still pending: {stats:?}"
    );
    assert!(
        stats.dispatched < stats.pushed,
        "cancellation must reduce dispatched events: {stats:?}"
    );
}
