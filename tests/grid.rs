//! The headline integration test: the empirical 4x4 grid must agree with
//! Figure 10 cell-for-cell — every unshaded and light-shaded combination
//! completes a TCP conversation; every dark cell breaks it.

use mobility4x4::mip_core::{CellClass, InMode, OutMode};

#[test]
fn all_sixteen_cells_match_figure_10() {
    let grid = bench::experiments::fig10_grid::run();
    assert_eq!(grid.cells.len(), 16);
    let mut mismatches = Vec::new();
    for cell in &grid.cells {
        let expected_to_work = cell.paper_class.works();
        if cell.works != expected_to_work {
            mismatches.push(format!(
                "{}: measured works={} but paper says {:?}",
                cell.combo, cell.works, cell.paper_class
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "grid disagrees with the paper:\n{}\n\n{}",
        mismatches.join("\n"),
        grid.table
    );
    // Structural spot checks.
    let count = |class: CellClass| grid.cells.iter().filter(|c| c.paper_class == class).count();
    assert_eq!(count(CellClass::Useful), 7);
    assert_eq!(count(CellClass::ValidButUnused), 3);
    assert_eq!(count(CellClass::Broken), 6);
    // The working cells deliver every keystroke, not just some.
    for cell in &grid.cells {
        if cell.works {
            assert_eq!(cell.keystrokes_echoed, 5, "{}", cell.combo);
        }
    }
    let _ = (InMode::ALL, OutMode::ALL);
}
