//! The timing wheel must be observationally identical to the reference
//! heap across every experiment world in the repository: same tables, same
//! metrics, same packet-lifecycle spans, byte for byte.
//!
//! This is deliberately the ONLY test in this binary: it flips the
//! process-global default scheduler, and cargo runs test binaries
//! sequentially but tests within a binary in parallel.

use bench::experiments::run_all_with;
use bench::report;
use mobility4x4::netsim::{set_default_scheduler, SchedulerKind};

#[test]
fn all_experiment_worlds_are_byte_identical_across_schedulers() {
    report::enable();

    set_default_scheduler(SchedulerKind::Wheel);
    let wheel_tables = run_all_with(1);
    let wheel =
        serde_json::to_string(&report::build("all_experiments", &wheel_tables)).expect("serialize");

    set_default_scheduler(SchedulerKind::ReferenceHeap);
    let heap_tables = run_all_with(1);
    let heap =
        serde_json::to_string(&report::build("all_experiments", &heap_tables)).expect("serialize");
    set_default_scheduler(SchedulerKind::Wheel);

    assert_eq!(
        wheel_tables.len(),
        heap_tables.len(),
        "experiment count diverged"
    );
    assert_eq!(
        serde_json::to_string(&wheel_tables).unwrap(),
        serde_json::to_string(&heap_tables).unwrap(),
        "experiment tables diverged between schedulers"
    );
    assert_eq!(wheel, heap, "run reports diverged between schedulers");
}
