//! The parallel experiment runner must be a pure wall-clock optimisation:
//! same tables, same run report, byte for byte, at any worker count.

use bench::experiments::{pool_map, run_all_with};
use bench::report;

#[test]
fn pool_map_preserves_job_order() {
    let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
        .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
        .collect();
    let expect: Vec<usize> = (0..20usize).map(|i| i * i).collect();
    assert_eq!(pool_map(jobs, 4), expect);
}

#[test]
fn pool_map_handles_degenerate_thread_counts() {
    for threads in [0, 1, 7, 64] {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = (0..3)
            .map(|i| Box::new(move || i - 1) as Box<dyn FnOnce() -> i32 + Send>)
            .collect();
        assert_eq!(pool_map(jobs, threads), vec![-1, 0, 1], "threads={threads}");
    }
    let none: Vec<Box<dyn FnOnce() -> i32 + Send>> = Vec::new();
    assert_eq!(pool_map(none, 8), Vec::<i32>::new());
}

#[test]
fn parallel_run_report_is_byte_identical_to_serial() {
    report::enable();
    let serial_tables = run_all_with(1);
    let serial = serde_json::to_string(&report::build("all_experiments", &serial_tables))
        .expect("serializable");
    let parallel_tables = run_all_with(4);
    let parallel = serde_json::to_string(&report::build("all_experiments", &parallel_tables))
        .expect("serializable");
    assert_eq!(
        serde_json::to_string(&serial_tables).unwrap(),
        serde_json::to_string(&parallel_tables).unwrap(),
        "tables diverged between serial and parallel runs"
    );
    assert_eq!(serial, parallel, "run reports diverged");
}
