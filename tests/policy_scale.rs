//! Policy-engine-at-scale invariants, end to end:
//!
//! * below capacity, the capped-LRU method cache is *observationally
//!   identical* to an unbounded one — same mode for every decision, same
//!   transitions, same audit trail, byte for byte (property test);
//! * the E18 policy miss storm — and with it eviction order — is
//!   deterministic across 1, 2 and 4 shards;
//! * a million-entry cache at steady state (driven by a 2×-capacity miss
//!   storm, so eviction churn is part of the measurement) stays within
//!   its compact-SoA memory budget of 64 B per correspondent, measured
//!   by the counting allocator's live-byte gauge.
//!
//! The shard and memory tests flip process-global state (default shard
//! count, the live-byte gauge), so they serialize on one lock.

use std::sync::Mutex;

use bench::scale::{build_world, run_churn, ChurnParams, ScaleParams};
use mobility4x4::mip_core::{AuditTrail, Policy, PolicyConfig, Transition};
use mobility4x4::netsim::{self, set_default_shards, Ipv4Addr, SimTime};
use proptest::prelude::*;

static GLOBAL: Mutex<()> = Mutex::new(());

/// One scripted policy op against a small correspondent population.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `mode_for(addr)` — decide (and cache) the method.
    Decide(u8),
    /// `record_feedback(addr, retransmission)`.
    Feedback(u8, bool),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..24, 0u8..4).prop_map(|(a, kind)| match kind {
            0 | 1 => Op::Decide(a),
            2 => Op::Feedback(a, true),
            _ => Op::Feedback(a, false),
        }),
        1..200,
    )
}

fn addr(i: u8) -> Ipv4Addr {
    Ipv4Addr(0x0A63_0000 | u32::from(i))
}

/// Replay `ops` against a policy with the given cache cap (`0` =
/// unbounded) and fingerprint everything observable: every decision,
/// every transition, and the serialized audit trail.
fn replay(cache_cap: usize, ops: &[Op]) -> (Vec<String>, Vec<Option<Transition>>, String) {
    let mut p = Policy::new(PolicyConfig {
        cache_cap,
        ..PolicyConfig::optimistic()
    });
    let mut modes = Vec::new();
    let mut transitions = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        p.audit.set_now(SimTime(i as u64));
        match *op {
            Op::Decide(a) => modes.push(p.mode_for(addr(a)).to_string()),
            Op::Feedback(a, retrans) => transitions.push(p.record_feedback(addr(a), retrans)),
        }
    }
    assert_eq!(
        p.cache_stats().evictions,
        0,
        "population (≤24) stays below every cap under test"
    );
    let audit = serde_json::to_string(&p.audit).expect("serialize audit");
    (modes, transitions, audit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// While the correspondent population fits in the cache, the capped
    /// LRU engine and an unbounded cache make byte-identical decisions —
    /// eviction is the ONLY behavioural difference capacity introduces.
    #[test]
    fn capped_lru_matches_unbounded_below_capacity(ops in arb_ops()) {
        let unbounded = replay(0, &ops);
        for cap in [32usize, 64, 4096] {
            let capped = replay(cap, &ops);
            prop_assert_eq!(&unbounded.0, &capped.0, "modes diverged at cap {}", cap);
            prop_assert_eq!(&unbounded.1, &capped.1, "transitions diverged at cap {}", cap);
            prop_assert_eq!(&unbounded.2, &capped.2, "audit diverged at cap {}", cap);
        }
    }
}

/// Fingerprint a full churn run (with the policy miss storm on) at a
/// given shard count.
fn churn_fingerprint(shards: usize) -> String {
    set_default_shards(shards);
    let params = ScaleParams {
        seed: 42,
        ..ScaleParams::with_hosts(500)
    };
    let churn = ChurnParams {
        correspondents: 2_048,
        ..ChurnParams::default()
    };
    let (mut w, ix) = build_world(&params);
    let stats = run_churn(&mut w, &ix, &churn);
    format!("{stats:?}")
}

#[test]
fn policy_storm_is_deterministic_across_shard_counts() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let serial = churn_fingerprint(1);
    assert!(serial.contains("PolicyStormStats"), "storm must have run");
    for shards in [2usize, 4] {
        assert_eq!(
            serial,
            churn_fingerprint(shards),
            "storm outcome (incl. eviction-order-dependent counts) diverged at {shards} shards"
        );
    }
    set_default_shards(1);
}

#[test]
fn million_entry_cache_stays_within_byte_budget() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    // Debug builds pay the same allocation *sizes* but much more time per
    // op, so they stress a tenth of the release-mode population; the
    // per-entry budget is identical.
    let cap: usize = if cfg!(debug_assertions) {
        100_000
    } else {
        1_000_000
    };
    let mut p = Policy::new(PolicyConfig {
        cache_cap: cap,
        ..PolicyConfig::optimistic()
    });
    // The trail is for explainability, not bulk storage; drop it from the
    // measurement so the number reported is the cache engine's own cost.
    p.audit = AuditTrail::with_capacity(0);

    let before = netsim::profile::live_bytes();
    // 2× capacity of distinct correspondents: the second half runs at
    // steady state, every insert paired with an LRU eviction, so the
    // measurement includes eviction churn, not just a freshly-filled
    // slab.
    for i in 0..(2 * cap) {
        p.mode_for(Ipv4Addr(0x1000_0000u32.wrapping_add(i as u32)));
    }
    let live = netsim::profile::live_bytes() - before;

    let stats = p.cache_stats();
    assert_eq!(stats.len as usize, cap, "cache pinned at capacity");
    assert_eq!(stats.evictions as usize, cap, "second half all evicted");
    let per_entry = live / cap as i64;
    assert!(
        per_entry <= 64,
        "steady-state method cache costs {per_entry} B/entry (budget 64, live {live} B for {cap} entries)"
    );
}
