//! Scale-tentpole invariants, end to end: the hierarchical generator is
//! deterministic — same seed, same world, byte for byte, at 1, 2, and 4
//! shards — and memory-compact: a hundred-thousand-host world costs at
//! most 1 KiB of live heap per host, through build and a handoff storm.
//!
//! Both tests flip process-global state (the default shard count and the
//! counting allocator's live-byte gauge), so they serialize on one lock.

use std::sync::Mutex;

use bench::report;
use bench::scale::{build_world, run_churn, ChurnParams, ScaleParams};
use mobility4x4::netsim::{self, set_default_shards};

static GLOBAL: Mutex<()> = Mutex::new(());

/// Build a seeded world at a shard count, run the full churn workload,
/// and fingerprint everything observable: the world snapshot (nodes,
/// routes, bindings) and the churn outcome.
fn fingerprint(shards: usize, params: &ScaleParams, churn: &ChurnParams) -> (String, String) {
    set_default_shards(shards);
    let (mut w, ix) = build_world(params);
    let stats = run_churn(&mut w, &ix, churn);
    let snap = serde_json::to_string(&report::world_snapshot(&w)).expect("serialize snapshot");
    (snap, format!("{stats:?}"))
}

#[test]
fn seeded_generator_is_byte_identical_across_shard_counts() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let params = ScaleParams {
        seed: 42,
        ..ScaleParams::with_hosts(500)
    };
    let churn = ChurnParams::default();

    let serial = fingerprint(1, &params, &churn);
    let again = fingerprint(1, &params, &churn);
    assert_eq!(serial, again, "same seed must reproduce the same world");

    for shards in [2usize, 4] {
        let sharded = fingerprint(shards, &params, &churn);
        assert_eq!(
            serial.0, sharded.0,
            "world snapshot diverged at {shards} shards"
        );
        assert_eq!(
            serial.1, sharded.1,
            "churn outcome diverged at {shards} shards"
        );
    }
    set_default_shards(1);
}

#[test]
fn big_world_stays_under_a_kib_per_host() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_default_shards(1);
    // Debug builds pay the same allocation *sizes* but ~20× the build
    // time, so they check an eighth of the release-mode world — at the
    // same hosts-per-stub density, since the budget amortizes each
    // stub's segment and router-interface overhead over its residents.
    let params = if cfg!(debug_assertions) {
        ScaleParams {
            backbones: 2,
            transits_per_backbone: 4,
            stubs_per_transit: 8,
            hosts_per_stub: 196,
            seed: 1,
        }
    } else {
        ScaleParams {
            seed: 1,
            ..ScaleParams::with_hosts(100_000)
        }
    };

    let before = netsim::profile::live_bytes();
    let (mut w, ix) = build_world(&params);
    // Full packet tracing is a debugging aid; scale runs sample flows
    // instead (see the telemetry knobs), so the budget excludes it.
    w.trace.set_enabled(false);
    let built = netsim::profile::live_bytes() - before;
    let n = ix.hosts.len() as i64;

    let storm = ChurnParams {
        handoffs: 64,
        flash_crowd: 0,
        rereg: 0,
        lifetime: 300,
        correspondents: 0,
    };
    let stats = run_churn(&mut w, &ix, &storm);
    assert_eq!(stats.handoffs, 64, "storm must actually run");
    let steady = netsim::profile::live_bytes() - before;

    assert!(
        built / n <= 1024,
        "freshly built world costs {} B/host (budget 1024)",
        built / n
    );
    assert!(
        steady / n <= 1024,
        "world after a handoff storm costs {} B/host (budget 1024)",
        steady / n
    );
}
