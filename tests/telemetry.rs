//! Integration tests for the scale-ready telemetry layer: bounded-memory
//! sketched metrics at 10⁵-node / 10⁶-flow scale, exact/sketched agreement
//! below the collapse threshold, deterministic sampled run reports, and
//! the guarantee that invariant monitoring never perturbs default report
//! bytes.

use bytes::Bytes;
use proptest::prelude::*;

use mobility4x4::netsim::{
    HostConfig, IpProtocol, Ipv4Addr, Ipv4Packet, LinkConfig, MetricsRegistry, NodeId,
    RouterConfig, SimDuration, SimTime, SketchConfig, TelemetryConfig, TraceEventKind, World,
};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// Two LANs joined by a WAN hop — the same topology the metrics-overhead
/// benchmarks drive, small enough for proptest to rebuild repeatedly.
fn ping_world() -> (World, NodeId) {
    let mut w = World::new(1);
    let lan_a = w.add_segment(LinkConfig::lan());
    let mid = w.add_segment(LinkConfig::wan(10));
    let lan_b = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    let r1 = w.add_router(RouterConfig::named("r1"));
    let r2 = w.add_router(RouterConfig::named("r2"));
    w.attach(a, lan_a, Some("10.0.1.10/24"));
    w.attach(r1, lan_a, Some("10.0.1.1/24"));
    w.attach(r1, mid, Some("192.168.0.1/30"));
    w.attach(r2, mid, Some("192.168.0.2/30"));
    w.attach(r2, lan_b, Some("10.0.2.1/24"));
    w.attach(b, lan_b, Some("10.0.2.10/24"));
    w.compute_routes();
    (w, a)
}

fn drive(w: &mut World, a: NodeId) {
    for seq in 0..32u16 {
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq)
        });
    }
    w.run_until_idle(10_000_000);
}

/// Splitmix-style generator so proptest shrinks over one seed, not a
/// vector of events.
fn next(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

/// The tentpole scale claim: with sketched mode armed, a registry fed by
/// 100 000 distinct nodes and 1 000 000 distinct flows holds only the
/// fixed-size sketch state — dense per-node storage is gone, aggregate
/// totals stay exact, and every sketch respects its configured capacity.
#[test]
fn sketched_registry_bounds_memory_at_100k_nodes_1m_flows() {
    const NODES: usize = 100_000;
    const EVENTS: usize = 1_000_000;
    let cfg = SketchConfig {
        node_threshold: 1_000,
        topk: 64,
        reservoir: 128,
        seed: 7,
    };
    let mut reg = MetricsRegistry::new(true);
    reg.arm_sketch(cfg);
    let payload = Bytes::from_static(b"stress");
    for i in 0..EVENTS {
        let node = NodeId(i % NODES);
        // (i % 2^16, i / 2^16) is a bijection on 0..2^20, so every event
        // carries a distinct (src, dst) pair: one million distinct flows.
        let src = Ipv4Addr(0x0a00_0000 | (i as u32 & 0xffff));
        let dst = Ipv4Addr(0x0b00_0000 | (i as u32 >> 16));
        let pkt = Ipv4Packet::new(src, dst, IpProtocol::Udp, payload.clone());
        reg.record_packet(node, TraceEventKind::Sent, &pkt);
        if i.is_multiple_of(997) {
            reg.record_tcp_rtt(node, SimDuration::from_micros(1 + (i as u64 % 50_000)));
        }
    }
    assert!(
        reg.is_sketched(),
        "threshold crossed, registry must collapse"
    );
    // Dense storage is released on collapse: bounded memory means no
    // per-node or per-segment vectors survive at this scale.
    assert_eq!(reg.node_ids().count(), 0);
    assert_eq!(reg.segment_ids().count(), 0);
    let sk = reg.sketched().unwrap();
    assert!(sk.node_hitters.len() <= cfg.topk);
    assert!(sk.flow_hitters.len() <= cfg.topk);
    assert!(sk.rtt_exemplars.items().len() <= cfg.reservoir);
    // Aggregate totals survive the collapse exactly.
    assert_eq!(sk.totals.packets_sent, EVENTS as u64);
    assert_eq!(reg.totals().packets_sent, EVENTS as u64);
    // With a million distinct flows no single flow is heavy, so the
    // sketch must admit it is over-approximating.
    assert!(!sk.flow_hitters.is_exact());
    // Every surviving heavy-hitter estimate stays within the Space-Saving
    // error bound: count ≤ true + error, and error ≤ stream/k.
    for e in sk.flow_hitters.top() {
        assert!(e.error <= EVENTS as u64 / cfg.topk as u64 + 1);
    }
}

/// Monitoring must observe, never perturb: the exact same scenario run
/// with and without the invariant monitor produces byte-identical report
/// snapshots (and the monitored run is clean).
#[test]
fn invariant_monitoring_leaves_default_report_bytes_untouched() {
    let (mut w1, a1) = ping_world();
    w1.enable_metrics();
    drive(&mut w1, a1);
    let plain = serde_json::to_string(&bench::report::world_snapshot(&w1)).unwrap();

    let (mut w2, a2) = ping_world();
    w2.enable_metrics();
    w2.enable_invariants();
    drive(&mut w2, a2);
    assert!(!w2.has_invariant_violations());
    let monitored = serde_json::to_string(&bench::report::world_snapshot(&w2)).unwrap();

    assert_eq!(plain, monitored);
    assert!(!monitored.contains("\"sampling\""));
    assert!(!monitored.contains("\"invariants\""));
}

/// One ping at a time, each completing before the next: a healthy run
/// with no drops, so nothing promotes the flow and sampling decisions
/// stand. `telemetry` is `(rate, seed)` when sampling.
fn paced_run(telemetry: Option<(u64, u64)>) -> World {
    let (mut w, a) = ping_world();
    w.enable_metrics();
    w.enable_invariants();
    if let Some((rate, seed)) = telemetry {
        w.apply_telemetry(&TelemetryConfig {
            sample_flows: Some(rate),
            seed,
            ..TelemetryConfig::default()
        });
    }
    for seq in 0..8u16 {
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq)
        });
        w.run_until_idle(10_000_000);
    }
    w
}

/// The sampling decision is a seeded hash per flow; scan for a seed whose
/// draw suppresses the scenario's ping flow. The claims under test are
/// about what suppression does and does not change, not which seed
/// suppresses.
fn suppressing_seed(rate: u64) -> u64 {
    (0..64)
        .find(|&seed| paced_run(Some((rate, seed))).trace.suppressed_events() > 0)
        .expect("some seed in 0..64 suppresses the ping flow")
}

/// Flow sampling drops trace events, never metrics: a sampled run's
/// counters match the full-fidelity run's exactly, and the report says
/// how much was suppressed.
#[test]
fn sampling_preserves_metrics_and_reports_suppression() {
    let full = paced_run(None);
    let sampled = paced_run(Some((4, suppressing_seed(4))));

    assert!(sampled.trace.suppressed_events() > 0);
    assert!(sampled.trace.events().len() < full.trace.events().len());
    let (f, s) = (full.metrics.totals(), sampled.metrics.totals());
    assert_eq!(f.packets_sent, s.packets_sent);
    assert_eq!(f.packets_delivered, s.packets_delivered);
    assert_eq!(f.packets_forwarded, s.packets_forwarded);
    assert!(!sampled.has_invariant_violations());
}

/// Anomalies override sampling: a burst of pings overflows the ARP
/// pending queue, the resulting drops promote the flow, and a seed that
/// would have suppressed it captures the anomaly in full anyway.
#[test]
fn anomalous_flows_are_promoted_past_sampling() {
    let seed = suppressing_seed(4);
    let (mut w, a) = ping_world();
    w.enable_metrics();
    w.enable_invariants();
    w.apply_telemetry(&TelemetryConfig {
        sample_flows: Some(4),
        seed,
        ..TelemetryConfig::default()
    });
    drive(&mut w, a); // burst: all 32 pings queued at once
    assert!(w.trace.promoted_flows() > 0, "drops must promote the flow");
    assert!(
        w.trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Dropped(_))),
        "the anomaly itself must be captured"
    );
}

fn sampled_snapshot(seed: u64, rate: u64) -> String {
    let (mut w, a) = ping_world();
    w.enable_metrics();
    w.enable_invariants();
    w.apply_telemetry(&TelemetryConfig {
        sample_flows: Some(rate),
        seed,
        ..TelemetryConfig::default()
    });
    drive(&mut w, a);
    serde_json::to_string(&bench::report::world_snapshot(&w)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same world, same sampling knobs → byte-identical
    /// sampled run-report snapshots. Sampling decisions are pure
    /// functions of (seed, flow id), never of wall clock or allocation
    /// order.
    #[test]
    fn sampled_run_reports_are_deterministic(seed in any::<u64>(), rate in 1u64..8) {
        prop_assert_eq!(sampled_snapshot(seed, rate), sampled_snapshot(seed, rate));
    }

    /// Below the node threshold an armed registry never collapses, and
    /// its per-node counters and snapshot bytes agree with an exact
    /// (unarmed) registry fed the identical stream.
    #[test]
    fn exact_and_sketched_agree_below_threshold(seed in any::<u64>(), events in 1usize..256) {
        let mut exact = MetricsRegistry::new(true);
        let mut armed = MetricsRegistry::new(true);
        armed.arm_sketch(SketchConfig {
            node_threshold: 64,
            topk: 8,
            reservoir: 8,
            seed,
        });
        let mut x = seed | 1;
        let payload = Bytes::from_static(b"agree");
        for _ in 0..events {
            let r = next(&mut x);
            let node = NodeId((r >> 32) as usize % 32); // stays below threshold
            let pkt = Ipv4Packet::new(
                Ipv4Addr((r >> 16) as u32),
                Ipv4Addr(r as u32),
                IpProtocol::Udp,
                payload.clone(),
            );
            let kind = match r % 3 {
                0 => TraceEventKind::Sent,
                1 => TraceEventKind::Forwarded,
                _ => TraceEventKind::DeliveredLocal,
            };
            exact.record_packet(node, kind, &pkt);
            armed.record_packet(node, kind, &pkt);
            if r.is_multiple_of(5) {
                exact.record_tcp_rtt(node, SimDuration::from_micros(r % 10_000));
                armed.record_tcp_rtt(node, SimDuration::from_micros(r % 10_000));
            }
        }
        prop_assert!(!armed.is_sketched());
        for i in 0..32 {
            prop_assert_eq!(
                exact.node(NodeId(i)).packets_sent,
                armed.node(NodeId(i)).packets_sent
            );
            prop_assert_eq!(
                exact.node(NodeId(i)).packets_delivered,
                armed.node(NodeId(i)).packets_delivered
            );
        }
        let owned: Vec<String> = (0..32).map(|i| format!("n{i}")).collect();
        let names: Vec<&str> = owned.iter().map(|s| s.as_str()).collect();
        let ex = serde_json::to_string(&exact.snapshot(&names, SimTime::ZERO)).unwrap();
        let ar = serde_json::to_string(&armed.snapshot(&names, SimTime::ZERO)).unwrap();
        prop_assert_eq!(ex, ar);
    }
}
