//! Sharded execution must be observationally identical to serial
//! execution across every experiment world in the repository: same
//! tables, same metrics, same packet-lifecycle spans, byte for byte.
//!
//! The sweep test flips the process-global default shard count, so it is
//! kept apart from the per-world property test below, which only ever
//! builds worlds through `World::with_shards` (explicit counts) and is
//! therefore immune to the global.

use bench::experiments::run_all_with;
use bench::report;
use mobility4x4::netsim::{set_default_shards, HostConfig, LinkConfig, RouterConfig, World};
use proptest::prelude::*;

#[test]
fn all_experiment_worlds_are_byte_identical_across_shard_counts() {
    report::enable();

    set_default_shards(1);
    let serial_tables = run_all_with(1);
    let serial = serde_json::to_string(&report::build("all_experiments", &serial_tables))
        .expect("serialize");

    for shards in [2usize, 4] {
        set_default_shards(shards);
        let sharded_tables = run_all_with(1);
        let sharded = serde_json::to_string(&report::build("all_experiments", &sharded_tables))
            .expect("serialize");
        assert_eq!(
            serial_tables.len(),
            sharded_tables.len(),
            "experiment count diverged at {shards} shards"
        );
        assert_eq!(
            serde_json::to_string(&serial_tables).unwrap(),
            serde_json::to_string(&sharded_tables).unwrap(),
            "experiment tables diverged at {shards} shards"
        );
        assert_eq!(serial, sharded, "run reports diverged at {shards} shards");
    }
    set_default_shards(1);
}

/// One scripted injection: which host sends, at what absolute time, with
/// what ICMP sequence number. Equal times across senders are the point —
/// they force same-timestamp events on both sides of the shard border.
#[derive(Debug, Clone, Copy)]
struct Send {
    from_a: bool,
    at_us: u64,
    seq: u16,
}

fn arb_sends() -> impl Strategy<Value = Vec<Send>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..6, any::<u16>()).prop_map(|(from_a, slot, seq)| Send {
            from_a,
            // A handful of coarse slots so distinct ops routinely land on
            // the same timestamp from both sides of the border.
            at_us: slot * 500,
            seq,
        }),
        1..12,
    )
}

/// Run the scripted workload on the two-LAN-and-router world at a given
/// shard count and fingerprint everything observable.
fn run_script(shards: usize, sends: &[Send]) -> (u64, usize, String, String) {
    let mut w = World::with_shards(7, shards);
    let lan_a = w.add_segment(LinkConfig::lan());
    let lan_b = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    let r = w.add_router(RouterConfig::named("r"));
    w.attach(a, lan_a, Some("10.0.1.10/24"));
    w.attach(b, lan_b, Some("10.0.2.10/24"));
    w.attach(r, lan_a, Some("10.0.1.1/24"));
    w.attach(r, lan_b, Some("10.0.2.1/24"));
    w.compute_routes();
    w.enable_metrics();
    w.enable_invariants();

    let ip_a: mobility4x4::netsim::Ipv4Addr = "10.0.1.10".parse().unwrap();
    let ip_b: mobility4x4::netsim::Ipv4Addr = "10.0.2.10".parse().unwrap();
    let mut ordered: Vec<Send> = sends.to_vec();
    ordered.sort_by_key(|s| s.at_us);
    for s in ordered {
        w.run_until(mobility4x4::netsim::SimTime(s.at_us));
        let (node, src, dst) = if s.from_a {
            (a, ip_a, ip_b)
        } else {
            (b, ip_b, ip_a)
        };
        w.host_do(node, |h, ctx| h.send_ping(ctx, src, dst, s.seq));
    }
    w.run_until_idle(200_000);
    assert!(!w.has_invariant_violations(), "shards={shards}");

    let names = w.node_names();
    let now = w.now();
    let metrics = serde_json::to_string(&w.metrics.snapshot(&names, now)).unwrap();
    let trace: Vec<String> = w
        .trace
        .events()
        .iter()
        .map(|e| format!("{:?}", e))
        .collect();
    (now.0, w.trace.events().len(), metrics, trace.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-shard sends interleaved at equal timestamps replay in the
    /// same global order as the serial scheduler: time, trace (events and
    /// their order), and metrics all match at 2 and 4 shards.
    #[test]
    fn interleaved_equal_timestamp_sends_match_serial(sends in arb_sends()) {
        let serial = run_script(1, &sends);
        for shards in [2usize, 4] {
            let sharded = run_script(shards, &sends);
            prop_assert_eq!(serial.0, sharded.0, "now diverged at {} shards", shards);
            prop_assert_eq!(serial.1, sharded.1, "trace len diverged at {} shards", shards);
            prop_assert_eq!(&serial.2, &sharded.2, "metrics diverged at {} shards", shards);
            prop_assert_eq!(&serial.3, &sharded.3, "trace diverged at {} shards", shards);
        }
    }
}
