//! Property-based tests (proptest) on the wire formats and core
//! invariants: these are the data structures everything else stands on, so
//! they get adversarial random inputs, not just examples.

use bytes::Bytes;
use proptest::prelude::*;

use mobility4x4::mip_core::{classify, CellClass, Combination, InMode, OutMode};
use mobility4x4::netsim::wire::arp::ArpPacket;
use mobility4x4::netsim::wire::encap::{decapsulate, encapsulate, EncapFormat};
use mobility4x4::netsim::wire::ethernet::{EtherType, EthernetFrame, MacAddr};
use mobility4x4::netsim::wire::icmp::IcmpMessage;
use mobility4x4::netsim::wire::ipv4::{IpProtocol, Ipv4Packet, Reassembler};
use mobility4x4::netsim::wire::tcpseg::{TcpFlags, TcpSegment};
use mobility4x4::netsim::wire::udp::UdpDatagram;
use mobility4x4::netsim::{Ipv4Addr, Ipv4Cidr, SimTime};

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr)
}

fn arb_proto() -> impl Strategy<Value = IpProtocol> {
    any::<u8>().prop_map(IpProtocol::from_number)
}

prop_compose! {
    fn arb_packet()(
        src in arb_addr(),
        dst in arb_addr(),
        proto in arb_proto(),
        tos in any::<u8>(),
        ident in any::<u16>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) -> Ipv4Packet {
        let mut p = Ipv4Packet::new(src, dst, proto, Bytes::from(payload));
        p.tos = tos;
        p.ident = ident;
        p.ttl = ttl;
        p
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ipv4_emit_parse_roundtrip(p in arb_packet()) {
        let parsed = Ipv4Packet::parse(&p.emit()).unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn ipv4_single_bit_corruption_in_header_is_detected(
        p in arb_packet(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let mut wire = p.emit().to_vec();
        wire[byte] ^= 1 << bit;
        // Either the parse fails (checksum/structure) or — when the flip
        // hits the checksum-compensating position pair — the packet parses
        // to something; it must never parse back to a DIFFERENT packet
        // silently claiming to be the original.
        if let Ok(q) = Ipv4Packet::parse(&wire) {
            // A successful parse after a header flip can only happen if the
            // flip landed in the checksum field itself in a way that still
            // verifies — impossible for a single bit — so:
            prop_assert_eq!(q, p, "corrupted header parsed as a different packet");
        }
    }

    #[test]
    fn fragmentation_reassembly_roundtrip(
        p in arb_packet(),
        mtu in 68usize..1600,
    ) {
        prop_assume!(!p.payload.is_empty());
        let frags = p.fragment(mtu).unwrap();
        for f in &frags {
            prop_assert!(f.wire_len() <= mtu);
        }
        let mut r = Reassembler::default();
        let mut out = None;
        for f in &frags {
            out = r.push(f.clone(), SimTime::ZERO);
        }
        prop_assert_eq!(out.unwrap(), p);
    }

    #[test]
    fn fragmentation_reassembly_out_of_order_with_duplicates(
        p in arb_packet(),
        mtu in 256usize..900,
        order in proptest::collection::vec(any::<u16>(), 1..32),
    ) {
        prop_assume!(p.payload.len() > 64);
        let frags = p.fragment(mtu).unwrap();
        let mut r = Reassembler::default();
        let mut done = None;
        // Feed fragments in a scrambled order with duplicates, then fill in
        // whatever is missing.
        for &ix in &order {
            let f = &frags[ix as usize % frags.len()];
            if let Some(d) = r.push(f.clone(), SimTime::ZERO) {
                done = Some(d);
            }
        }
        for f in &frags {
            if done.is_none() {
                done = r.push(f.clone(), SimTime::ZERO);
            }
        }
        prop_assert_eq!(done.unwrap(), p);
    }

    #[test]
    fn udp_roundtrip_and_checksum_binding(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        other in arb_addr(),
    ) {
        let d = UdpDatagram::new(sp, dp, Bytes::from(payload));
        let wire = d.emit(src, dst);
        prop_assert_eq!(UdpDatagram::parse(&wire, src, dst).unwrap(), d);
        if other != dst {
            prop_assert!(UdpDatagram::parse(&wire, src, other).is_err(),
                "datagram must be bound to its addresses");
        }
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        syn in any::<bool>(), ackf in any::<bool>(), fin in any::<bool>(),
        psh in any::<bool>(), window in any::<u16>(),
        mss in proptest::option::of(536u16..9000),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let seg = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags { syn, ack: ackf, fin, rst: false, psh },
            window,
            mss: if syn { mss } else { None },
            payload: Bytes::from(payload),
        };
        let wire = seg.emit(src, dst);
        prop_assert_eq!(TcpSegment::parse(&wire, src, dst).unwrap(), seg);
    }

    #[test]
    fn encapsulation_roundtrip_every_format(
        p in arb_packet(),
        outer_src in arb_addr(),
        outer_dst in arb_addr(),
        ident in any::<u16>(),
    ) {
        for f in [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre] {
            prop_assume!(p.wire_len() + f.overhead() <= 65_535);
            let outer = encapsulate(f, outer_src, outer_dst, &p, ident).unwrap();
            prop_assert_eq!(outer.src, outer_src);
            prop_assert_eq!(outer.dst, outer_dst);
            prop_assert_eq!(outer.wire_len(), p.wire_len() + f.overhead());
            let inner = decapsulate(&outer).unwrap();
            // Minimal encapsulation reconstructs the header rather than
            // carrying it, so compare the semantically-preserved fields.
            prop_assert_eq!(inner.src, p.src);
            prop_assert_eq!(inner.dst, p.dst);
            prop_assert_eq!(inner.protocol, p.protocol);
            prop_assert_eq!(&inner.payload, &p.payload);
            if f != EncapFormat::Minimal {
                prop_assert_eq!(inner, p.clone());
            }
        }
    }

    #[test]
    fn ethernet_roundtrip(
        dst in any::<[u8; 6]>(), src in any::<[u8; 6]>(),
        ethertype in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
    ) {
        let f = EthernetFrame::new(
            MacAddr(dst), MacAddr(src),
            EtherType::from_number(ethertype),
            Bytes::from(payload),
        );
        prop_assert_eq!(EthernetFrame::parse(&f.emit()).unwrap(), f);
    }

    #[test]
    fn arp_roundtrip(
        sha in any::<[u8; 6]>(), spa in arb_addr(),
        tha in any::<[u8; 6]>(), tpa in arb_addr(),
        is_reply in any::<bool>(),
    ) {
        let p = if is_reply {
            ArpPacket::reply(MacAddr(sha), spa, MacAddr(tha), tpa)
        } else {
            ArpPacket::request(MacAddr(sha), spa, tpa)
        };
        prop_assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn icmp_echo_roundtrip(
        ident in any::<u16>(), seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let m = IcmpMessage::EchoRequest { ident, seq, payload: Bytes::from(payload) };
        prop_assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn cidr_contains_is_consistent_with_masking(
        addr in arb_addr(),
        len in 0u8..=32,
        probe in arb_addr(),
    ) {
        let c = Ipv4Cidr::new(addr, len);
        prop_assert!(c.contains(addr), "a prefix contains its seed address");
        prop_assert_eq!(
            c.contains(probe),
            Ipv4Cidr::new(probe, len).network() == c.network()
        );
        prop_assert!(c.contains(c.broadcast()));
    }

    #[test]
    fn parse_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Ipv4Packet::parse(&data);
        let _ = EthernetFrame::parse(&data);
        let _ = ArpPacket::parse(&data);
        let _ = IcmpMessage::parse(&data);
        let _ = UdpDatagram::parse(&data, Ipv4Addr(0), Ipv4Addr(1));
        let _ = TcpSegment::parse(&data, Ipv4Addr(0), Ipv4Addr(1));
        let _ = mobility4x4::mip_core::RegistrationRequest::parse(&data);
        let _ = mobility4x4::mip_core::RegistrationReply::parse(&data);
    }

    #[test]
    fn grid_classification_invariants(inm in 0usize..4, outm in 0usize..4) {
        let c = Combination::new(InMode::ALL[inm], OutMode::ALL[outm]);
        let class = classify(c);
        // §6.5: a temporary-address endpoint on one side mandates it on the
        // other.
        let in_dt = c.incoming == InMode::DT;
        let out_dt = c.outgoing == OutMode::DT;
        if in_dt != out_dt {
            prop_assert_eq!(class, CellClass::Broken);
        }
        if in_dt && out_dt {
            prop_assert_eq!(class, CellClass::Useful);
        }
        // Everything in rows A-C with a home-address column at least works.
        if !in_dt && !out_dt {
            prop_assert!(class != CellClass::Broken);
        }
    }

    #[test]
    fn demote_promote_stay_on_ladder(start in 0usize..4, steps in proptest::collection::vec(any::<bool>(), 0..16)) {
        let mut m = OutMode::ALL[start];
        for up in steps {
            m = if up { m.promote() } else { m.demote() };
            // DT never appears spontaneously; IE..DH stay on the ladder.
            if OutMode::ALL[start] != OutMode::DT {
                prop_assert!(m != OutMode::DT);
            } else {
                prop_assert_eq!(m, OutMode::DT);
            }
        }
    }
}

proptest! {
    #[test]
    fn ipv4_options_roundtrip(
        p in arb_packet(),
        hops in proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr), 1..9),
    ) {
        use mobility4x4::netsim::wire::srcroute::SourceRoute;
        let mut pkt = p;
        pkt.set_options(&SourceRoute::new(&hops).emit());
        prop_assume!(pkt.wire_len() <= 65_535);
        let parsed = Ipv4Packet::parse(&pkt.emit()).unwrap();
        prop_assert_eq!(&parsed, &pkt);
        let route = SourceRoute::parse(&parsed.options).unwrap();
        prop_assert_eq!(route.hops, hops);
    }

    #[test]
    fn source_route_walk_terminates_and_records(
        hops in proptest::collection::vec(any::<u32>().prop_map(Ipv4Addr), 1..9),
    ) {
        use mobility4x4::netsim::wire::srcroute::SourceRoute;
        let mut r = SourceRoute::new(&hops);
        let mut visited = Vec::new();
        while let Some(next) = r.next_hop() {
            visited.push(next);
            r.advance(Ipv4Addr(0x7f00_0001));
        }
        prop_assert_eq!(visited, hops.clone());
        prop_assert!(r.next_hop().is_none());
        // Every slot now records the processing node.
        prop_assert!(r.hops.iter().all(|&h| h == Ipv4Addr(0x7f00_0001)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One packet, three observers: the trace, the metrics registry, and
    /// the links' own stats must tell the same byte-for-byte story for a
    /// random mix of packets — deliverable or not.
    #[test]
    fn trace_metrics_and_link_stats_agree_on_random_traffic(
        mix in proptest::collection::vec(
            (0usize..1200, any::<u8>(), any::<bool>(), any::<u16>()),
            1..24,
        ),
    ) {
        use mobility4x4::netsim::device::TxMeta;
        use mobility4x4::netsim::trace::TraceEventKind;
        use mobility4x4::netsim::{HostConfig, LinkConfig, World};

        let mut w = World::new(1);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.0.1/24"));
        w.attach(b, lan, Some("10.0.0.2/24"));
        w.compute_routes();
        w.enable_metrics();

        let src = "10.0.0.1".parse::<Ipv4Addr>().unwrap();
        for &(len, proto, to_bob, ident) in &mix {
            let dst = if to_bob {
                "10.0.0.2".parse::<Ipv4Addr>().unwrap()
            } else {
                // Nobody answers ARP for this address.
                "10.0.0.77".parse::<Ipv4Addr>().unwrap()
            };
            let mut p = Ipv4Packet::new(
                src,
                dst,
                IpProtocol::from_number(proto),
                Bytes::from(vec![0u8; len]),
            );
            p.ident = ident;
            w.host_do(a, |h, ctx| h.send_ip(ctx, p.clone(), TxMeta::default()));
        }
        w.run_until_idle(5_000_000);

        // Segment view: registry mirrors the link's own stats exactly.
        let stats = w.segment_stats(lan);
        let seg_m = w.metrics.segment(lan);
        prop_assert_eq!(seg_m.frames, stats.frames);
        prop_assert_eq!(seg_m.bytes, stats.bytes);
        prop_assert_eq!(seg_m.wire_drops, stats.fault_drops + stats.oversize_drops);
        prop_assert_eq!(seg_m.crc_drops, stats.crc_drops);

        // Node view: registry totals equal what the packet trace recorded,
        // event for event and byte for byte.
        let all = |_: &mobility4x4::netsim::trace::PacketSummary| true;
        let count = |kind: TraceEventKind| {
            w.trace.matching(all).filter(|e| e.kind == kind).count() as u64
        };
        let bytes_of = |kind: TraceEventKind| {
            w.trace
                .matching(all)
                .filter(|e| e.kind == kind)
                .map(|e| e.packet.wire_len as u64)
                .sum::<u64>()
        };
        let totals = w
            .metrics
            .node_ids()
            .map(|n| w.metrics.node(n).clone())
            .fold((0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64), |acc, m| {
                (
                    acc.0 + m.packets_sent,
                    acc.1 + m.bytes_sent,
                    acc.2 + m.packets_delivered,
                    acc.3 + m.bytes_delivered,
                    acc.4 + m.packets_forwarded,
                    acc.5 + m.bytes_forwarded,
                    acc.6 + m.total_drops(),
                )
            });
        prop_assert_eq!(totals.0, count(TraceEventKind::Sent));
        prop_assert_eq!(totals.1, bytes_of(TraceEventKind::Sent));
        prop_assert_eq!(totals.2, count(TraceEventKind::DeliveredLocal));
        prop_assert_eq!(totals.3, bytes_of(TraceEventKind::DeliveredLocal));
        prop_assert_eq!(totals.4, count(TraceEventKind::Forwarded));
        prop_assert_eq!(totals.5, bytes_of(TraceEventKind::Forwarded));
        let dropped = w
            .trace
            .matching(all)
            .filter(|e| matches!(e.kind, TraceEventKind::Dropped(_)))
            .count() as u64;
        prop_assert_eq!(totals.6, dropped);
        // And bytes_on_wire (the measurement the figures use) is exactly
        // the sent+forwarded byte total.
        prop_assert_eq!(
            (totals.1 + totals.5) as usize,
            w.trace.bytes_on_wire(all)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Causal-id propagation across arbitrary tunnel nestings: every
    /// encapsulation and decapsulation mints a fresh packet id linked to
    /// its parent, every event along the way shares the original flow id,
    /// and the parent chain from the final inner packet walks all the way
    /// back to the first send.
    #[test]
    fn ids_propagate_through_random_tunnel_nestings(
        p in arb_packet(),
        layers in proptest::collection::vec(
            (arb_addr(), arb_addr(), 0usize..3),
            1..4,
        ),
    ) {
        use mobility4x4::netsim::trace::{PacketTrace, TraceEventKind, TransformKind};
        use mobility4x4::netsim::NodeId;

        const FORMATS: [EncapFormat; 3] =
            [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre];

        let mut trace = PacketTrace::new(true);
        trace.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        let root = trace.events().back().unwrap().clone();

        // Wrap in every layer, recording the transform an agent would.
        let mut cur = p.clone();
        let mut t = 1u64;
        let mut formats = Vec::new();
        for (src, dst, fi) in layers {
            let fmt = FORMATS[fi];
            let Some(outer) = encapsulate(fmt, src, dst, &cur, t as u16) else {
                continue;
            };
            trace.record_transform(
                SimTime(t),
                NodeId(1),
                TransformKind::Encapsulated(fmt),
                Some(&cur),
                &outer,
            );
            formats.push(fmt);
            cur = outer;
            t += 1;
        }
        let depth = formats.len();
        // A wire event mid-path re-observes the outermost packet: same id.
        trace.record(SimTime(t), NodeId(2), TraceEventKind::Forwarded, &cur);
        let outer_event = trace.events().back().unwrap().clone();
        prop_assert_eq!(
            trace.events().iter().rev().nth(1).unwrap().packet_id,
            outer_event.packet_id,
            "forwarding does not mint a new id"
        );

        // Unwrap back down, recording each decapsulation.
        for fmt in formats.into_iter().rev() {
            t += 1;
            let inner = decapsulate(&cur).unwrap();
            trace.record_transform(
                SimTime(t),
                NodeId(3),
                TransformKind::Decapsulated(fmt),
                Some(&cur),
                &inner,
            );
            cur = inner;
        }
        t += 1;
        trace.record(SimTime(t), NodeId(4), TraceEventKind::DeliveredLocal, &cur);
        let last = trace.events().back().unwrap().clone();

        // Every event belongs to the root's flow.
        for e in trace.events() {
            prop_assert_eq!(e.flow_id, root.flow_id);
        }
        // The parent chain from the delivered packet reaches the root in
        // exactly one step per transform (encaps + decaps).
        let mut chain = vec![last.packet_id];
        while let Some(parent) = trace.parent_of(*chain.last().unwrap()) {
            chain.push(parent);
            prop_assert!(chain.len() <= 2 * depth + 1, "chain cycles");
        }
        prop_assert_eq!(chain.len(), 2 * depth + 1);
        prop_assert_eq!(*chain.last().unwrap(), root.packet_id);
        prop_assert_eq!(trace.packets_identified(), 2 * depth + 1);
    }

    /// An encap→decap round trip in a trace with no intermediate events
    /// still links child to parent and preserves the flow.
    #[test]
    fn encap_decap_round_trip_preserves_flow_and_parent(
        p in arb_packet(),
        outer_src in arb_addr(),
        outer_dst in arb_addr(),
        fi in 0usize..3,
    ) {
        use mobility4x4::netsim::trace::{PacketTrace, TraceEventKind, TransformKind};
        use mobility4x4::netsim::NodeId;

        let fmt = [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre][fi];
        let Some(outer) = encapsulate(fmt, outer_src, outer_dst, &p, 9) else {
            return Ok(());
        };
        let mut trace = PacketTrace::new(true);
        trace.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        trace.record_transform(
            SimTime(1), NodeId(1), TransformKind::Encapsulated(fmt), Some(&p), &outer,
        );
        let inner = decapsulate(&outer).unwrap();
        trace.record_transform(
            SimTime(2), NodeId(2), TransformKind::Decapsulated(fmt), Some(&outer), &inner,
        );
        let events: Vec<_> = trace.events().iter().collect();
        prop_assert_eq!(events.len(), 3);
        let (sent, enc, dec) = (events[0], events[1], events[2]);
        prop_assert_eq!(enc.parent_id, Some(sent.packet_id));
        prop_assert_eq!(dec.parent_id, Some(enc.packet_id));
        prop_assert_eq!(enc.flow_id, sent.flow_id);
        prop_assert_eq!(dec.flow_id, sent.flow_id);
        prop_assert!(dec.packet_id != sent.packet_id, "transforms mint fresh ids");
    }
}
