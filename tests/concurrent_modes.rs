//! Figure 10's caption, as a test: "a single host may have many different
//! conversations in progress at the same time, choosing for each of them
//! the communication mode that is most appropriate."
//!
//! One away mobile host runs four conversations concurrently:
//!
//! * a telnet-like session to a conventional remote CH — privacy-sensitive,
//!   pinned to Out-IE by an operator rule;
//! * a Web transfer to the same CH — port heuristic picks Out-DT;
//! * a telnet-like session to a mobile-aware CH — Out-DE via the policy;
//! * a ping exchange with a host on its own visited segment — Out-DH,
//!   single link-layer hop.
//!
//! All four run at once on one stack, and each uses its own mode.

use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{MobileHost, OutMode, PolicyConfig, Strategy};
use mobility4x4::netsim::wire::icmp::IcmpMessage;
use mobility4x4::netsim::wire::ipv4::IpProtocol;
use mobility4x4::netsim::{HostConfig, SimDuration};
use mobility4x4::transport::apps::{
    HttpLikeClient, KeystrokeSession, RequestResponseServer, TcpEchoServer,
};
use mobility4x4::transport::{tcp, udp};

#[test]
fn four_conversations_four_modes_one_host() {
    // Base scenario: conventional CH at 18.26.0.5; we add a mobile-aware
    // CH2 in the same domain and a local host on visited-A.
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig {
            // Default pessimistic with DT ports; rule: CH2's /32 runs DE.
            ..PolicyConfig::default()
                .with_rule(
                    "18.26.0.6/32".parse().unwrap(),
                    Strategy::Fixed(OutMode::DE),
                )
                .with_rule(
                    "18.26.0.5/32".parse().unwrap(),
                    Strategy::Fixed(OutMode::IE),
                )
        },
        ..ScenarioConfig::default()
    });
    let ch2 = s.world.add_host(HostConfig::decap_capable("ch2"));
    s.world.attach(ch2, s.ch_seg, Some("18.26.0.6/24"));
    let local = s.world.add_host(HostConfig::conventional("local"));
    s.world.attach(local, s.visited_a, Some("36.186.0.5/24"));
    s.world.compute_routes();
    for n in [ch2, local] {
        udp::install(s.world.host_mut(n));
        tcp::install(s.world.host_mut(n));
    }

    // Services.
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world
        .host_mut(ch)
        .add_app(Box::new(RequestResponseServer::new(80, 8_000)));
    s.world
        .host_mut(ch2)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);
    s.world.poll_soon(ch2);

    s.roam_to_a();
    assert!(s.mh_registered());
    let mh = s.mh;

    // Conversation 1: telnet to conventional CH (rule: Out-IE).
    let telnet_ie = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(300),
        15,
    )));
    // Conversation 2: Web to the same CH (port heuristic: Out-DT).
    let web_dt = s.world.host_mut(mh).add_app(Box::new(HttpLikeClient::new(
        (ch_addr, 80),
        3,
        SimDuration::from_millis(500),
    )));
    // Conversation 3: telnet to the mobile-aware CH2 (rule: Out-DE).
    let telnet_de = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ip("18.26.0.6"), 23),
        SimDuration::from_millis(300),
        15,
    )));
    s.world.poll_soon(mh);
    // Conversation 4: pings to the on-segment neighbour (Out-DH on-link).
    for seq in 0..5 {
        s.world.host_do(mh, |h, ctx| {
            h.send_ping(ctx, ip(addrs::MH_HOME), ip("36.186.0.5"), seq)
        });
        s.world.run_for(SimDuration::from_secs(1));
    }
    s.world.run_for(SimDuration::from_secs(20));

    // All four conversations succeeded.
    {
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(telnet_ie)
            .unwrap();
        assert!(sess.all_echoed() && sess.broken.is_none(), "IE telnet");
    }
    {
        let web = s
            .world
            .host_mut(mh)
            .app_as::<HttpLikeClient>(web_dt)
            .unwrap();
        assert!(web.done(), "web transfers finished");
        assert!(web.outcomes.iter().all(|o| o.completed()), "web all ok");
    }
    {
        let sess = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(telnet_de)
            .unwrap();
        assert!(sess.all_echoed() && sess.broken.is_none(), "DE telnet");
    }
    let echo_replies = s
        .world
        .host(mh)
        .icmp_log
        .iter()
        .filter(|e| {
            matches!(e.message, IcmpMessage::EchoReply { .. }) && e.from == ip("36.186.0.5")
        })
        .count();
    assert_eq!(echo_replies, 5, "on-link pings all answered");

    // And each used its own mode, concurrently, on one stack.
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    assert!(hook.stats.sent_out_ie > 0, "conversation 1 used Out-IE");
    assert!(hook.stats.sent_out_dt > 0, "conversation 2 used Out-DT");
    assert!(hook.stats.sent_out_de > 0, "conversation 3 used Out-DE");
    assert!(hook.stats.sent_out_dh >= 5, "conversation 4 used Out-DH");
    assert_eq!(hook.mode_for(ch_addr), OutMode::IE);
    assert_eq!(hook.mode_for(ip("18.26.0.6")), OutMode::DE);

    // The endpoints tell the same story: the web conversation used the
    // care-of address, the telnets the home address.
    let telnet_conn = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(telnet_ie)
        .unwrap()
        .conn()
        .unwrap();
    assert_eq!(
        tcp::local_endpoint(s.world.host_mut(mh), telnet_conn).0,
        ip(addrs::MH_HOME)
    );

    // No care-of-address packet ever reached the IE-pinned correspondent
    // conversation... but the SAME correspondent host did see the care-of
    // address on port 80 — mode choice is per conversation, not per peer.
    let coa = ip(addrs::COA_A);
    let saw_coa_tcp = s.world.trace.events().iter().any(|e| {
        e.node == ch
            && matches!(e.kind, mobility4x4::netsim::TraceEventKind::DeliveredLocal)
            && e.packet.src == coa
            && e.packet.protocol == IpProtocol::Tcp
    });
    assert!(saw_coa_tcp, "the DT web conversation hit the same host");
}
