//! Cross-crate integration tests: whole-system journeys that exercise the
//! full stack (netsim + transport + mip-core) in combinations no single
//! crate's unit tests cover.

use mobility4x4::mip_core::dhcp::{move_to_with_dhcp, DhcpClient, DhcpServer};
use mobility4x4::mip_core::dns::{DnsLookup, TaRegistrar};
use mobility4x4::mip_core::home_agent::{HomeAgent, HomeAgentConfig};
use mobility4x4::mip_core::mobile_host::{move_to, MobileHost, MobileHostConfig};
use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{MobileAwareCh, OutMode, PolicyConfig};
use mobility4x4::netsim::wire::icmp::IcmpMessage;
use mobility4x4::netsim::{HostConfig, LinkConfig, RouterConfig, SimDuration, World};
use mobility4x4::transport::apps::{BulkSender, KeystrokeSession, SinkServer, TcpEchoServer};
use mobility4x4::transport::{tcp, udp};

/// The full §2 lifecycle with every service in play at once: DHCP address
/// acquisition, DNS TA publication, home-agent redirects, and a live TCP
/// session, across a mid-session move.
#[test]
fn full_service_roaming_lifecycle() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: true,
        with_dns: true,
        ..ScenarioConfig::default()
    });
    // A DHCP server on visited-A.
    let dhcp = s.world.add_host(HostConfig::conventional("dhcp"));
    s.world.attach(dhcp, s.visited_a, Some("36.186.0.2/24"));
    udp::install(s.world.host_mut(dhcp));
    s.world.host_mut(dhcp).add_app(Box::new(DhcpServer::new(
        "36.186.0.0/24".parse().unwrap(),
        ip(addrs::VISITED_A_GW),
        64,
    )));
    s.world.poll_soon(dhcp);

    // Echo service at the correspondent.
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    // Leave home via DHCP.
    let mh = s.mh;
    let dhcp_app = move_to_with_dhcp(&mut s.world, mh, s.visited_a, 0x1234);
    s.world.run_for(SimDuration::from_secs(5));
    let lease = s
        .world
        .host_mut(mh)
        .app_as::<DhcpClient>(dhcp_app)
        .unwrap()
        .lease
        .expect("got a lease");
    assert_eq!(lease.addr, ip("36.186.0.64"));
    assert!(s.mh_registered());

    // The TA record reflects the DHCP-acquired address.
    let lookup = s
        .world
        .host_mut(ch)
        .add_app(Box::new(DnsLookup::new(ip(addrs::DNS), addrs::MH_NAME)));
    s.world.poll_soon(ch);
    s.world.run_for(SimDuration::from_secs(2));
    let res = s
        .world
        .host_mut(ch)
        .app_as::<DnsLookup>(lookup)
        .unwrap()
        .result
        .clone()
        .expect("DNS answered");
    assert_eq!(res.ta, Some(ip("36.186.0.64")));

    // Start a session; move to B mid-session; the DNS-learned binding goes
    // stale but the home agent still delivers and re-educates the CH.
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(300),
        20,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(3));
    move_to(
        &mut s.world,
        mh,
        s.visited_b,
        addrs::COA_B_CIDR,
        ip(addrs::VISITED_B_GW),
    );
    s.world.run_for(SimDuration::from_secs(30));

    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    assert!(
        sess.broken.is_none() && sess.all_echoed(),
        "typed {} echoed {} broken {:?}",
        sess.typed(),
        sess.echoed,
        sess.broken
    );
    // The CH's binding cache now points at the NEW care-of address
    // (re-learned from the home agent's redirect after the move).
    let hook = s.world.host_mut(ch).hook_as::<MobileAwareCh>().unwrap();
    assert_eq!(
        hook.binding(ip(addrs::MH_HOME)).map(|b| b.care_of),
        Some(ip(addrs::COA_B))
    );
}

/// Two mobile hosts served by two different home agents talk to each other
/// while both are away — "the same techniques and optimizations apply
/// equally well if both hosts are mobile" (§1).
#[test]
fn mobile_to_mobile_conversation() {
    let mut w = World::new(99);
    // Two home networks, two visited networks, one backbone.
    let home_a = w.add_segment(LinkConfig::lan());
    let home_b = w.add_segment(LinkConfig::lan());
    let visit_a = w.add_segment(LinkConfig::lan());
    let visit_b = w.add_segment(LinkConfig::lan());
    let backbone = w.add_segment(LinkConfig::wan(20));

    let ha_a = w.add_host(HostConfig::agent("ha-a"));
    let ha_b = w.add_host(HostConfig::agent("ha-b"));
    let mh_a = w.add_host(HostConfig::conventional("mh-a"));
    let mh_b = w.add_host(HostConfig::conventional("mh-b"));
    let r1 = w.add_router(RouterConfig::named("r1"));
    let r2 = w.add_router(RouterConfig::named("r2"));
    let r3 = w.add_router(RouterConfig::named("r3"));
    let r4 = w.add_router(RouterConfig::named("r4"));

    let haa_if = w.attach(ha_a, home_a, Some("10.1.0.1/24"));
    let hab_if = w.attach(ha_b, home_b, Some("10.2.0.1/24"));
    w.attach(mh_a, home_a, Some("10.1.0.9/24"));
    w.attach(mh_b, home_b, Some("10.2.0.9/24"));
    w.attach(r1, home_a, Some("10.1.0.254/24"));
    w.attach(r1, backbone, Some("192.168.0.1/24"));
    w.attach(r2, home_b, Some("10.2.0.254/24"));
    w.attach(r2, backbone, Some("192.168.0.2/24"));
    w.attach(r3, visit_a, Some("10.3.0.254/24"));
    w.attach(r3, backbone, Some("192.168.0.3/24"));
    w.attach(r4, visit_b, Some("10.4.0.254/24"));
    w.attach(r4, backbone, Some("192.168.0.4/24"));
    w.compute_routes();

    HomeAgent::install(
        &mut w,
        ha_a,
        HomeAgentConfig::new(ip2("10.1.0.1"), "10.1.0.0/24".parse().unwrap(), haa_if),
    );
    HomeAgent::install(
        &mut w,
        ha_b,
        HomeAgentConfig::new(ip2("10.2.0.1"), "10.2.0.0/24".parse().unwrap(), hab_if),
    );
    MobileHost::install(
        &mut w,
        mh_a,
        MobileHostConfig::new("10.1.0.9/24", ip2("10.1.0.1"))
            .with_policy(PolicyConfig::fixed(OutMode::IE).without_dt_ports()),
    );
    MobileHost::install(
        &mut w,
        mh_b,
        MobileHostConfig::new("10.2.0.9/24", ip2("10.2.0.1"))
            .with_policy(PolicyConfig::fixed(OutMode::IE).without_dt_ports()),
    );
    for n in [mh_a, mh_b] {
        udp::install(w.host_mut(n));
        tcp::install(w.host_mut(n));
    }

    // Both roam.
    move_to(&mut w, mh_a, visit_a, "10.3.0.99/24", ip2("10.3.0.254"));
    move_to(&mut w, mh_b, visit_b, "10.4.0.99/24", ip2("10.4.0.254"));
    w.run_for(SimDuration::from_secs(3));

    // mh_b serves echo; mh_a types at it — home address to home address,
    // each direction relayed by the *other* host's home agent.
    w.host_mut(mh_b).add_app(Box::new(TcpEchoServer::new(23)));
    w.poll_soon(mh_b);
    let app = w.host_mut(mh_a).add_app(Box::new(KeystrokeSession::new(
        (ip2("10.2.0.9"), 23),
        SimDuration::from_millis(300),
        10,
    )));
    w.poll_soon(mh_a);
    w.run_for(SimDuration::from_secs(20));

    let sess = w.host_mut(mh_a).app_as::<KeystrokeSession>(app).unwrap();
    assert!(
        sess.broken.is_none() && sess.all_echoed(),
        "mobile-to-mobile session: typed {} echoed {}",
        sess.typed(),
        sess.echoed
    );
    // Both home agents did tunnelling work.
    for (ha, name) in [(ha_a, "ha-a"), (ha_b, "ha-b")] {
        let hook = w.host_mut(ha).hook_as::<HomeAgent>().unwrap();
        assert!(hook.stats.packets_tunneled > 0, "{name} tunneled nothing");
    }
}

fn ip2(s: &str) -> mobility4x4::netsim::Ipv4Addr {
    s.parse().unwrap()
}

/// Bulk data upload from the mobile under a lossy wireless-ish visited
/// link, crossing a mid-transfer handoff: the data must arrive complete
/// and intact (the §2 durability claim under fire).
#[test]
fn bulk_transfer_survives_loss_and_handoff() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    // Make visited-A lossy like a bad radio link.
    s.world.segment_config_mut(s.visited_a).fault = mobility4x4::netsim::FaultInjector {
        drop_prob: 0.05,
        ..Default::default()
    };
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world.host_mut(ch).add_app(Box::new(SinkServer::new(9)));
    s.world.poll_soon(ch);

    s.roam_to_a();
    let mh = s.mh;
    let app = s
        .world
        .host_mut(mh)
        .add_app(Box::new(BulkSender::new((ch_addr, 9), 300_000)));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(3));
    s.roam_to_b(); // handoff mid-transfer (to a clean link)
    s.world.run_for(SimDuration::from_secs(240));

    let outcome = s
        .world
        .host_mut(mh)
        .app_as::<BulkSender>(app)
        .unwrap()
        .outcome
        .expect("transfer finished");
    assert!(outcome.completed(), "{outcome:?}");
    let sink = s.world.host_mut(ch).app_as::<SinkServer>(0).unwrap();
    assert_eq!(
        sink.bytes_received, 300_000,
        "every byte arrived exactly once"
    );
}

/// The mobile host is reachable at its home address in ALL locations, and
/// unreachable states never leak: home → away → away → home, probed by a
/// remote pinger at every stop.
#[test]
fn reachability_is_continuous_across_the_journey() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        mh_policy: PolicyConfig::fixed(OutMode::IE).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    let mh_home = ip(addrs::MH_HOME);
    let mut seq = 0u16;
    let mut probe = |s: &mut mobility4x4::mip_core::scenario::Scenario, where_: &str| {
        seq += 1;
        let this_seq = seq;
        s.world
            .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, this_seq));
        s.world.run_for(SimDuration::from_secs(3));
        let answered =
            s.world.host(ch).icmp_log.iter().any(
                |e| matches!(e.message, IcmpMessage::EchoReply { seq: rs, .. } if rs == this_seq),
            );
        assert!(answered, "unreachable while {where_}");
    };

    probe(&mut s, "at home");
    s.roam_to_a();
    probe(&mut s, "at visited A");
    s.roam_to_b();
    probe(&mut s, "at visited B");
    s.go_home();
    probe(&mut s, "home again");
}

/// §7.1.1 heuristics end to end: a DNS lookup from the away mobile goes
/// Out-DT (port 53), even while telnet to the same region uses Mobile IP.
#[test]
fn dns_lookups_forgo_mobile_ip_by_port_heuristic() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        with_dns: true,
        ..ScenarioConfig::default() // default policy has 53 in dt_ports
    });
    s.roam_to_a();
    let mh = s.mh;
    // The mobile itself resolves some name.
    let lookup = s
        .world
        .host_mut(mh)
        .add_app(Box::new(DnsLookup::new(ip(addrs::DNS), addrs::MH_NAME)));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(2));
    let res = s
        .world
        .host_mut(mh)
        .app_as::<DnsLookup>(lookup)
        .unwrap()
        .result
        .clone()
        .expect("lookup answered");
    assert_eq!(res.a, Some(ip(addrs::MH_HOME)));
    // And it did so with plain care-of-addressed packets.
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    assert!(hook.stats.sent_out_dt > 0, "port-53 traffic went Out-DT");
    // The TaRegistrar also used Out-DT (it binds no address but hits 53).
    let _ = TaRegistrar::new(ip(addrs::DNS), addrs::MH_NAME); // (type used)
}
