#![warn(missing_docs)]
//! # mobility4x4
//!
//! A reproduction of *Internet Mobility 4x4* (Stuart Cheshire and Mary
//! Baker, SIGCOMM '96) as a Rust workspace:
//!
//! * [`netsim`] — a deterministic, wire-format-faithful IPv4 network
//!   simulator (the testbed substitute);
//! * [`transport`] — from-scratch UDP and TCP with the §7.1.2
//!   original-vs-retransmission feedback interface;
//! * [`mip_core`] — the paper's contribution: Mobile IP with per-packet
//!   routing-mode selection over the 4x4 grid.
//!
//! This facade crate re-exports the three layers and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! and see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! measured results.

pub use mip_core;
pub use netsim;
pub use transport;

/// The paper's 4x4 taxonomy, re-exported at the top level for convenience.
pub use mip_core::{classify, CellClass, Combination, InMode, OutMode};
