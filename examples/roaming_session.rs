//! A day in the life of a roaming laptop (§2's motivating scenario).
//!
//! ```bash
//! cargo run --example roaming_session
//! ```
//!
//! The laptop holds an idle-ish telnet session to a server in the
//! correspondent's domain while it: works at home, visits institution A
//! (acquiring an address by DHCP, like a real guest), sleeps for a while
//! with the session quiescent ("putting a laptop computer to sleep …
//! does not necessarily break connections"), wakes up at institution B,
//! and finally comes home. The session survives all of it.

use mobility4x4::mip_core::dhcp::{move_to_with_dhcp, DhcpClient, DhcpServer};
use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{MobileHost, RegState};
use mobility4x4::netsim::SimDuration;
use mobility4x4::transport::apps::{KeystrokeSession, TcpEchoServer};

fn main() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        ..ScenarioConfig::default()
    });

    // Institution A offers guest addresses by DHCP.
    let dhcp_host = s
        .world
        .add_host(mobility4x4::netsim::HostConfig::conventional("dhcp-a"));
    s.world
        .attach(dhcp_host, s.visited_a, Some("36.186.0.2/24"));
    mobility4x4::transport::udp::install(s.world.host_mut(dhcp_host));
    s.world
        .host_mut(dhcp_host)
        .add_app(Box::new(DhcpServer::new(
            "36.186.0.0/24".parse().unwrap(),
            ip(addrs::VISITED_A_GW),
            120,
        )));
    s.world.poll_soon(dhcp_host);

    // The echo service the session talks to.
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    // Morning at home: open the session and type a bit.
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(400),
        60,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(5));
    report(&mut s, app, "morning at home");

    // Travel to institution A; get an address via DHCP; keep typing.
    let dhcp_app = move_to_with_dhcp(&mut s.world, mh, s.visited_a, 0xcafe);
    s.world.run_for(SimDuration::from_secs(5));
    let lease = s
        .world
        .host_mut(mh)
        .app_as::<DhcpClient>(dhcp_app)
        .unwrap()
        .lease
        .expect("DHCP lease granted");
    println!(
        "DHCP at institution A: got {} (gw {})",
        lease.addr, lease.gateway
    );
    report(&mut s, app, "visiting institution A");

    // Laptop sleeps: nothing transmits for two minutes; the TCP connection
    // just sits there ("idle telnet connections preserved for hours").
    s.world.run_for(SimDuration::from_secs(120));
    report(&mut s, app, "after a 2-minute sleep");

    // Wake up at institution B (pre-assigned guest address this time).
    s.roam_to_b();
    s.world.run_for(SimDuration::from_secs(6));
    report(&mut s, app, "visiting institution B");

    // Evening: home again.
    s.go_home();
    s.world.run_for(SimDuration::from_secs(30));
    report(&mut s, app, "home again");

    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    assert!(sess.all_echoed() && sess.broken.is_none());
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    assert!(matches!(hook.registration_state(), RegState::Unregistered));
    println!("ok: one TCP connection, four networks, zero breakage");
}

fn report(s: &mut mobility4x4::mip_core::scenario::Scenario, app: usize, when: &str) {
    let mh = s.mh;
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    let (typed, echoed, broken) = (sess.typed(), sess.echoed, sess.broken);
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    println!(
        "[{when}] typed={typed} echoed={echoed} broken={broken:?} location={:?} registered={}",
        hook.location(),
        hook.is_registered()
    );
}
