//! Quickstart: build a small internet, send a laptop on a trip, and watch
//! a TCP session survive the journey.
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! This walks the happy path of the whole stack: topology construction,
//! home-agent installation, mobile-host installation, movement with
//! registration, and a keystroke session that outlives two handoffs.

use mobility4x4::mip_core::scenario::{addrs, build, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{InMode, MobileHost, OutMode};
use mobility4x4::netsim::SimDuration;
use mobility4x4::transport::apps::{KeystrokeSession, TcpEchoServer};

fn main() {
    // 1. A canonical little Internet: home network (with home agent),
    //    two visited networks, a correspondent's network, one backbone.
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        ..ScenarioConfig::default()
    });
    println!("built: home=171.64.15.0/24  visited A/B  ch=18.26.0.0/24");

    // Optional: `--pcap <path>` taps every wire into a Wireshark-readable
    // capture (tunnels, ARP, registration and all).
    let args: Vec<String> = std::env::args().collect();
    let pcap_path = args
        .iter()
        .position(|a| a == "--pcap")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(path) = &pcap_path {
        let file = std::fs::File::create(path).expect("create pcap file");
        s.world
            .capture_pcap(Box::new(std::io::BufWriter::new(file)))
            .expect("start capture");
    }

    // 2. The correspondent runs a TCP echo service on port 23.
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    // 3. The laptop leaves home: plugs into visited network A, obtains the
    //    care-of address, and registers with its home agent.
    s.roam_to_a();
    println!(
        "mobile host roamed to {} and registered: {}",
        addrs::COA_A,
        s.mh_registered()
    );

    // 4. Start a long-lived interactive session (telnet-like): one
    //    keystroke every 300 ms, echoed back by the correspondent.
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(300),
        30,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(4));

    // 5. Mid-session handoff to visited network B...
    s.roam_to_b();
    println!(
        "handoff to visited B ({}), still registered: {}",
        addrs::COA_B,
        s.mh_registered()
    );
    s.world.run_for(SimDuration::from_secs(4));

    // 6. ...and back home, still mid-session.
    s.go_home();
    println!("returned home; home agent stood down");
    s.world.run_for(SimDuration::from_secs(30));

    // 7. The session never noticed.
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    println!(
        "session outcome: typed={} echoed={} broken={:?}",
        sess.typed(),
        sess.echoed,
        sess.broken
    );
    assert!(sess.all_echoed() && sess.broken.is_none());

    // 8. What the mobility layer did along the way.
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    println!(
        "modes used: Out-IE={} Out-DE={} Out-DH={} Out-DT={} | In-IE={} In-DE={} In-DH={} In-DT={}",
        hook.stats.sent_by(OutMode::IE),
        hook.stats.sent_by(OutMode::DE),
        hook.stats.sent_by(OutMode::DH),
        hook.stats.sent_by(OutMode::DT),
        hook.stats.recv_by(InMode::IE),
        hook.stats.recv_by(InMode::DE),
        hook.stats.recv_by(InMode::DH),
        hook.stats.recv_by(InMode::DT),
    );
    println!(
        "handoffs={} registrations={}",
        hook.stats.handoffs, hook.stats.registrations_sent
    );
    if let Some(path) = &pcap_path {
        let frames = s.world.finish_pcap().expect("flush pcap");
        println!("wrote {frames} frames to {path}");
    }
    println!("ok: the TCP connection survived two mid-session moves");
}
