//! Forgoing Mobile IP for the Web (§4 Out-DT, §6.4 Row D, §7.1.1).
//!
//! ```bash
//! cargo run --example web_browsing
//! ```
//!
//! The away laptop browses: many short HTTP-ish transfers. The §7.1.1 port
//! heuristic sends port-80 conversations from the care-of address — plain
//! IP, no tunnels, no triangle — while a concurrent telnet session on port
//! 23 keeps the home address and full Mobile IP protection. A mid-browsing
//! move breaks (at most) the one transfer in flight; the browser's answer
//! is the Reload button. The telnet session doesn't even notice.

use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::MobileHost;
use mobility4x4::netsim::SimDuration;
use mobility4x4::transport::apps::{
    HttpLikeClient, KeystrokeSession, RequestResponseServer, TcpEchoServer, TransferOutcome,
};
use mobility4x4::transport::tcp;

fn main() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::Conventional,
        ..ScenarioConfig::default() // default policy: ports 80/53 -> Out-DT
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(RequestResponseServer::new(80, 16_000)));
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    s.roam_to_a();
    println!(
        "away at {}, registered: {}",
        addrs::COA_A,
        s.mh_registered()
    );

    let mh = s.mh;
    // The browser: 8 transfers of 16 kB with small gaps.
    let browser = s.world.host_mut(mh).add_app(Box::new(HttpLikeClient::new(
        (ch_addr, 80),
        8,
        SimDuration::from_millis(600),
    )));
    // The telnet session: long-lived, port 23, home address.
    let telnet = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(500),
        30,
    )));
    s.world.poll_soon(mh);

    // Browse a while, then move mid-transfer.
    s.world.run_for(SimDuration::from_secs(4));
    println!("... moving to visited B mid-browse ...");
    s.roam_to_b();

    // Let everything finish (a DT transfer broken by the move needs TCP's
    // full timeout before the client gives up and 'clicks reload').
    for _ in 0..150 {
        s.world.run_for(SimDuration::from_secs(2));
        let done = s
            .world
            .host_mut(mh)
            .app_as::<HttpLikeClient>(browser)
            .unwrap()
            .done();
        if done {
            break;
        }
    }
    s.world.run_for(SimDuration::from_secs(10));

    // Browser report.
    let outcomes = {
        let b = s
            .world
            .host_mut(mh)
            .app_as::<HttpLikeClient>(browser)
            .unwrap();
        b.outcomes.clone()
    };
    let mut completed = 0;
    let mut failed = 0;
    for (i, o) in outcomes.iter().enumerate() {
        match o {
            TransferOutcome::Completed { bytes, .. } => {
                completed += 1;
                println!(
                    "  transfer {}: {} bytes in {}",
                    i + 1,
                    bytes,
                    o.duration().unwrap()
                );
            }
            TransferOutcome::Failed { error, .. } => {
                failed += 1;
                println!(
                    "  transfer {}: FAILED ({error:?}) — user clicks Reload (§4)",
                    i + 1
                );
            }
        }
    }
    println!("browser: {completed} completed, {failed} broken by the move");
    assert!(failed <= 1, "at most the in-flight transfer breaks");

    // Telnet report: untouched by the move.
    let (sess_ok, conn) = {
        let t = s
            .world
            .host_mut(mh)
            .app_as::<KeystrokeSession>(telnet)
            .unwrap();
        (t.all_echoed() && t.broken.is_none(), t.conn())
    };
    let endpoint = conn.map(|c| tcp::local_endpoint(s.world.host_mut(mh), c));
    println!("telnet session survived: {sess_ok}, endpoint {endpoint:?} (the home address)");
    assert!(sess_ok);
    assert_eq!(endpoint.unwrap().0, ip(addrs::MH_HOME));

    // The policy's view: port 80 went Out-DT, port 23 went via Mobile IP.
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    println!(
        "packets by mode: Out-DT={} (web) vs Out-IE={} (telnet)",
        hook.stats.sent_out_dt, hook.stats.sent_out_ie
    );
    assert!(hook.stats.sent_out_dt > 0);
    assert!(hook.stats.sent_out_ie > 0);
}
