//! The smart correspondent host (Figure 5, §3.2).
//!
//! ```bash
//! cargo run --example smart_correspondent
//! ```
//!
//! A mobile-aware correspondent learns the mobile's care-of address two
//! ways — an ICMP Mobile Host Redirect from the home agent, and a DNS
//! lookup that returns the temporary-address (TA) record — and then
//! tunnels packets directly (In-DE), skipping the triangle through the
//! home agent. The printed RTT series shows the optimization kicking in.

use mobility4x4::mip_core::dns::DnsLookup;
use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{MobileAwareCh, OutMode, PolicyConfig};
use mobility4x4::netsim::wire::icmp::IcmpMessage;
use mobility4x4::netsim::SimDuration;

fn rtt_series(s: &mut mobility4x4::mip_core::scenario::Scenario, n: u16) -> Vec<f64> {
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    let mh_home = ip(addrs::MH_HOME);
    let mut rtts = Vec::new();
    for seq in 100..100 + n {
        let t0 = s.world.now();
        s.world
            .host_do(ch, |h, ctx| h.send_ping(ctx, ch_addr, mh_home, seq));
        s.world.run_for(SimDuration::from_secs(2));
        let rtt = s
            .world
            .host(ch)
            .icmp_log
            .iter()
            .find(|e| matches!(e.message, IcmpMessage::EchoReply { seq: rs, .. } if rs == seq))
            .map(|e| e.at.since(t0).as_micros() as f64 / 1000.0)
            .unwrap_or(f64::NAN);
        rtts.push(rtt);
    }
    rtts
}

fn main() {
    // ---- Mechanism 1: ICMP Mobile Host Redirect --------------------------
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: true,
        backbone_ms: 50,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    s.roam_to_a();
    println!("== mechanism 1: ICMP redirect from the home agent ==");
    let series = rtt_series(&mut s, 5);
    for (i, rtt) in series.iter().enumerate() {
        println!(
            "  ping {}: {rtt:.2} ms{}",
            i + 1,
            if i == 0 {
                "  <- triangle, triggers redirect"
            } else {
                "  <- In-DE direct"
            }
        );
    }
    let ch = s.ch;
    let hook = s.world.host_mut(ch).hook_as::<MobileAwareCh>().unwrap();
    let b = hook.binding(ip(addrs::MH_HOME)).expect("binding learned");
    println!(
        "  binding cache: {} -> {} (source {:?}); In-DE packets sent: {}",
        addrs::MH_HOME,
        b.care_of,
        b.source,
        hook.stats.sent_in_de
    );
    assert!(series[0] > series[4] + 40.0, "optimization visible");

    // ---- Mechanism 2: DNS temporary-address record ------------------------
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::MobileAware,
        ha_redirects: false,
        with_dns: true,
        backbone_ms: 50,
        mh_policy: PolicyConfig::fixed(OutMode::DH).without_dt_ports(),
        ..ScenarioConfig::default()
    });
    s.roam_to_a();
    s.world.run_for(SimDuration::from_secs(1)); // TA registrar publishes
    println!("== mechanism 2: DNS lookup with TA record ==");
    let ch = s.ch;
    let lookup = s
        .world
        .host_mut(ch)
        .add_app(Box::new(DnsLookup::new(ip(addrs::DNS), addrs::MH_NAME)));
    s.world.poll_soon(ch);
    s.world.run_for(SimDuration::from_secs(2));
    let res = s
        .world
        .host_mut(ch)
        .app_as::<DnsLookup>(lookup)
        .unwrap()
        .result
        .clone()
        .expect("DNS answered");
    println!(
        "  {} -> A={:?} TA={:?} (binding auto-installed)",
        addrs::MH_NAME,
        res.a,
        res.ta
    );
    assert_eq!(res.ta, Some(ip(addrs::COA_A)));
    let series = rtt_series(&mut s, 3);
    for (i, rtt) in series.iter().enumerate() {
        println!(
            "  ping {}: {rtt:.2} ms  <- In-DE from the very first packet",
            i + 1
        );
    }
    assert!(series[0] < 130.0, "no triangle even on the first packet");
    println!("ok: both §3.2 learning mechanisms optimize the route");
}
