//! Security-conscious networks and bi-directional tunneling (Figures 2–3).
//!
//! ```bash
//! cargo run --example firewalled_home
//! ```
//!
//! The home institution ingress-filters spoofed sources and the visited
//! network egress-filters foreign ones — the §3.1 reality. Plain Out-DH
//! packets die at the boundary; the mobility policy's feedback loop
//! detects the silent loss and demotes to the reverse tunnel, after which
//! the conversation flows. Finally, privacy mode shows the other §4 reason
//! to tunnel everything: the correspondent never learns where you are.

use mobility4x4::mip_core::scenario::{addrs, build, ip, ChKind, ScenarioConfig};
use mobility4x4::mip_core::{MobileHost, PolicyConfig};
use mobility4x4::netsim::{DropReason, SimDuration, TraceEventKind};
use mobility4x4::transport::apps::{KeystrokeSession, TcpEchoServer};

fn main() {
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        home_ingress_filter: true,
        visited_egress_filter: true,
        mh_policy: PolicyConfig::optimistic().without_dt_ports(),
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(23)));
    s.world.poll_soon(ch);

    s.roam_to_a();
    println!(
        "away at {} behind an egress-filtering gateway",
        addrs::COA_A
    );

    // An optimistic session: starts at Out-DH, which the filter eats.
    let mh = s.mh;
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 23),
        SimDuration::from_millis(300),
        15,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(60));

    let filter_drops = s
        .world
        .trace
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::Dropped(DropReason::SourceAddressFilter)
            )
        })
        .count();
    println!("boundary routers silently dropped {filter_drops} Out-DH packets (Figure 2)");

    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    let ok = sess.all_echoed() && sess.broken.is_none();
    println!(
        "session: typed={} echoed={} survived={}",
        sess.typed(),
        sess.echoed,
        ok
    );
    let hook = s.world.host_mut(mh).hook_as::<MobileHost>().unwrap();
    let demotions = hook.stats.demotions;
    let final_mode = hook.mode_for(ch_addr);
    println!(
        "the §7.1.2 feedback loop demoted the method {demotions} time(s); final mode for {ch_addr}: {final_mode}"
    );
    assert!(ok, "bi-directional encapsulation rescued the conversation");
    assert!(filter_drops > 0);
    assert!(demotions >= 1);

    // ---- privacy mode (§4): conceal the care-of address entirely ---------
    let mut s = build(ScenarioConfig {
        ch_kind: ChKind::DecapCapable,
        mh_policy: PolicyConfig::default(),
        ..ScenarioConfig::default()
    });
    let ch = s.ch;
    let ch_addr = s.ch_addr();
    s.world
        .host_mut(ch)
        .add_app(Box::new(TcpEchoServer::new(80)));
    s.world.poll_soon(ch);
    s.roam_to_a();
    let mh = s.mh;
    s.world
        .host_mut(mh)
        .hook_as::<MobileHost>()
        .unwrap()
        .policy_mut()
        .config = PolicyConfig::default().with_privacy();
    let app = s.world.host_mut(mh).add_app(Box::new(KeystrokeSession::new(
        (ch_addr, 80), // even the "safe-DT" port stays private
        SimDuration::from_millis(200),
        10,
    )));
    s.world.poll_soon(mh);
    s.world.run_for(SimDuration::from_secs(10));
    let coa = ip(addrs::COA_A);
    let leaked = s
        .world
        .trace
        .events()
        .iter()
        .filter(|e| e.node == ch && matches!(e.kind, TraceEventKind::DeliveredLocal))
        .any(|e| e.packet.src == coa);
    let sess = s
        .world
        .host_mut(mh)
        .app_as::<KeystrokeSession>(app)
        .unwrap();
    println!(
        "privacy mode: session ok={} care-of address leaked to CH={}",
        sess.all_echoed(),
        leaked
    );
    assert!(sess.all_echoed());
    assert!(!leaked, "Out-IE conceals the mobile's location (§4)");
    println!("ok: deliverability and privacy, both via the home-agent tunnel");
}
