//! Offline stand-in for `serde_json` (serialization only).
//!
//! Renders the [`serde`] shim's [`Value`] tree as JSON text. Strings are
//! escaped per RFC 8259; non-finite floats render as `null` (matching
//! upstream's behaviour for `Value::from(f64::NAN)`).

pub use serde::Value;

use std::fmt::Write as _;

/// Serialization error. The shim's rendering is infallible, so this exists
/// only to keep call sites (`.expect(..)` / `?`) source-compatible.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"a\"b","xs":[1,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"a\\\"b\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(to_string("a\nb\u{1}").unwrap(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }
}
