//! Offline stand-in for `serde_json`.
//!
//! Renders the [`serde`] shim's [`Value`] tree as JSON text, and parses
//! JSON text back into a [`Value`] tree ([`from_str`]) — enough for tools
//! that re-read the run reports the workspace emits. Strings are escaped
//! per RFC 8259; non-finite floats render as `null` (matching upstream's
//! behaviour for `Value::from(f64::NAN)`).

pub use serde::Value;

use std::fmt::Write as _;

/// Serialization or parse error. Rendering is infallible; parsing reports
/// the byte offset where the input stopped being JSON.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// Numbers parse as `U64` when non-negative integral, `I64` when negative
/// integral, `F64` otherwise — the same partition [`to_string`] renders
/// from, so a rendered document round-trips. Duplicate object keys are
/// kept in document order (last-reader-wins is left to the caller, like
/// upstream's `preserve_order` mode).
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Error {
        Error(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by \uDC00..DFFF.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat("\\u")
                                    .map_err(|_| self.err("unpaired surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let n = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(n)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::U64(1), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"a\"b","xs":[1,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"a\\\"b\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(to_string("a\nb\u{1}").unwrap(), "\"a\\nb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\n\u{1}".into())),
            (
                "xs".into(),
                Value::Array(vec![
                    Value::U64(1),
                    Value::I64(-2),
                    Value::F64(2.5),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parser_handles_escapes_and_surrogates() {
        assert_eq!(
            from_str(r#""aA😀\/""#).unwrap(),
            Value::Str("aA\u{1F600}/".into())
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "01x", "nul", "1 2"] {
            assert!(from_str(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_partition_like_rendering() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(from_str("-5").unwrap(), Value::I64(-5));
        assert_eq!(from_str("1e3").unwrap(), Value::F64(1000.0));
    }
}
