//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (no `Result`). Poisoning is ignored — a
//! poisoned std lock yields its inner guard, matching parking_lot's
//! "no poisoning" semantics closely enough for this workspace.

use std::sync;

/// A mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_readers_then_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
