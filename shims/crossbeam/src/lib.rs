//! Offline stand-in for `crossbeam` (scoped threads only).
//!
//! Delegates to `std::thread::scope`, which has provided the same
//! structured-concurrency guarantee since Rust 1.63. The API shape is
//! crossbeam's: `scope(|s| ...)` returns a `Result` that is `Err` when any
//! spawned thread panicked, and `Scope::spawn` passes the scope to the
//! closure so threads can spawn siblings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Scope handle passed to [`scope`]'s closure and to every spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further siblings.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller.
///
/// Returns `Err` with the panic payload when a spawned thread (or the
/// closure itself) panicked, mirroring crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Module alias matching `crossbeam::thread::scope` imports.
pub mod thread_shim {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_share_borrows() {
        let mut results = vec![0u32; 4];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 * 10);
            }
        })
        .unwrap();
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
