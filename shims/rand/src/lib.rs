//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the small surface it uses: `rand::rngs::StdRng` seeded with
//! `SeedableRng::seed_from_u64`, plus `Rng::{gen_bool, gen_range, gen}`.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators") — not cryptographic, but statistically
//! solid and, critically for the simulator, **deterministic per seed**:
//! identical seeds replay identical fault/timing sequences. The stream
//! differs from upstream `StdRng` (ChaCha12), which only matters to tests
//! asserting exact draw sequences; none in this workspace do.

/// Core of every random number generator: a source of random u32/u64s.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

mod sealed {
    /// Integer types `gen_range`/`gen` can produce.
    pub trait UniformInt: Copy + PartialOrd {
        fn from_u64_mod(v: u64, span: u64) -> Self;
        fn from_u64(v: u64) -> Self;
        fn to_u64(self) -> u64;
        fn span(low: Self, high_exclusive: Self) -> u64;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn from_u64_mod(v: u64, span: u64) -> $t {
                    (v % span) as $t
                }
                fn from_u64(v: u64) -> $t {
                    v as $t
                }
                fn to_u64(self) -> u64 {
                    self as u64
                }
                fn span(low: $t, high_exclusive: $t) -> u64 {
                    (high_exclusive as i128 - low as i128) as u64
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

use sealed::UniformInt;

/// A half-open or inclusive range `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range using `next` as entropy.
    fn sample(self, next: u64) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, next: u64) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "cannot sample empty range");
        offset(self.start, T::from_u64_mod(next, span))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, next: u64) -> T {
        let (lo, hi) = self.into_inner();
        let span = T::span(lo, hi).wrapping_add(1);
        if span == 0 {
            // Full-width inclusive range: every draw is in range.
            return T::from_u64(next);
        }
        offset(lo, T::from_u64_mod(next, span))
    }
}

fn offset<T: UniformInt>(low: T, delta: T) -> T {
    T::from_u64(low.to_u64().wrapping_add(delta.to_u64()))
}

/// Values `Rng::gen` can produce.
pub trait Standard {
    /// Produces a value from 64 random bits.
    fn from_random_bits(bits: u64) -> Self;
}

impl Standard for bool {
    fn from_random_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_random_bits(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_random_bits(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns true with probability `p` (panics unless `0 <= p <= 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        <f64 as Standard>::from_random_bits(self.next_u64()) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// A value with the "standard" distribution (uniform bits).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_random_bits(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(0..8);
            assert!((0..8).contains(&v));
            let u: usize = r.gen_range(3..17);
            assert!((3..17).contains(&u));
            let w: u8 = r.gen_range(1..=255);
            assert!(w >= 1);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
