//! Offline stand-in for `serde` (serialization only).
//!
//! The build environment has no crates-registry access and no proc-macro
//! crates, so this shim replaces the `Serialize` derive with a value-tree
//! design: types convert themselves into a [`Value`] and `serde_json`
//! renders that tree. Structs get their impl from the declarative
//! [`impl_serialize!`] macro instead of `#[derive(Serialize)]`.
//!
//! Only the serialization half exists — nothing in the workspace
//! deserializes.

use std::collections::BTreeMap;

/// A JSON-shaped value tree: the intermediate representation every
/// [`Serialize`] type lowers itself into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion-ordered so emitted documents are stable.
    Object(Vec<(String, Value)>),
}

/// A type that can lower itself into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the value tree that will be rendered.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

/// Hash maps serialize with their keys sorted (by rendered key string), so
/// emitted documents are byte-stable run to run regardless of hasher seed
/// or insertion order.
impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

/// Implements [`Serialize`] for a struct by listing its fields — the
/// offline replacement for `#[derive(Serialize)]`:
///
/// ```
/// struct Point { x: u32, y: u32 }
/// serde::impl_serialize!(Point { x, y });
/// # let _ = Point { x: 1, y: 2 };
/// ```
#[macro_export]
macro_rules! impl_serialize {
    ($name:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Serialize for $name {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(),
                       $crate::Serialize::to_value(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(5u32.to_value(), Value::U64(5));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::U64(1), Value::U64(2)])
        );
    }

    #[test]
    fn hash_maps_serialize_with_sorted_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert("zeta", 1u32);
        m.insert("alpha", 2u32);
        m.insert("mid", 3u32);
        assert_eq!(
            m.to_value(),
            Value::Object(vec![
                ("alpha".into(), Value::U64(2)),
                ("mid".into(), Value::U64(3)),
                ("zeta".into(), Value::U64(1)),
            ])
        );
    }

    #[test]
    fn impl_serialize_macro_emits_object() {
        struct P {
            x: u32,
            name: String,
        }
        impl_serialize!(P { x, name });
        let v = P {
            x: 7,
            name: "n".into(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("x".into(), Value::U64(7)),
                ("name".into(), Value::Str("n".into())),
            ])
        );
    }
}
