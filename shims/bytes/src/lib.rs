//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small API subset it actually uses: an immutable,
//! cheaply cloneable byte buffer backed by a reference-counted allocation
//! with an offset/length view. Semantics match `bytes::Bytes` for the
//! operations provided (`Clone` is O(1) and shares storage; `slice` and
//! `advance` adjust the view without copying).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable region of memory.
///
/// Backed by `Arc<Vec<u8>>` so `From<Vec<u8>>` is zero-copy: the vector's
/// allocation is adopted as-is and only the refcount header is allocated.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// Unlike the real crate this copies once into a shared allocation;
    /// every clone still shares that single allocation.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing storage.
    ///
    /// Panics when the range is out of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not be greater than end");
        assert!(end <= len, "range end out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Advances the start of the view by `cnt` bytes.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past the end of Bytes");
        self.start += cnt;
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: adopts the vector's allocation without copying the bytes.
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_and_slice_views() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn advance_moves_view() {
        let mut b = Bytes::from_static(b"hello world");
        b.advance(6);
        assert_eq!(&b[..], b"world");
    }

    #[test]
    fn split_to_divides() {
        let mut b = Bytes::from_static(b"headtail");
        let head = b.split_to(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(&b[..], b"tail");
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(0..4);
    }
}
