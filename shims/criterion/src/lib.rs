//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API shape
//! the workspace uses (`criterion_group!` / `criterion_main!`, benchmark
//! groups, `Bencher::iter`). Methodology: per sample, the routine runs in
//! a batch sized so one batch takes roughly `batch_target`; the reported
//! figure is the **median** per-iteration time across `sample_size`
//! samples (median, not mean, to shed scheduler noise). No statistical
//! regression analysis or HTML reports — results print as one line per
//! benchmark, machine-grepable:
//!
//! ```text
//! bench: figures/fig01_basic_mobile_ip ... median 1.234 ms/iter (10 samples)
//! ```
//!
//! A substring filter works like upstream: `cargo bench -- fig02` runs
//! only matching benchmarks.
//!
//! Two environment variables tune a run:
//!
//! - `CRITERION_QUICK=1` — CI mode: fewer samples and smaller batches, so
//!   a full bench target finishes in seconds. Numbers are noisier; the
//!   point is trajectory, not precision.
//! - `CRITERION_JSON=<path>` — after all groups run, write every result
//!   as a JSON summary at `<path>` (used to snapshot `BENCH_*.json`
//!   trajectory files).

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness state: owns the CLI filter.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First non-flag CLI argument is a substring filter (cargo bench
        // passes harness flags like `--bench`; skip anything dash-prefixed).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let filter = self.filter.clone();
        run_one(&id, 20, filter.as_deref(), f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.criterion.filter.as_deref(), f);
        self
    }

    /// Ends the group (drop-based in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when `CRITERION_QUICK` is set to anything other than `0`/empty.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One finished benchmark, as recorded for the JSON summary.
struct BenchResult {
    id: String,
    median_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Every result from this process, in run order.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Labelled raw-JSON attachments for the summary (telemetry captured
/// alongside timings); each `data` string must already be valid JSON.
static EXTRAS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Attaches an extra JSON payload to the `CRITERION_JSON` summary under
/// `"extras"` — `data` is spliced in verbatim and must be valid JSON.
/// Bench targets use this to snapshot non-timing telemetry (worker
/// utilization, allocation counts) next to the medians.
pub fn record_extra(id: impl Into<String>, data: String) {
    EXTRAS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id.into(), data));
}

fn run_one<F>(id: &str, sample_size: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let sample_size = if quick_mode() {
        sample_size.min(3)
    } else {
        sample_size
    };

    // Calibrate: run once to size batches at the target or at least one iter.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let batch_target = Duration::from_millis(if quick_mode() { 2 } else { 25 });
    let iters_per_sample = (batch_target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];

    println!(
        "bench: {id} ... median {} ({sample_size} samples, {iters_per_sample} iters/sample)",
        human(median)
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            id: id.to_string(),
            median_ns: median,
            samples: sample_size,
            iters_per_sample,
        });
}

/// Serializes every recorded result to `path` as a JSON summary.
fn write_json(path: &str) -> std::io::Result<()> {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\n  \"schema\": \"bench-summary/v1\",\n  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "\n    {{\"id\": \"{id}\", \"median_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            r.median_ns, r.samples, r.iters_per_sample
        ));
    }
    out.push_str("\n  ]");
    let extras = EXTRAS.lock().unwrap_or_else(|e| e.into_inner());
    if !extras.is_empty() {
        out.push_str(",\n  \"extras\": [");
        for (i, (id, data)) in extras.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let id = id.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!("\n    {{\"id\": \"{id}\", \"data\": {data}}}"));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    std::fs::write(path, out)
}

/// Called by [`criterion_main!`] after all groups finish: honors
/// `CRITERION_JSON=<path>` by writing the run's results there.
pub fn finalize() {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            write_json(&path).expect("write CRITERION_JSON summary");
            eprintln!("bench summary written to {path}");
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group, then
/// writing the `CRITERION_JSON` summary when requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_groups_run() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        g.finish();
        // calibration + 2 samples
        assert_eq!(ran, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn json_summary_round_trips() {
        RESULTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(BenchResult {
                id: "g/json_probe".into(),
                median_ns: 42.5,
                samples: 3,
                iters_per_sample: 7,
            });
        let path = std::env::temp_dir().join("criterion_shim_json_test.json");
        write_json(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"schema\": \"bench-summary/v1\""));
        assert!(body.contains("\"id\": \"g/json_probe\""));
        assert!(body.contains("\"median_ns\": 42.5"));
    }

    #[test]
    fn extras_embed_raw_json() {
        record_extra("telemetry_probe", "{\"workers\": [1, 2]}".to_string());
        let path = std::env::temp_dir().join("criterion_shim_extras_test.json");
        write_json(path.to_str().unwrap()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"extras\": ["));
        assert!(body.contains("\"id\": \"telemetry_probe\""));
        assert!(body.contains("\"data\": {\"workers\": [1, 2]}"));
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).contains("ns"));
        assert!(human(12_000.0).contains("us"));
        assert!(human(12_000_000.0).contains("ms"));
    }
}
