//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the property-testing surface its tests use: `proptest!` /
//! `prop_compose!` macros, `any::<T>()`, range strategies, `prop_map`,
//! `collection::vec`, `option::of`, and the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   failure message; the input stream is deterministic (seeded from the
//!   test name), so failures replay exactly under `cargo test`.
//! * **No persistence files** — determinism makes them unnecessary here.
//! * Generation is uniform-random from a SplitMix64 stream rather than
//!   proptest's bias-toward-edge-cases distributions.

use std::marker::PhantomData;

/// Deterministic entropy source for one property test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from the test's name, so every test gets an
    /// independent but reproducible input sequence.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, folded into a fixed session constant.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value from the entropy stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $ix:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Strategy built from a plain generation closure — the building block
/// `prop_compose!` expands to.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing a fixed value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "uniform random" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Produces one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform random bits.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

mod ranges {
    use super::{Strategy, TestRng};

    /// Integer types usable as range-strategy endpoints.
    pub trait RangeInt: Copy {
        fn widen(self) -> i128;
        fn narrow(v: i128) -> Self;
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl RangeInt for $t {
                fn widen(self) -> i128 {
                    self as i128
                }
                fn narrow(v: i128) -> $t {
                    v as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeInt> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start.widen(), self.end.widen());
            assert!(lo < hi, "empty range strategy");
            T::narrow(lo + (rng.below((hi - lo) as u64) as i128))
        }
    }

    impl<T: RangeInt> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (self.start().widen(), self.end().widen());
            assert!(lo <= hi, "empty range strategy");
            let span = (hi - lo + 1) as u64;
            T::narrow(lo + (rng.below(span) as i128))
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a random length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive.saturating_sub(self.size.lo).max(1);
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` one time in four, like upstream's
    /// default weighting.
    pub struct OfStrategy<S>(S);

    /// Generates `Some(value)` 75% of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OfStrategy<S> {
        OfStrategy(inner)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The macro-facing runner: executes `cases` iterations of a property.
///
/// `body` returns `Ok(())` on success or discard, `Err(msg)` on assertion
/// failure; failures panic with the case number for reproduction.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut rng = TestRng::from_name(name);
    for case in 0..config.cases {
        if let Err(msg) = body(&mut rng) {
            panic!(
                "proptest failure in `{name}` (case {case}/{}): {msg}",
                config.cases
            );
        }
    }
}

/// Everything the `use proptest::prelude::*;` idiom expects.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
    /// Upstream re-exports the crate root here; tests use
    /// `proptest::collection::...` paths through it.
    pub mod proptest_crate {
        pub use crate::*;
    }
}

/// Asserts a condition inside a property, reporting (not panicking) so the
/// runner can attach case information.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), l, r));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Discarded case: counts as success, like upstream's rejection
            // handling (without the global rejection quota).
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines a function returning a composite strategy:
///
/// ```ignore
/// prop_compose! {
///     fn arb_point()(x in 0u32..10, y in 0u32..10) -> Point {
///         Point { x, y }
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident ($($arg:ident : $argty:ty),* $(,)?)
        ($($var:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $var = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident
            ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..100, b in 0u32..100) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(p in arb_pair()) {
            prop_assert_eq!(p.0 + p.1, p.1 + p.0);
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len={}", v.len());
        }

        #[test]
        fn assume_discards(n in 0u8..=255) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(1u8..5)) {
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failures_report_case() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            |_rng| -> Result<(), String> { Err("nope".into()) },
        );
    }
}
