//! ARP behaviour tests: cache lifetime, the gratuitous/proxy mechanics the
//! home agent depends on (RFC 1027), and pending-queue limits.

use netsim::{DropReason, HostConfig, Ipv4Addr, LinkConfig, SimDuration, World};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

#[test]
fn arp_entries_expire_and_are_relearned() {
    let mut w = World::new(3);
    let lan = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 1)
    });
    w.run_until_idle(1_000);
    let now = w.now();
    assert!(w.host(a).nic().arp_lookup(0, ip("10.0.0.2"), now).is_some());
    // After the 60 s ARP TTL the entry is stale...
    w.run_for(SimDuration::from_secs(61));
    let later = w.now();
    assert!(w
        .host(a)
        .nic()
        .arp_lookup(0, ip("10.0.0.2"), later)
        .is_none());
    // ...but traffic re-resolves transparently.
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 2)
    });
    w.run_until_idle(1_000);
    assert!(w.host(a).icmp_log.iter().any(|e| matches!(
        e.message,
        netsim::wire::icmp::IcmpMessage::EchoReply { seq: 2, .. }
    )));
}

#[test]
fn gratuitous_arp_redirects_traffic_between_stations() {
    // The proxy-capture primitive: after `thief` broadcasts a gratuitous
    // ARP for victim's address, traffic to that address goes to thief.
    let mut w = World::new(7);
    let lan = w.add_segment(LinkConfig::lan());
    let client = w.add_host(HostConfig::conventional("client"));
    let victim = w.add_host(HostConfig::conventional("victim"));
    let thief = w.add_host(HostConfig::conventional("thief"));
    w.attach(client, lan, Some("10.0.0.1/24"));
    w.attach(victim, lan, Some("10.0.0.2/24"));
    w.attach(thief, lan, Some("10.0.0.3/24"));

    // Normal resolution first.
    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 1)
    });
    w.run_until_idle(1_000);
    assert_eq!(w.host(victim).icmp_log.len(), 1);

    // The thief usurps the address (what a home agent does when the mobile
    // leaves) and intercepts it so the stack accepts the packets.
    w.host_mut(thief).add_intercept(ip("10.0.0.2"));
    w.host_do(thief, |h, ctx| {
        h.send_gratuitous_arp(ctx, 0, ip("10.0.0.2"))
    });
    w.run_until_idle(1_000);

    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 2)
    });
    w.run_until_idle(1_000);
    // Victim never saw ping 2; the thief's node received the frame (it has
    // no hook, so the packet dies as NoListener — visible in the trace).
    assert_eq!(
        w.host(victim).icmp_log.len(),
        1,
        "victim no longer receives"
    );
    let thief_id = thief;
    assert!(w.trace.events().iter().any(|e| e.node == thief_id
        && matches!(
            e.kind,
            netsim::TraceEventKind::DeliveredLocal | netsim::TraceEventKind::Dropped(_)
        )
        && e.packet.dst == ip("10.0.0.2")));

    // And the victim can reclaim its address the same way (the mobile host
    // returning home).
    w.host_do(victim, |h, ctx| {
        h.send_gratuitous_arp(ctx, 0, ip("10.0.0.2"))
    });
    w.run_until_idle(1_000);
    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 3)
    });
    w.run_until_idle(1_000);
    assert!(w.host(victim).icmp_log.iter().any(|e| matches!(
        e.message,
        netsim::wire::icmp::IcmpMessage::EchoRequest { seq: 3, .. }
    )));
}

#[test]
fn unresolvable_neighbour_drops_overflow_with_arp_failure() {
    let mut w = World::new(11);
    let lan = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    // 12 pings to an address nobody owns: the per-neighbour pending queue
    // holds 8; the overflow is dropped with an attributed reason.
    w.host_do(a, |h, ctx| {
        for seq in 0..12 {
            h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.77"), seq);
        }
    });
    w.run_until_idle(10_000);
    let drops = w.trace.drops(|p| p.dst == ip("10.0.0.77"));
    assert_eq!(drops.len(), 4, "12 queued - 8 capacity = 4 dropped");
    assert!(drops.iter().all(|(_, r)| *r == DropReason::ArpFailure));
}

#[test]
fn proxy_arp_answers_only_for_registered_addresses() {
    let mut w = World::new(13);
    let lan = w.add_segment(LinkConfig::lan());
    let client = w.add_host(HostConfig::conventional("client"));
    let proxy = w.add_host(HostConfig::conventional("proxy"));
    w.attach(client, lan, Some("10.0.0.1/24"));
    w.attach(proxy, lan, Some("10.0.0.3/24"));
    w.host_mut(proxy).add_proxy_arp(ip("10.0.0.50"));

    // Proxied address resolves (to the proxy's MAC)...
    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.50"), 1)
    });
    w.run_until_idle(1_000);
    let now = w.now();
    let proxied = w.host(client).nic().arp_lookup(0, ip("10.0.0.50"), now);
    assert_eq!(proxied, Some(w.host(proxy).nic().mac(0)));

    // ...a random unproxied address does not.
    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.51"), 2)
    });
    w.run_until_idle(1_000);
    let now = w.now();
    assert!(w
        .host(client)
        .nic()
        .arp_lookup(0, ip("10.0.0.51"), now)
        .is_none());

    // Withdrawing the proxy stops the answering (after cache expiry).
    w.host_mut(proxy).remove_proxy_arp(ip("10.0.0.50"));
    w.run_for(SimDuration::from_secs(61));
    w.host_do(client, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.50"), 3)
    });
    w.run_until_idle(1_000);
    let now = w.now();
    assert!(w
        .host(client)
        .nic()
        .arp_lookup(0, ip("10.0.0.50"), now)
        .is_none());
}
