//! netsim integration tests: whole-simulator behaviours that span modules —
//! path-MTU interactions, congestion/serialization, multicast scoping,
//! firewall hole-punching, and route computation on non-trivial graphs.

use bytes::Bytes;

use netsim::device::TxMeta;
use netsim::wire::icmp::{IcmpMessage, UnreachableCode};
use netsim::wire::ipv4::{IpProtocol, Ipv4Packet};
use netsim::{
    DropReason, FilterRule, FilterWhen, HostConfig, Ipv4Addr, Ipv4Cidr, LinkConfig, NodeId,
    RouterConfig, World,
};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}
fn cidr(s: &str) -> Ipv4Cidr {
    s.parse().unwrap()
}

/// Two LANs (MTU 1500) joined across a narrow (MTU 576) middle link.
fn narrow_middle() -> (World, NodeId, NodeId) {
    let mut w = World::new(5);
    let lan_a = w.add_segment(LinkConfig::lan());
    let narrow = w.add_segment(LinkConfig {
        mtu: 576,
        ..LinkConfig::wan(10)
    });
    let lan_b = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    let r1 = w.add_router(RouterConfig::named("r1"));
    let r2 = w.add_router(RouterConfig::named("r2"));
    w.attach(a, lan_a, Some("10.0.1.10/24"));
    w.attach(r1, lan_a, Some("10.0.1.1/24"));
    w.attach(r1, narrow, Some("192.168.0.1/30"));
    w.attach(r2, narrow, Some("192.168.0.2/30"));
    w.attach(r2, lan_b, Some("10.0.2.1/24"));
    w.attach(b, lan_b, Some("10.0.2.10/24"));
    w.compute_routes();
    (w, a, b)
}

#[test]
fn large_packets_fragment_at_the_narrow_link_and_reassemble() {
    let (mut w, a, _b) = narrow_middle();
    // A 1400-byte ping fits the LANs but not the 576-byte middle.
    let payload = vec![0x5au8; 1400];
    w.host_do(a, |h, ctx| {
        let msg = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::from(payload),
        };
        let mut p = Ipv4Packet::new(
            ip("10.0.1.10"),
            ip("10.0.2.10"),
            IpProtocol::Icmp,
            Bytes::from(msg.emit()),
        );
        p.ident = h.alloc_ident();
        h.send_ip(ctx, p, TxMeta::default());
    });
    w.run_until_idle(100_000);
    // b reassembled and replied (the reply fragments too, and a
    // reassembles it).
    assert!(w
        .host(a)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 1, .. })));
    // Fragments actually crossed the middle: more Forwarded events than a
    // single-packet path would produce.
    let fwd = w
        .trace
        .hops(|p| p.dst == ip("10.0.2.10") && p.protocol == IpProtocol::Icmp);
    assert!(fwd >= 5, "expected fragmented traversals, saw {fwd}");
}

#[test]
fn df_packets_get_fragmentation_needed_with_next_hop_mtu() {
    let (mut w, a, _b) = narrow_middle();
    w.host_do(a, |h, ctx| {
        let mut p = Ipv4Packet::new(
            ip("10.0.1.10"),
            ip("10.0.2.10"),
            IpProtocol::Udp,
            Bytes::from(vec![0u8; 1200]),
        );
        p.dont_fragment = true;
        p.ident = h.alloc_ident();
        h.send_ip(ctx, p, TxMeta::default());
    });
    w.run_until_idle(100_000);
    let drops = w.trace.drops(|p| p.dst == ip("10.0.2.10"));
    assert!(drops.iter().any(|(_, r)| *r == DropReason::MtuExceeded));
    // And the sender learned the bottleneck MTU (the RFC 1191 signal).
    let got_mtu = w.host(a).icmp_log.iter().find_map(|e| match e.message {
        IcmpMessage::DestUnreachable {
            code: UnreachableCode::FragmentationNeeded { mtu },
            ..
        } => Some(mtu),
        _ => None,
    });
    assert_eq!(got_mtu, Some(576));
}

#[test]
fn serialization_delay_shapes_bulk_traffic() {
    // 10 back-to-back full packets on a 10 Mb/s LAN take ~10 * 1.2 ms.
    let mut w = World::new(9);
    let lan = w.add_segment(LinkConfig::lan()); // 10 Mb/s
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    // Warm the ARP cache first so the burst measures pure serialization
    // (otherwise the burst queues behind an unresolved neighbour and the
    // pending cap drops part of it).
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 0)
    });
    w.run_until_idle(10_000);
    let t0 = w.now();
    w.host_do(a, |h, ctx| {
        for _ in 0..10 {
            let mut p = Ipv4Packet::new(
                ip("10.0.0.1"),
                ip("10.0.0.2"),
                IpProtocol::Udp,
                Bytes::from(vec![0u8; 1472]),
            );
            p.ident = h.alloc_ident();
            h.send_ip(ctx, p, TxMeta::default());
        }
    });
    w.run_until_idle(100_000);
    let elapsed = w.now().since(t0);
    // 10 * (1492+14 B) * 8 / 10 Mb/s ≈ 12 ms.
    assert!(
        elapsed.as_millis() >= 11 && elapsed.as_millis() <= 20,
        "bulk serialization took {elapsed}"
    );
}

#[test]
fn multicast_is_scoped_to_membership_and_segment() {
    let mut w = World::new(11);
    let lan = w.add_segment(LinkConfig::lan());
    let other_lan = w.add_segment(LinkConfig::lan());
    let src = w.add_host(HostConfig::conventional("src"));
    let member = w.add_host(HostConfig::conventional("member"));
    let bystander = w.add_host(HostConfig::conventional("bystander"));
    let elsewhere = w.add_host(HostConfig::conventional("elsewhere"));
    let r = w.add_router(RouterConfig::named("r"));
    w.attach(src, lan, Some("10.0.0.1/24"));
    w.attach(member, lan, Some("10.0.0.2/24"));
    w.attach(bystander, lan, Some("10.0.0.3/24"));
    w.attach(r, lan, Some("10.0.0.254/24"));
    w.attach(r, other_lan, Some("10.0.1.254/24"));
    w.attach(elsewhere, other_lan, Some("10.0.1.2/24"));
    w.compute_routes();

    let group = ip("224.1.2.3");
    w.host_mut(member).join_multicast(0, group);

    w.host_do(src, |h, ctx| {
        let mut p = Ipv4Packet::new(
            ip("10.0.0.1"),
            group,
            IpProtocol::Udp,
            Bytes::from_static(b"to the group"),
        );
        p.ident = h.alloc_ident();
        p.ttl = 1;
        h.send_ip(ctx, p, TxMeta::default());
    });
    w.run_until_idle(10_000);

    let delivered_at = |n: NodeId| {
        w.trace
            .events()
            .iter()
            .filter(|e| e.node == n && matches!(e.kind, netsim::TraceEventKind::DeliveredLocal))
            .count()
    };
    assert_eq!(delivered_at(member), 1, "member got the group packet");
    assert_eq!(delivered_at(bystander), 0, "non-member ignored it");
    assert_eq!(
        delivered_at(elsewhere),
        0,
        "no multicast routing off-segment"
    );
}

#[test]
fn firewall_hole_punching_end_to_end() {
    // The §3.1 firewall-home scenario: everything inbound to the home net
    // is denied except IP-in-IP tunnels addressed to the home agent's box.
    let mut w = World::new(13);
    let home = w.add_segment(LinkConfig::lan());
    let outside = w.add_segment(LinkConfig::lan());
    let fw = w.add_router(RouterConfig::named("firewall"));
    let agent = w.add_host(HostConfig::agent("agent"));
    let inner_srv = w.add_host(HostConfig::conventional("inner"));
    let visitor = w.add_host(HostConfig::conventional("visitor"));
    w.attach(agent, home, Some("171.64.15.1/24"));
    w.attach(inner_srv, home, Some("171.64.15.7/24"));
    w.attach(fw, home, Some("171.64.15.254/24"));
    w.attach(fw, outside, Some("36.186.0.254/24"));
    w.attach(visitor, outside, Some("36.186.0.99/24"));
    w.compute_routes();
    // Firewall: permit tunnels to the agent, deny all other inbound.
    let rules = &mut w.router_mut(fw).filters;
    rules.push(FilterRule::permit(
        FilterWhen::Ingress,
        None,
        Some(cidr("171.64.15.1/32")),
        Some(IpProtocol::IpInIp),
    ));
    rules.push(FilterRule {
        iface: Some(1), // arriving from outside
        ..FilterRule::firewall_deny(None, Some(cidr("171.64.15.0/24")))
    });

    // Plain packet to the inner server: eaten by the firewall.
    w.host_do(visitor, |h, ctx| {
        h.send_ping(ctx, ip("36.186.0.99"), ip("171.64.15.7"), 1)
    });
    w.run_until_idle(10_000);
    assert!(w
        .trace
        .drops(|p| p.dst == ip("171.64.15.7"))
        .iter()
        .any(|(_, r)| *r == DropReason::Firewall));
    assert!(w.host(inner_srv).icmp_log.is_empty());

    // A tunnel to the agent carrying the same inner ping: the agent
    // decapsulates and forwards it to the inner server.
    w.host_do(visitor, |h, ctx| {
        let msg = IcmpMessage::EchoRequest {
            ident: 9,
            seq: 2,
            payload: Bytes::from_static(b"via tunnel"),
        };
        let mut inner = Ipv4Packet::new(
            ip("36.186.0.99"),
            ip("171.64.15.7"),
            IpProtocol::Icmp,
            Bytes::from(msg.emit()),
        );
        inner.ident = h.alloc_ident();
        let outer = netsim::wire::encap::encapsulate(
            netsim::EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            h.alloc_ident(),
        )
        .unwrap();
        h.send_ip(ctx, outer, TxMeta::default());
    });
    w.run_until_idle(10_000);
    assert!(w
        .host(inner_srv)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 2, .. })));
}

#[test]
fn route_computation_prefers_low_latency_paths() {
    // A triangle: a — (fast) — m — (fast) — b, plus a direct a — (slow) — b.
    // Dijkstra must route a→b through m.
    let mut w = World::new(17);
    let lan_a = w.add_segment(LinkConfig::lan());
    let lan_b = w.add_segment(LinkConfig::lan());
    let fast1 = w.add_segment(LinkConfig::wan(5));
    let fast2 = w.add_segment(LinkConfig::wan(5));
    let slow = w.add_segment(LinkConfig::wan(100));
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    let ra = w.add_router(RouterConfig::named("ra"));
    let rm = w.add_router(RouterConfig::named("rm"));
    let rb = w.add_router(RouterConfig::named("rb"));
    w.attach(a, lan_a, Some("10.0.1.10/24"));
    w.attach(ra, lan_a, Some("10.0.1.1/24"));
    w.attach(ra, fast1, Some("192.168.1.1/30"));
    w.attach(rm, fast1, Some("192.168.1.2/30"));
    w.attach(rm, fast2, Some("192.168.2.1/30"));
    w.attach(rb, fast2, Some("192.168.2.2/30"));
    w.attach(ra, slow, Some("192.168.3.1/30"));
    w.attach(rb, slow, Some("192.168.3.2/30"));
    w.attach(rb, lan_b, Some("10.0.2.1/24"));
    w.attach(b, lan_b, Some("10.0.2.10/24"));
    w.compute_routes();

    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
    });
    w.run_until_idle(100_000);
    let latency = w
        .trace
        .first_delivery_latency(|p| p.dst == ip("10.0.2.10"))
        .unwrap();
    // Via rm: ~10 ms (+ per-hop ARP exchanges on first contact).
    // Via the slow link it would exceed 100 ms before ARP.
    assert!(latency.as_millis() < 60, "took the slow path: {latency}");
    // And the request transited rm (4 wire legs, not 3).
    assert_eq!(
        w.trace
            .hops(|p| p.dst == ip("10.0.2.10") && p.protocol == IpProtocol::Icmp),
        4
    );
}

#[test]
fn transit_policy_blocks_through_traffic_but_not_local() {
    // visitor → stub network that refuses transit → far destination.
    let mut w = World::new(19);
    let stub = w.add_segment(LinkConfig::lan());
    let left = w.add_segment(LinkConfig::wan(5));
    let right = w.add_segment(LinkConfig::wan(5));
    let src = w.add_host(HostConfig::conventional("src"));
    let dst = w.add_host(HostConfig::conventional("dst"));
    let local = w.add_host(HostConfig::conventional("local"));
    let r_in = w.add_router(RouterConfig::named("r-in"));
    let r_out = w.add_router(RouterConfig::named("r-out"));
    // src —left— r_in —stub— r_out —right— dst ; local on stub.
    w.attach(src, left, Some("10.9.0.10/24"));
    w.attach(r_in, left, Some("10.9.0.1/24"));
    w.attach(r_in, stub, Some("36.186.0.253/24"));
    w.attach(local, stub, Some("36.186.0.7/24"));
    w.attach(r_out, stub, Some("36.186.0.254/24"));
    w.attach(r_out, right, Some("10.8.0.1/24"));
    w.attach(dst, right, Some("10.8.0.10/24"));
    w.compute_routes();
    // The stub's entry router refuses to carry traffic not destined inside.
    w.router_mut(r_in)
        .filters
        .push(FilterRule::no_transit(0, cidr("36.186.0.0/24")));

    // Through-traffic dies at r_in...
    w.host_do(src, |h, ctx| {
        h.send_ping(ctx, ip("10.9.0.10"), ip("10.8.0.10"), 1)
    });
    w.run_until_idle(100_000);
    assert!(w
        .trace
        .drops(|p| p.dst == ip("10.8.0.10"))
        .iter()
        .any(|(_, r)| *r == DropReason::TransitPolicy));
    // ...but traffic into the stub is welcome.
    w.host_do(src, |h, ctx| {
        h.send_ping(ctx, ip("10.9.0.10"), ip("36.186.0.7"), 2)
    });
    w.run_until_idle(100_000);
    assert!(w
        .host(local)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 2, .. })));
}

#[test]
fn pcap_capture_of_simulated_traffic_is_wireshark_shaped() {
    // Drive a ping, then write the frames we can reconstruct from the
    // trace into a pcap and validate its structure.
    use netsim::wire::pcap::PcapWriter;
    let mut w = World::new(23);
    let lan = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 1)
    });
    w.run_until_idle(10_000);

    let mut pcap = PcapWriter::new(Vec::new()).unwrap();
    let mut frames = 0u64;
    for e in w.trace.events() {
        if matches!(e.kind, netsim::TraceEventKind::Sent) {
            // Reconstruct a representative frame for the record.
            let pkt = Ipv4Packet::new(
                e.packet.src,
                e.packet.dst,
                e.packet.protocol,
                Bytes::from(vec![0u8; e.packet.wire_len.saturating_sub(20)]),
            );
            let frame = netsim::wire::ethernet::EthernetFrame::new(
                netsim::wire::ethernet::MacAddr::from_index(1),
                netsim::wire::ethernet::MacAddr::from_index(2),
                netsim::wire::ethernet::EtherType::Ipv4,
                pkt.emit(),
            );
            pcap.write_frame(e.at, &frame.emit()).unwrap();
            frames += 1;
        }
    }
    assert!(frames >= 2, "request + reply");
    assert_eq!(pcap.frames_written(), frames);
    let buf = pcap.finish().unwrap();
    assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
    assert!(buf.len() > 24 + frames as usize * 16);
}

#[test]
fn world_pcap_capture_records_all_wire_frames() {
    let mut w = World::new(29);
    let lan = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    let sink: Box<dyn std::io::Write> = Box::new(std::io::Cursor::new(Vec::new()));
    w.capture_pcap(sink).unwrap();
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 1)
    });
    w.run_until_idle(10_000);
    let frames = w.finish_pcap().unwrap();
    // ARP request + reply + echo request + echo reply = 4 frames.
    assert_eq!(frames, 4, "tap saw every wire frame");
    // Capture is off afterwards; more traffic writes nothing.
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), 2)
    });
    w.run_until_idle(10_000);
    assert_eq!(w.finish_pcap().unwrap(), 0);
}

#[test]
fn routers_answer_pings() {
    let (mut w, a, _b) = narrow_middle();
    // r1's lan_a-side address.
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.1.1"), 1)
    });
    w.run_until_idle(10_000);
    assert!(w.host(a).icmp_log.iter().any(|e| matches!(
        e.message,
        IcmpMessage::EchoReply { seq: 1, .. }
    ) && e.from == ip("10.0.1.1")));
    // And the far router across the topology.
    w.host_do(a, |h, ctx| {
        h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.1"), 2)
    });
    w.run_until_idle(10_000);
    assert!(w.host(a).icmp_log.iter().any(|e| matches!(
        e.message,
        IcmpMessage::EchoReply { seq: 2, .. }
    ) && e.from == ip("10.0.2.1")));
}

#[test]
fn ttl_protects_against_routing_loops() {
    // Two routers pointing a prefix at each other: packets ping-pong until
    // TTL runs out, then die with an attributed drop and an ICMP error.
    let mut w = World::new(31);
    let lan = w.add_segment(LinkConfig::lan());
    let middle = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let r1 = w.add_router(RouterConfig::named("r1"));
    let r2 = w.add_router(RouterConfig::named("r2"));
    w.attach(a, lan, Some("10.0.1.10/24"));
    w.attach(r1, lan, Some("10.0.1.1/24"));
    w.attach(r1, middle, Some("192.168.0.1/24"));
    w.attach(r2, middle, Some("192.168.0.2/24"));
    // Sane base routes first (so ICMP errors can come back), then the
    // poison: r1 sends 99.0.0.0/8 to r2, r2 sends it straight back.
    w.compute_routes();
    w.host_mut(a)
        .add_route("0.0.0.0/0".parse().unwrap(), 0, Some(ip("10.0.1.1")));
    w.router_mut(r1)
        .add_route("99.0.0.0/8".parse().unwrap(), 1, Some(ip("192.168.0.2")));
    w.router_mut(r2)
        .add_route("99.0.0.0/8".parse().unwrap(), 0, Some(ip("192.168.0.1")));

    w.host_do(a, |h, ctx| {
        let mut p = Ipv4Packet::new(
            ip("10.0.1.10"),
            ip("99.1.2.3"),
            IpProtocol::Udp,
            Bytes::from_static(b"looping"),
        );
        p.ttl = 16;
        p.ident = h.alloc_ident();
        h.send_ip(ctx, p, TxMeta::default());
    });
    w.run_until_idle(100_000);
    let drops = w.trace.drops(|p| p.dst == ip("99.1.2.3"));
    assert!(drops.iter().any(|(_, r)| *r == DropReason::TtlExpired));
    // The packet bounced TTL-1 times before dying, not forever.
    let hops = w.trace.hops(|p| p.dst == ip("99.1.2.3"));
    assert_eq!(hops, 16, "one traversal per TTL tick");
    // The sender heard about it.
    assert!(w
        .host(a)
        .icmp_log
        .iter()
        .any(|e| matches!(e.message, IcmpMessage::TimeExceeded { .. })));
}

#[test]
fn corrupted_frames_vanish_like_on_real_wires() {
    // 100% corruption: every frame has one flipped bit; ARP/IP checksums
    // catch everything and nothing is delivered upward.
    let mut w = World::new(37);
    let lan = w.add_segment(LinkConfig {
        fault: netsim::FaultInjector {
            corrupt_prob: 1.0,
            ..Default::default()
        },
        ..LinkConfig::lan()
    });
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    w.attach(a, lan, Some("10.0.0.1/24"));
    w.attach(b, lan, Some("10.0.0.2/24"));
    for seq in 0..5 {
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.0.1"), ip("10.0.0.2"), seq)
        });
        w.run_for(SimDuration2::from_millis(100));
    }
    w.run_until_idle(100_000);
    assert!(w.host(b).icmp_log.is_empty(), "nothing valid got through");
    assert!(w.host(a).icmp_log.is_empty());
}

use netsim::SimDuration as SimDuration2;
