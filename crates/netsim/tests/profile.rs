//! Integration tests for the flight recorder (`netsim::profile`): scope
//! trees built from real simulations, counter wiring through the route
//! cache, the gauge sampler on a live world, and the O(1)-allocation
//! guarantee of the HDR histogram.
//!
//! The recorder is process-global, so every test that enables it runs
//! under one mutex and resets state on the way in and out; tests that
//! never enable profiling (the histogram and sampler ones) don't need it.

use std::sync::Mutex;

use netsim::profile;
use netsim::{Histogram, HostConfig, LinkConfig, RouterConfig, SimDuration, World};

/// Serializes the profiling-enabled tests: the recorder's enable flag,
/// counters, and merged tree are process-wide.
static GUARD: Mutex<()> = Mutex::new(());

fn with_profiling(f: impl FnOnce()) {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    profile::reset();
    profile::set_enabled(true);
    f();
    profile::set_enabled(false);
    profile::reset();
}

fn ip(s: &str) -> netsim::Ipv4Addr {
    s.parse().unwrap()
}

/// Two LANs joined by a WAN via two routers; returns the world and the
/// sending host with its source/destination addresses.
fn ping_world() -> (World, netsim::NodeId) {
    let mut w = World::new(1);
    let lan_a = w.add_segment(LinkConfig::lan());
    let mid = w.add_segment(LinkConfig::wan(10));
    let lan_b = w.add_segment(LinkConfig::lan());
    let a = w.add_host(HostConfig::conventional("a"));
    let b = w.add_host(HostConfig::conventional("b"));
    let r1 = w.add_router(RouterConfig::named("r1"));
    let r2 = w.add_router(RouterConfig::named("r2"));
    w.attach(a, lan_a, Some("10.0.1.10/24"));
    w.attach(r1, lan_a, Some("10.0.1.1/24"));
    w.attach(r1, mid, Some("192.168.0.1/30"));
    w.attach(r2, mid, Some("192.168.0.2/30"));
    w.attach(r2, lan_b, Some("10.0.2.1/24"));
    w.attach(b, lan_b, Some("10.0.2.10/24"));
    w.compute_routes();
    (w, a)
}

fn run_pings(w: &mut World, a: netsim::NodeId, count: u16) {
    for seq in 0..count {
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq)
        });
    }
    w.run_until_idle(1_000_000);
}

#[test]
fn simulation_scopes_aggregate_into_tree() {
    with_profiling(|| {
        let (mut w, a) = ping_world();
        run_pings(&mut w, a, 8);
        let report = profile::capture();
        let names: Vec<&str> = {
            fn collect<'a>(stats: &'a [profile::ScopeStat], out: &mut Vec<&'a str>) {
                for s in stats {
                    out.push(&s.name);
                    collect(&s.children, out);
                }
            }
            let mut v = Vec::new();
            collect(&report.roots, &mut v);
            v
        };
        for expected in [
            "world/run",
            "sched/pop_batch",
            "world/dispatch",
            "link/transmit",
            "router/forward",
            "host/rx",
        ] {
            assert!(
                names.contains(&expected),
                "missing scope {expected}: {names:?}"
            );
        }
        // pop_batch and dispatch nest under the run loop.
        let run = report
            .roots
            .iter()
            .find(|r| r.name == "world/run")
            .expect("world/run is a root");
        assert!(run.children.iter().any(|c| c.name == "sched/pop_batch"));
        assert!(run.calls >= 1);
        assert!(run.incl_ns > 0);
    });
}

#[test]
fn disabled_recorder_observes_nothing() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    profile::reset();
    assert!(!profile::enabled());
    let (mut w, a) = ping_world();
    run_pings(&mut w, a, 4);
    let report = profile::capture();
    assert!(report.roots.is_empty(), "no scopes recorded while disabled");
    assert!(report.counters.iter().all(|(_, v)| *v == 0));
}

#[test]
fn route_cache_counters_accumulate() {
    with_profiling(|| {
        // Tables at or below the linear-scan threshold skip the result cache
        // entirely, so build one large enough to engage the indexed path.
        let mut table = netsim::RouteTable::new();
        for i in 0..16u8 {
            table.add(netsim::device::router::RouteEntry {
                prefix: netsim::Ipv4Cidr::new(ip(&format!("10.{i}.0.0")), 16),
                iface: 0,
                gateway: None,
            });
        }
        for _ in 0..8 {
            table.lookup(ip("10.3.4.5"));
        }
        profile::flush_thread();
        let hits = profile::counter(profile::Counter::RouteCacheHit);
        let misses = profile::counter(profile::Counter::RouteCacheMiss);
        // The first lookup misses, repeats hit the cache.
        assert!(misses >= 1, "first lookups miss: {misses}");
        assert!(
            hits > misses,
            "repeated lookups should mostly hit: {hits} vs {misses}"
        );
    });
}

#[test]
fn scopes_attribute_allocations() {
    with_profiling(|| {
        {
            let _s = profile::scope("test/allocating");
            std::hint::black_box(vec![0u8; 4096]);
        }
        profile::flush_thread();
        let report = profile::capture();
        let node = report
            .roots
            .iter()
            .find(|r| r.name == "test/allocating")
            .expect("scope recorded");
        assert!(node.allocs >= 1, "Vec allocation attributed");
        assert!(node.alloc_bytes >= 4096);
    });
}

#[test]
fn histogram_records_allocate_nothing() {
    // The HDR histogram is fixed-size: after construction, recording any
    // number of samples must not allocate. Warm up, then diff the
    // thread-local allocation counter around one million records.
    let mut h = Histogram::EMPTY;
    h.record(1);
    let (allocs_before, _) = profile::thread_allocations();
    for i in 0..1_000_000u64 {
        h.record(i.wrapping_mul(2_654_435_761) % (1 << 40));
    }
    let (allocs_after, _) = profile::thread_allocations();
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "1M histogram records must allocate nothing"
    );
    assert_eq!(h.count(), 1_000_001);
    assert!(h.percentile(50).is_some());
}

#[test]
fn world_sampler_records_bounded_monotonic_gauges() {
    // The gauge sampler is per-world state driven by sim time; it does
    // not need the global recorder.
    let (mut w, a) = ping_world();
    w.enable_sampling(SimDuration(50), 16);
    run_pings(&mut w, a, 64);
    let samples = w.samples().expect("sampler enabled");
    assert!(!samples.is_empty(), "pings span several sample intervals");
    assert!(samples.len() <= 16, "cap respected: {}", samples.len());
    for pair in samples.windows(2) {
        assert!(
            pair[0].sim_us < pair[1].sim_us,
            "sim time strictly advances"
        );
        assert!(
            pair[0].dispatched <= pair[1].dispatched,
            "dispatch counter is cumulative"
        );
    }
}

#[test]
fn report_survives_json_round_trip() {
    with_profiling(|| {
        let (mut w, a) = ping_world();
        run_pings(&mut w, a, 4);
        let value = profile::report_value(64);
        let json = serde_json::to_string(&value).unwrap();
        let parsed = serde_json::from_str(&json).unwrap();
        let report = profile::ProfileReport::from_value(&parsed).expect("parses back");
        assert!(!report.roots.is_empty());
        assert!(report.render_hot(10).contains("world/run"));
        let chrome = serde_json::to_string(&report.chrome_trace()).unwrap();
        assert!(chrome.contains("\"ph\":\"X\""));
    });
}
