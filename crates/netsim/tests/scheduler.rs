//! Differential property tests: the hierarchical timing wheel against the
//! reference binary heap. Both backends sit behind the same `EventQueue`
//! API and must produce **byte-identical** pop sequences — same `(at,
//! seq)` order, same payloads, same cancel return values, same stats —
//! over arbitrary interleavings of pushes (with delays straddling every
//! wheel-level boundary and the 2³² µs overflow horizon), cancellations,
//! and pops.

use proptest::prelude::*;

use netsim::{
    Event, EventKind, EventQueue, NodeId, SchedulerKind, SimTime, Timer, TimerHandle, TimerToken,
};

/// Delays chosen to straddle wheel-level boundaries: level 0 holds
/// sub-2⁸ µs offsets, level 1 sub-2¹⁶, level 2 sub-2²⁴, level 3 sub-2³²,
/// and anything ≥ 2³² lands in the overflow heap.
const DELAYS: &[u64] = &[
    0,
    1,
    2,
    7,
    255,
    256,
    257,
    1_000,
    65_535,
    65_536,
    65_537,
    (1 << 24) - 1,
    1 << 24,
    (1 << 24) + 1,
    123_456_789,
    (1 << 32) - 1,
    1 << 32,
    (1 << 32) + 1,
    (1 << 33) + 98_765,
];

fn tick(i: usize) -> EventKind {
    EventKind::Timer(Timer {
        node: NodeId(i % 8),
        token: TimerToken(i as u64),
    })
}

fn token_of(kind: &EventKind) -> u64 {
    match kind {
        EventKind::Timer(t) => t.token.0,
        EventKind::Deliver { .. } => unreachable!("these tests only push timers"),
    }
}

/// Both queues fed the same operations. Handles come from each queue's own
/// slab but are allocated in lockstep, so they travel in pairs.
struct Pair {
    wheel: EventQueue,
    heap: EventQueue,
    handles: Vec<(TimerHandle, TimerHandle)>,
    /// Timestamp of the last popped event — pushes are always `now +
    /// delay`, mirroring how the `World` uses the queue.
    now: u64,
    pushed: usize,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            wheel: EventQueue::with_kind(SchedulerKind::Wheel),
            heap: EventQueue::with_kind(SchedulerKind::ReferenceHeap),
            handles: Vec::new(),
            now: 0,
            pushed: 0,
        }
    }

    fn push(&mut self, delay: u64, cancellable: bool) {
        let at = SimTime(self.now.saturating_add(delay));
        let kind = tick(self.pushed);
        self.pushed += 1;
        if cancellable {
            let hw = self.wheel.push_cancellable(at, kind.clone());
            let hh = self.heap.push_cancellable(at, kind);
            self.handles.push((hw, hh));
        } else {
            self.wheel.push(at, kind.clone());
            self.heap.push(at, kind);
        }
        self.check_reconciliation();
    }

    fn cancel(&mut self, pick: usize) {
        if self.handles.is_empty() {
            return;
        }
        let (hw, hh) = self.handles[pick % self.handles.len()];
        // Cancel must agree: both succeed (live timer) or both report
        // stale (already popped or already cancelled).
        assert_eq!(self.wheel.cancel(hw), self.heap.cancel(hh));
        assert_eq!(self.wheel.len(), self.heap.len());
        self.check_reconciliation();
    }

    /// The scheduler-stats invariant, checked mid-interleaving on both
    /// backends: every push is either already dispatched, cancelled before
    /// firing, or still pending in the queue.
    fn check_reconciliation(&self) {
        for (label, q) in [("wheel", &self.wheel), ("heap", &self.heap)] {
            let s = q.stats();
            assert_eq!(
                s.pushed,
                s.dispatched + s.cancelled + q.len() as u64,
                "{label}: pushed must equal dispatched + cancelled + pending"
            );
        }
    }

    /// Pop one event from each backend and check they match; returns false
    /// once both are empty (and asserts they empty together).
    fn pop_matches(&mut self) -> bool {
        match (self.wheel.pop(), self.heap.pop()) {
            (Some(a), Some(b)) => {
                assert_eq!((a.at, a.seq), (b.at, b.seq), "pop order diverged");
                assert_eq!(token_of(&a.kind), token_of(&b.kind), "payload diverged");
                assert!(a.at.0 >= self.now, "time ran backwards");
                self.now = a.at.0;
                true
            }
            (None, None) => false,
            (a, b) => panic!("one backend emptied early: wheel={a:?} heap={b:?}"),
        }
    }

    fn drain_and_check(&mut self) {
        while self.pop_matches() {
            self.check_reconciliation();
        }
        assert_eq!(self.wheel.stats(), self.heap.stats());
        self.check_reconciliation();
        let s = self.wheel.stats();
        assert_eq!(
            s.dispatched + s.cancelled,
            s.pushed,
            "drained queue must account for every push"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary interleavings of push / cancel / pop, delays drawn from
    /// the boundary-straddling table (with ±jitter so both sides of each
    /// boundary occur), popped dry at the end.
    #[test]
    fn wheel_matches_reference_heap(
        ops in proptest::collection::vec(
            (0u8..10, any::<u16>(), 0u64..3),
            1..250,
        )
    ) {
        let mut pair = Pair::new();
        for (sel, raw, jitter) in ops {
            match sel {
                // Pushes dominate so queues grow deep enough to cascade.
                0..=4 => {
                    let delay = DELAYS[raw as usize % DELAYS.len()].saturating_add(jitter);
                    pair.push(delay, raw & 1 == 0);
                }
                5..=6 => pair.cancel(raw as usize),
                _ => {
                    for _ in 0..=jitter {
                        pair.pop_matches();
                    }
                }
            }
        }
        pair.drain_and_check();
    }

    /// Same-tick bursts: many events at identical timestamps must pop in
    /// exact insertion (seq) order from both backends.
    #[test]
    fn same_tick_ties_preserve_insertion_order(
        burst in proptest::collection::vec((0u64..4, any::<u16>()), 1..120)
    ) {
        let mut pair = Pair::new();
        for (slot, raw) in burst {
            // Four distinct timestamps, many collisions per timestamp.
            pair.push(slot * 256, raw & 1 == 0);
        }
        pair.drain_and_check();
    }

    /// Deadline-bounded batch drains (`pop_batch_until`) must agree with
    /// the reference heap on batch times, batch contents, and on what is
    /// left behind — this exercises the wheel's bounded cursor
    /// normalization, which must never advance past the deadline.
    #[test]
    fn batch_drain_matches_reference_heap(
        pushes in proptest::collection::vec((any::<u16>(), 0u64..3), 1..150),
        deadlines in proptest::collection::vec(any::<u16>(), 1..40,)
    ) {
        let mut pair = Pair::new();
        for (raw, jitter) in pushes {
            let delay = DELAYS[raw as usize % DELAYS.len()].saturating_add(jitter);
            pair.push(delay, raw & 1 == 0);
        }
        let (mut bw, mut bh) = (Vec::new(), Vec::new());
        let mut horizon = 0u64;
        for d in deadlines {
            horizon = horizon.saturating_add(d as u64 * 4096);
            let deadline = SimTime(horizon);
            loop {
                bw.clear();
                bh.clear();
                let tw = pair.wheel.pop_batch_until(deadline, &mut bw);
                let th = pair.heap.pop_batch_until(deadline, &mut bh);
                prop_assert_eq!(tw, th, "batch time diverged");
                let key = |e: &Event| (e.at, e.seq, token_of(&e.kind));
                prop_assert_eq!(
                    bw.iter().map(key).collect::<Vec<_>>(),
                    bh.iter().map(key).collect::<Vec<_>>(),
                    "batch contents diverged"
                );
                pair.check_reconciliation();
                match tw {
                    Some(t) => pair.now = t.0,
                    None => break,
                }
            }
        }
        pair.drain_and_check();
    }
}
