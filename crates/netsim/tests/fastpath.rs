//! Fast-path / slow-path forwarding equivalence.
//!
//! The router's zero-copy fast path (`try_fast_forward`) must be
//! observationally identical to the parse → route → re-emit slow path it
//! short-circuits: same wire bytes (checked via pcap capture), same trace
//! events, same link statistics — across plain packets, packets with IP
//! options (which the fast path must decline), encapsulated payloads,
//! expiring TTLs, and unroutable destinations.

use std::io::Write;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use netsim::device::TxMeta;
use netsim::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet};
use netsim::wire::srcroute;
use netsim::{FaultInjector, HostConfig, LinkConfig, NodeId, RouterConfig, SegmentId, World};

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// A pcap sink whose buffer outlives the `World` holding the writer.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct Rig {
    w: World,
    alice: NodeId,
    r: NodeId,
    pcap: Arc<Mutex<Vec<u8>>>,
}

/// Two LANs joined by one router, pcap capture on, alice holding a
/// default route so even unroutable destinations reach the router.
fn rig(fast: bool) -> Rig {
    let mut w = World::new(42);
    let lan_a = w.add_segment(LinkConfig::lan());
    let lan_b = w.add_segment(LinkConfig::lan());
    assert_eq!((lan_a, lan_b), (SegmentId(0), SegmentId(1)));
    let alice = w.add_host(HostConfig::conventional("alice"));
    let bob = w.add_host(HostConfig::decap_capable("bob"));
    let r = w.add_router(RouterConfig::named("r"));
    let alice_if = w.attach(alice, lan_a, Some("10.0.1.10/24"));
    w.attach(bob, lan_b, Some("10.0.2.10/24"));
    w.attach(r, lan_a, Some("10.0.1.1/24"));
    w.attach(r, lan_b, Some("10.0.2.1/24"));
    w.compute_routes();
    w.host_mut(alice).add_route(
        Ipv4Cidr::new(Ipv4Addr(0), 0),
        alice_if,
        Some(ip("10.0.1.1")),
    );
    w.router_mut(r).set_fast_forward(fast);
    let pcap = Arc::new(Mutex::new(Vec::new()));
    w.capture_pcap(Box::new(SharedSink(pcap.clone()))).unwrap();
    Rig { w, alice, r, pcap }
}

/// One randomly generated send, as produced by [`arb_spec`].
#[derive(Debug, Clone)]
struct Spec {
    payload: Vec<u8>,
    ttl: u8,
    ident: u16,
    proto: u8,
    /// 0 = plain, 1 = loose source route option, 2 = IP-in-IP payload.
    variant: u8,
    unroutable: bool,
}

impl Spec {
    /// Will the fast path itself carry this packet (once ARP is warm)?
    fn fast_eligible(&self) -> bool {
        self.ttl > 1 && !self.unroutable && self.variant != 1
    }
}

prop_compose! {
    fn arb_spec()(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        ttl in 1u8..=8,
        ident in any::<u16>(),
        proto in 0u8..3,
        variant in 0u8..3,
        unroutable in any::<bool>(),
    ) -> Spec {
        Spec { payload, ttl, ident, proto, variant, unroutable }
    }
}

fn build_packet(s: &Spec) -> Ipv4Packet {
    let src = ip("10.0.1.10");
    let dst = if s.unroutable {
        ip("192.168.9.9")
    } else {
        ip("10.0.2.10")
    };
    let proto = match s.proto {
        0 => IpProtocol::Udp,
        1 => IpProtocol::Tcp,
        _ => IpProtocol::Other(0xC8),
    };
    let mut p = if s.variant == 2 {
        let inner = Ipv4Packet::new(src, dst, proto, Bytes::from(s.payload.clone()));
        Ipv4Packet::new(src, dst, IpProtocol::IpInIp, inner.emit())
    } else {
        Ipv4Packet::new(src, dst, proto, Bytes::from(s.payload.clone()))
    };
    if s.variant == 1 {
        srcroute::apply_route(&mut p, &[ip("10.0.1.1")], dst);
    }
    p.ttl = s.ttl;
    p.ident = s.ident;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_path_is_observationally_identical_to_slow_path(
        specs in proptest::collection::vec(arb_spec(), 1..6),
    ) {
        let mut fast = rig(true);
        let mut slow = rig(false);
        for s in &specs {
            let p = build_packet(s);
            let q = p.clone();
            fast.w.host_do(fast.alice, |h, ctx| h.send_ip(ctx, p, TxMeta::default()));
            slow.w.host_do(slow.alice, |h, ctx| h.send_ip(ctx, q, TxMeta::default()));
            fast.w.run_until_idle(100_000);
            slow.w.run_until_idle(100_000);
        }
        prop_assert_eq!(fast.w.trace.events(), slow.w.trace.events());
        for seg in [SegmentId(0), SegmentId(1)] {
            prop_assert_eq!(fast.w.segment_stats(seg), slow.w.segment_stats(seg));
        }
        fast.w.finish_pcap().unwrap();
        slow.w.finish_pcap().unwrap();
        prop_assert_eq!(&*fast.pcap.lock().unwrap(), &*slow.pcap.lock().unwrap());
        // The slow-path router never takes the fast path; the fast-path
        // router does as soon as ARP is warm (the first eligible packet is
        // parked behind ARP resolution and forwarded by the slow machinery).
        prop_assert_eq!(slow.w.router_mut(slow.r).fast_path_forwards, 0);
        if specs.iter().filter(|s| s.fast_eligible()).count() >= 2 {
            prop_assert!(fast.w.router_mut(fast.r).fast_path_forwards > 0);
        }
    }
}

#[test]
fn fast_path_actually_fires() {
    let mut f = rig(true);
    for seq in 0..3 {
        f.w.host_do(f.alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq)
        });
        f.w.run_until_idle(100_000);
    }
    // First request/reply pair is parked behind ARP; the rest fly fast.
    assert!(f.w.router_mut(f.r).fast_path_forwards >= 2);
}

/// `FaultInjector::decide` must make exactly the draws `apply` makes, so
/// a buffer-free transmit path leaves the RNG stream — and therefore every
/// later random event in the world — unchanged.
#[test]
fn fault_decide_matches_apply_and_rng_stream() {
    let configs = [
        FaultInjector::default(),
        FaultInjector {
            drop_prob: 0.3,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
        },
        FaultInjector {
            drop_prob: 0.1,
            corrupt_prob: 0.4,
            duplicate_prob: 0.2,
        },
        FaultInjector {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            duplicate_prob: 0.0,
        },
    ];
    for (ci, f) in configs.iter().enumerate() {
        let mut rng_a = StdRng::seed_from_u64(1000 + ci as u64);
        let mut rng_b = StdRng::seed_from_u64(1000 + ci as u64);
        for len in [0usize, 1, 60, 1500] {
            for _ in 0..200 {
                let mut buf = vec![0u8; len];
                let a = f.apply(&mut buf, &mut rng_a);
                let b = f.decide(len, &mut rng_b);
                assert_eq!(a, b, "outcome diverged (config {ci}, len {len})");
                // Both streams must now be in the same state.
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "rng stream diverged (config {ci}, len {len})"
                );
            }
        }
    }
}
