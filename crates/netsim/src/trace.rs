//! Packet tracing and measurement.
//!
//! Experiments observe the network exclusively through this module: every
//! send, forward, local delivery and drop is recorded with a parsed summary
//! of the packet (including the inner header when the packet is a tunnel).
//! That is enough to measure everything the paper's figures illustrate —
//! path hop counts, per-direction latency, bytes on the wire, and exactly
//! *which router dropped which packet and why* (Figure 2).
//!
//! Long-running simulations can bound the memory the trace consumes with
//! [`PacketTrace::with_capacity`]: the trace becomes a ring buffer keeping
//! the most recent events and counting the ones it had to shed.

use std::collections::{HashMap, VecDeque};

use crate::event::NodeId;
use crate::time::SimTime;
use crate::wire::encap;
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};

/// Why a packet was dropped. The first three are the network policies the
/// paper names in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A boundary router saw a packet arriving from outside whose source
    /// address claims to be inside (ingress filtering), or vice versa
    /// (egress filtering). The paper's Figure 2 failure.
    SourceAddressFilter,
    /// An end-user network refusing to carry transit traffic (§3.1).
    TransitPolicy,
    /// An explicit firewall rule.
    Firewall,
    /// TTL reached zero.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// Packet larger than link MTU with DF set.
    MtuExceeded,
    /// Fault injection on a link.
    LinkFault,
    /// ARP could not resolve the next hop on the final segment.
    ArpFailure,
    /// Arrived at a host with no protocol handler / listener.
    NoListener,
    /// Failed to parse (e.g. corrupted by fault injection).
    Malformed,
}

impl DropReason {
    /// Every reason, in stable [`DropReason::index`] order.
    pub const ALL: [DropReason; 10] = [
        DropReason::SourceAddressFilter,
        DropReason::TransitPolicy,
        DropReason::Firewall,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::MtuExceeded,
        DropReason::LinkFault,
        DropReason::ArpFailure,
        DropReason::NoListener,
        DropReason::Malformed,
    ];

    /// Dense index for counter arrays (`ALL[r.index()] == r`).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::SourceAddressFilter => "source-address filter",
            DropReason::TransitPolicy => "transit policy",
            DropReason::Firewall => "firewall",
            DropReason::TtlExpired => "ttl expired",
            DropReason::NoRoute => "no route",
            DropReason::MtuExceeded => "mtu exceeded (DF)",
            DropReason::LinkFault => "link fault",
            DropReason::ArpFailure => "arp failure",
            DropReason::NoListener => "no listener",
            DropReason::Malformed => "malformed",
        };
        f.write_str(s)
    }
}

/// A compact, parsed view of one IP packet as seen at one point in the net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSummary {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// The IP protocol of the payload.
    pub protocol: IpProtocol,
    /// The IP identification field — stable across hops for one packet, so
    /// it lets measurements pair a delivery with the transmission that
    /// actually carried it (retransmissions get fresh idents).
    pub ident: u16,
    /// On-wire length of the packet, bytes.
    pub wire_len: usize,
    /// `(src, dst, protocol)` of the inner packet, when this is a tunnel.
    pub inner: Option<(Ipv4Addr, Ipv4Addr, IpProtocol)>,
    /// The remaining final destination of a loose source route, when the
    /// packet carries an unexhausted LSRR option. The wire `dst` of such a
    /// packet is rewritten at every waypoint; this field is the address the
    /// conversation is actually aimed at.
    pub sr_final: Option<Ipv4Addr>,
}

impl PacketSummary {
    /// Summarize a packet, looking through one tunnel layer if present.
    pub fn of(pkt: &Ipv4Packet) -> PacketSummary {
        let inner = if encap::is_tunnel(pkt) {
            encap::decapsulate(pkt)
                .ok()
                .map(|i| (i.src, i.dst, i.protocol))
        } else {
            None
        };
        let sr_final = if pkt.options.is_empty() {
            None
        } else {
            crate::wire::srcroute::SourceRoute::parse(&pkt.options)
                .and_then(|r| r.final_destination())
        };
        PacketSummary {
            src: pkt.src,
            dst: pkt.dst,
            protocol: pkt.protocol,
            ident: pkt.ident,
            wire_len: pkt.wire_len(),
            inner,
            sr_final,
        }
    }

    /// The addresses of the *logical* conversation: the inner header if
    /// encapsulated, the source route's final destination if source-routed,
    /// the outer header otherwise.
    pub fn logical_endpoints(&self) -> (Ipv4Addr, Ipv4Addr) {
        match (self.inner, self.sr_final) {
            (Some((s, d, _)), _) => (s, d),
            (None, Some(f)) => (self.src, f),
            (None, None) => (self.src, self.dst),
        }
    }

    /// Identity of the concrete packet: the header fields that survive
    /// forwarding unchanged. Source-routed packets get their dst rewritten
    /// at every waypoint, so the key uses the route's final destination.
    fn flow_key(&self) -> (Ipv4Addr, Ipv4Addr, IpProtocol, u16) {
        (
            self.src,
            self.sr_final.unwrap_or(self.dst),
            self.protocol,
            self.ident,
        )
    }
}

/// What happened to the packet at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Originated here and handed to a link.
    Sent,
    /// Transited a router (or was re-tunnelled by an agent).
    Forwarded,
    /// Reached a host stack and was delivered to a local protocol.
    DeliveredLocal,
    /// Discarded.
    Dropped(DropReason),
}

/// One observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// What happened to the packet.
    pub kind: TraceEventKind,
    /// Parsed view of the packet involved.
    pub packet: PacketSummary,
}

/// Collects [`TraceEvent`]s. Owned by the [`crate::world::World`].
#[derive(Debug, Default)]
pub struct PacketTrace {
    events: VecDeque<TraceEvent>,
    enabled: bool,
    /// `Some(n)` = ring buffer holding at most `n` events.
    capacity: Option<usize>,
    /// Events shed from the front of the ring since the last [`clear`].
    ///
    /// [`clear`]: PacketTrace::clear
    dropped_events: u64,
}

/// Where trace records get written. Kept as a struct rather than a trait so
/// the world can expose it without dynamic dispatch; experiments only read.
pub type TraceSink = PacketTrace;

impl PacketTrace {
    /// An empty, unbounded trace; records only while enabled.
    pub fn new(enabled: bool) -> PacketTrace {
        PacketTrace {
            events: VecDeque::new(),
            enabled,
            capacity: None,
            dropped_events: 0,
        }
    }

    /// An enabled trace that keeps only the `capacity` most recent events,
    /// shedding the oldest (and counting them in
    /// [`PacketTrace::dropped_events`]) once full. `capacity` of 0 counts
    /// everything it sheds and keeps nothing.
    pub fn with_capacity(capacity: usize) -> PacketTrace {
        PacketTrace {
            events: VecDeque::with_capacity(capacity),
            enabled: true,
            capacity: Some(capacity),
            dropped_events: 0,
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// The ring-buffer bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events shed by the ring buffer since the last [`PacketTrace::clear`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Record one observation (no-op while disabled).
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        if let Some(cap) = self.capacity {
            while self.events.len() >= cap {
                if self.events.pop_front().is_none() {
                    break; // cap == 0
                }
                self.dropped_events += 1;
            }
            if cap == 0 {
                self.dropped_events += 1;
                return;
            }
        }
        self.events.push_back(TraceEvent {
            at,
            node,
            kind,
            packet: PacketSummary::of(pkt),
        });
    }

    /// Forget everything recorded so far (including the shed-event count).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped_events = 0;
    }

    /// Every retained event, in order. (A deque rather than a slice so the
    /// bounded ring-buffer mode never has to shuffle memory; it iterates,
    /// `len()`s and `is_empty()`s the same way.)
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Events whose packet summary satisfies `pred`.
    pub fn matching<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: Fn(&PacketSummary) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.packet))
    }

    /// Number of times matching packets were put on a wire (Sent+Forwarded):
    /// i.e. total link traversals, the "distance travelled" of §3.2.
    pub fn hops<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .count()
    }

    /// Local deliveries of matching packets.
    pub fn deliveries<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::DeliveredLocal))
            .count()
    }

    /// Drops of matching packets, with reasons.
    pub fn drops<F>(&self, pred: F) -> Vec<(NodeId, DropReason)>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter_map(|e| match e.kind {
                TraceEventKind::Dropped(r) => Some((e.node, r)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes put on wires by matching packets.
    pub fn bytes_on_wire<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .map(|e| e.packet.wire_len)
            .sum()
    }

    /// One-way delivery latency of the first matching packet that arrived:
    /// time from the transmission that actually carried it to its local
    /// delivery.
    ///
    /// The delivery is paired with the `Sent` event whose header identity
    /// (src, dst, protocol, IP ident) matches — so when a first
    /// transmission is dropped and a retransmission (with a fresh ident)
    /// gets through, the measured latency is the successful attempt's
    /// one-way time, not the loss plus the retransmit timeout. When no
    /// identity match exists (e.g. the send was recorded pre-encapsulation
    /// under a different outer header), it falls back to the most recent
    /// matching `Sent` before the delivery, which still favours the
    /// retransmission over the lost original.
    pub fn first_delivery_latency<F>(&self, pred: F) -> Option<crate::time::SimDuration>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        let mut last_sent: Option<SimTime> = None;
        let mut sent_at: HashMap<(Ipv4Addr, Ipv4Addr, IpProtocol, u16), SimTime> = HashMap::new();
        // Earliest transmission that carried each logical flow *inside a
        // tunnel*. When an agent decapsulates and re-originates the inner
        // packet (a `Sent` event at the agent), the delivery must still be
        // charged from the original sender, not from the agent's re-send.
        let mut tunnel_sent: HashMap<(Ipv4Addr, Ipv4Addr, IpProtocol), SimTime> = HashMap::new();
        for e in self.matching(pred) {
            match e.kind {
                TraceEventKind::Sent => {
                    last_sent = Some(e.at);
                    sent_at.entry(e.packet.flow_key()).or_insert(e.at);
                    if let Some(inner) = e.packet.inner {
                        tunnel_sent.entry(inner).or_insert(e.at);
                    }
                }
                TraceEventKind::DeliveredLocal => {
                    // A delivery may have two plausible origins: a Sent
                    // event with the same flow identity (possibly an
                    // agent's decapsulated re-send) and a Sent event that
                    // carried this flow inside a tunnel. Charge from the
                    // earliest — that is the transmission the sender made.
                    let logical = (e.packet.src, e.packet.dst, e.packet.protocol);
                    let paired = [
                        sent_at.get(&e.packet.flow_key()).copied(),
                        tunnel_sent.get(&logical).copied(),
                    ]
                    .into_iter()
                    .flatten()
                    .min()
                    .or(last_sent);
                    if let Some(s) = paired {
                        return Some(e.at.since(s));
                    }
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::wire::encap::{encapsulate, EncapFormat};
    use bytes::Bytes;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt(src: &str, dst: &str) -> Ipv4Packet {
        Ipv4Packet::new(ip(src), ip(dst), IpProtocol::Udp, Bytes::from_static(b"x"))
    }

    #[test]
    fn summary_sees_through_tunnels() {
        let inner = pkt("171.64.15.9", "18.26.0.1");
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            0,
        )
        .unwrap();
        let s = PacketSummary::of(&outer);
        assert_eq!(s.src, ip("36.186.0.99"));
        assert_eq!(
            s.inner,
            Some((ip("171.64.15.9"), ip("18.26.0.1"), IpProtocol::Udp))
        );
        assert_eq!(s.logical_endpoints(), (ip("171.64.15.9"), ip("18.26.0.1")));
        let plain = PacketSummary::of(&inner);
        assert_eq!(plain.inner, None);
        assert_eq!(
            plain.logical_endpoints(),
            (ip("171.64.15.9"), ip("18.26.0.1"))
        );
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PacketTrace::new(false);
        t.record(
            SimTime::ZERO,
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(
            SimTime::ZERO,
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn hops_deliveries_drops_and_bytes() {
        let mut t = PacketTrace::new(true);
        let p = pkt("1.1.1.1", "2.2.2.2");
        let q = pkt("3.3.3.3", "4.4.4.4");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        t.record(SimTime(10), NodeId(1), TraceEventKind::Forwarded, &p);
        t.record(SimTime(20), NodeId(2), TraceEventKind::DeliveredLocal, &p);
        t.record(
            SimTime(5),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::SourceAddressFilter),
            &q,
        );
        let to2 = |s: &PacketSummary| s.dst == ip("2.2.2.2");
        assert_eq!(t.hops(to2), 2);
        assert_eq!(t.deliveries(to2), 1);
        assert_eq!(t.bytes_on_wire(to2), 2 * p.wire_len());
        assert_eq!(
            t.first_delivery_latency(to2),
            Some(SimDuration::from_micros(20))
        );
        let dropped = t.drops(|s| s.src == ip("3.3.3.3"));
        assert_eq!(dropped, vec![(NodeId(1), DropReason::SourceAddressFilter)]);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn latency_pairs_delivery_with_the_transmission_that_carried_it() {
        // First copy (ident 1) sent at t=0 and lost; retransmission
        // (ident 2) sent at t=50_000, delivered at t=51_200. The one-way
        // latency is 1.2 ms — not 51.2 ms from the doomed first send.
        let mut t = PacketTrace::new(true);
        let mut first = pkt("1.1.1.1", "2.2.2.2");
        first.ident = 1;
        let mut retx = pkt("1.1.1.1", "2.2.2.2");
        retx.ident = 2;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &first);
        t.record(
            SimTime(400),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::LinkFault),
            &first,
        );
        t.record(SimTime(50_000), NodeId(0), TraceEventKind::Sent, &retx);
        t.record(
            SimTime(51_200),
            NodeId(2),
            TraceEventKind::DeliveredLocal,
            &retx,
        );
        let lat = t
            .first_delivery_latency(|s| s.dst == ip("2.2.2.2"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(1_200));
    }

    #[test]
    fn latency_pairs_by_ident_across_interleaved_packets() {
        // Pipelined sends: p1 (ident 1) at t=0, p2 (ident 2) at t=100.
        // p1 arrives at t=900 — after p2's send. Ident pairing still
        // charges p1's full 900 µs rather than 800 µs from p2's send.
        let mut t = PacketTrace::new(true);
        let mut p1 = pkt("1.1.1.1", "2.2.2.2");
        p1.ident = 1;
        let mut p2 = pkt("1.1.1.1", "2.2.2.2");
        p2.ident = 2;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p1);
        t.record(SimTime(100), NodeId(0), TraceEventKind::Sent, &p2);
        t.record(SimTime(900), NodeId(2), TraceEventKind::DeliveredLocal, &p1);
        let lat = t
            .first_delivery_latency(|s| s.dst == ip("2.2.2.2"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(900));
    }

    #[test]
    fn latency_charges_tunnel_deliveries_from_the_original_sender() {
        // Reverse tunnel: the mobile sends an encapsulated packet at t=0;
        // the home agent decapsulates and re-originates the inner packet
        // (a Sent event at the agent, t=600); the server receives it at
        // t=900. End-to-end latency is 900 µs, not the 300 µs final leg.
        let mut t = PacketTrace::new(true);
        let inner = pkt("171.64.15.9", "18.26.0.1");
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            0,
        )
        .unwrap();
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &outer);
        t.record(SimTime(600), NodeId(1), TraceEventKind::Sent, &inner);
        t.record(
            SimTime(900),
            NodeId(2),
            TraceEventKind::DeliveredLocal,
            &inner,
        );
        let lat = t
            .first_delivery_latency(|s| s.logical_endpoints().1 == ip("18.26.0.1"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(900));
    }

    #[test]
    fn ring_buffer_keeps_most_recent_and_counts_shed_events() {
        let mut t = PacketTrace::with_capacity(3);
        assert_eq!(t.capacity(), Some(3));
        for i in 0..5u64 {
            t.record(
                SimTime(i),
                NodeId(0),
                TraceEventKind::Sent,
                &pkt("1.1.1.1", "2.2.2.2"),
            );
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped_events(), 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest events shed first");
        // Aggregates now see only the window.
        assert_eq!(t.hops(|_| true), 3);
        t.clear();
        assert_eq!(t.dropped_events(), 0);
        assert_eq!(t.capacity(), Some(3), "clear keeps the bound");
    }

    #[test]
    fn zero_capacity_ring_counts_everything() {
        let mut t = PacketTrace::with_capacity(0);
        t.record(
            SimTime(0),
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 1);
    }
}
