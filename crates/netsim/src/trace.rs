//! Packet tracing and measurement.
//!
//! Experiments observe the network exclusively through this module: every
//! send, forward, local delivery and drop is recorded with a parsed summary
//! of the packet (including the inner header when the packet is a tunnel).
//! That is enough to measure everything the paper's figures illustrate —
//! path hop counts, per-direction latency, bytes on the wire, and exactly
//! *which router dropped which packet and why* (Figure 2).
//!
//! Long-running simulations can bound the memory the trace consumes with
//! [`PacketTrace::with_capacity`]: the trace becomes a ring buffer keeping
//! the most recent events and counting the ones it had to shed.
//!
//! Beyond the flat event log, the trace assigns **causal identity**: every
//! packet injected into the world gets a stable [`PacketId`], every logical
//! conversation a [`FlowId`], and every transform (encapsulation,
//! decapsulation, source-route rewrite, agent relay, retransmission) links
//! the new packet to its parent — so the events form a causal tree a
//! [`crate::lifecycle`] reconstruction can walk, rather than a log that
//! needs heuristic pairing.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::event::NodeId;
use crate::time::SimTime;
use crate::wire::encap::{self, EncapFormat};
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use serde::{Serialize, Value};

/// Why a packet was dropped. The first three are the network policies the
/// paper names in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A boundary router saw a packet arriving from outside whose source
    /// address claims to be inside (ingress filtering), or vice versa
    /// (egress filtering). The paper's Figure 2 failure.
    SourceAddressFilter,
    /// An end-user network refusing to carry transit traffic (§3.1).
    TransitPolicy,
    /// An explicit firewall rule.
    Firewall,
    /// TTL reached zero.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// Packet larger than link MTU with DF set.
    MtuExceeded,
    /// Fault injection on a link.
    LinkFault,
    /// ARP could not resolve the next hop on the final segment.
    ArpFailure,
    /// Arrived at a host with no protocol handler / listener.
    NoListener,
    /// Failed to parse (e.g. corrupted by fault injection).
    Malformed,
}

impl DropReason {
    /// Every reason, in stable [`DropReason::index`] order.
    pub const ALL: [DropReason; 10] = [
        DropReason::SourceAddressFilter,
        DropReason::TransitPolicy,
        DropReason::Firewall,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::MtuExceeded,
        DropReason::LinkFault,
        DropReason::ArpFailure,
        DropReason::NoListener,
        DropReason::Malformed,
    ];

    /// Dense index for counter arrays (`ALL[r.index()] == r`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable tag (run reports, trace files).
    pub fn tag(self) -> &'static str {
        match self {
            DropReason::SourceAddressFilter => "source-address-filter",
            DropReason::TransitPolicy => "transit-policy",
            DropReason::Firewall => "firewall",
            DropReason::TtlExpired => "ttl-expired",
            DropReason::NoRoute => "no-route",
            DropReason::MtuExceeded => "mtu-exceeded",
            DropReason::LinkFault => "link-fault",
            DropReason::ArpFailure => "arp-failure",
            DropReason::NoListener => "no-listener",
            DropReason::Malformed => "malformed",
        }
    }

    /// Inverse of [`DropReason::tag`].
    pub fn from_tag(s: &str) -> Option<DropReason> {
        DropReason::ALL.into_iter().find(|r| r.tag() == s)
    }
}

impl Serialize for DropReason {
    fn to_value(&self) -> Value {
        Value::Str(self.tag().into())
    }
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::SourceAddressFilter => "source-address filter",
            DropReason::TransitPolicy => "transit policy",
            DropReason::Firewall => "firewall",
            DropReason::TtlExpired => "ttl expired",
            DropReason::NoRoute => "no route",
            DropReason::MtuExceeded => "mtu exceeded (DF)",
            DropReason::LinkFault => "link fault",
            DropReason::ArpFailure => "arp failure",
            DropReason::NoListener => "no listener",
            DropReason::Malformed => "malformed",
        };
        f.write_str(s)
    }
}

/// Stable identity of one concrete packet for its whole life: assigned on
/// the first trace event that observes it and preserved across every hop.
/// Transforms (encapsulation, decapsulation, …) produce a **new** id whose
/// parent is the packet that went in, so ids form a causal tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl Serialize for PacketId {
    fn to_value(&self) -> Value {
        Value::U64(self.0)
    }
}

/// Stable identity of one logical conversation: the pair of logical
/// endpoints (looking through tunnels and source routes) plus the innermost
/// protocol, direction-insensitive so both halves of an exchange share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl Serialize for FlowId {
    fn to_value(&self) -> Value {
        Value::U64(self.0)
    }
}

/// How one packet begat another. Recorded as a
/// [`TraceEventKind::Transformed`] event on the *child* packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// The parent was wrapped in a tunnel header; the child is the outer
    /// packet (Figures 3–7's encapsulated modes).
    Encapsulated(EncapFormat),
    /// A tunnel layer was peeled; the child is the inner packet.
    Decapsulated(EncapFormat),
    /// A loose-source-route waypoint rewrote the destination (Out-DT's
    /// LSR variant).
    SourceRouteHop,
    /// An agent relayed the packet onward unchanged (foreign agent final
    /// hop).
    Relayed,
    /// A transport retransmitted the same data as a fresh packet.
    Retransmission,
}

impl TransformKind {
    /// Stable machine-readable tag (run reports, trace files).
    pub fn tag(self) -> &'static str {
        match self {
            TransformKind::Encapsulated(_) => "encapsulated",
            TransformKind::Decapsulated(_) => "decapsulated",
            TransformKind::SourceRouteHop => "source-route-hop",
            TransformKind::Relayed => "relayed",
            TransformKind::Retransmission => "retransmission",
        }
    }

    /// The encapsulation format involved, for the tunnel transforms.
    pub fn format(self) -> Option<EncapFormat> {
        match self {
            TransformKind::Encapsulated(f) | TransformKind::Decapsulated(f) => Some(f),
            _ => None,
        }
    }

    /// Inverse of [`TransformKind::tag`] + [`TransformKind::format`].
    pub fn from_tag(tag: &str, format: Option<&str>) -> Option<TransformKind> {
        let f = || format.and_then(EncapFormat::from_tag).unwrap_or_default();
        match tag {
            "encapsulated" => Some(TransformKind::Encapsulated(f())),
            "decapsulated" => Some(TransformKind::Decapsulated(f())),
            "source-route-hop" => Some(TransformKind::SourceRouteHop),
            "relayed" => Some(TransformKind::Relayed),
            "retransmission" => Some(TransformKind::Retransmission),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.format() {
            Some(fmt) => write!(f, "{} ({})", self.tag(), fmt.tag()),
            None => f.write_str(self.tag()),
        }
    }
}

impl Serialize for TransformKind {
    fn to_value(&self) -> Value {
        let mut fields = vec![("transform".to_string(), Value::Str(self.tag().into()))];
        if let Some(fmt) = self.format() {
            fields.push(("format".into(), Value::Str(fmt.tag().into())));
        }
        Value::Object(fields)
    }
}

/// A compact, parsed view of one IP packet as seen at one point in the net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSummary {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// The IP protocol of the payload.
    pub protocol: IpProtocol,
    /// The IP identification field — stable across hops for one packet, so
    /// it lets measurements pair a delivery with the transmission that
    /// actually carried it (retransmissions get fresh idents).
    pub ident: u16,
    /// On-wire length of the packet, bytes.
    pub wire_len: usize,
    /// `(src, dst, protocol)` of the inner packet, when this is a tunnel.
    pub inner: Option<(Ipv4Addr, Ipv4Addr, IpProtocol)>,
    /// The remaining final destination of a loose source route, when the
    /// packet carries an unexhausted LSRR option. The wire `dst` of such a
    /// packet is rewritten at every waypoint; this field is the address the
    /// conversation is actually aimed at.
    pub sr_final: Option<Ipv4Addr>,
}

impl PacketSummary {
    /// Summarize a packet, looking through one tunnel layer if present.
    pub fn of(pkt: &Ipv4Packet) -> PacketSummary {
        let inner = if encap::is_tunnel(pkt) {
            encap::decapsulate(pkt)
                .ok()
                .map(|i| (i.src, i.dst, i.protocol))
        } else {
            None
        };
        let sr_final = if pkt.options.is_empty() {
            None
        } else {
            crate::wire::srcroute::SourceRoute::parse(&pkt.options)
                .and_then(|r| r.final_destination())
        };
        PacketSummary {
            src: pkt.src,
            dst: pkt.dst,
            protocol: pkt.protocol,
            ident: pkt.ident,
            wire_len: pkt.wire_len(),
            inner,
            sr_final,
        }
    }

    /// The addresses of the *logical* conversation: the inner header if
    /// encapsulated, the source route's final destination if source-routed,
    /// the outer header otherwise.
    pub fn logical_endpoints(&self) -> (Ipv4Addr, Ipv4Addr) {
        match (self.inner, self.sr_final) {
            (Some((s, d, _)), _) => (s, d),
            (None, Some(f)) => (self.src, f),
            (None, None) => (self.src, self.dst),
        }
    }

    /// Identity of the concrete packet: the header fields that survive
    /// forwarding unchanged. Source-routed packets get their dst rewritten
    /// at every waypoint, so the key uses the route's final destination.
    fn flow_key(&self) -> PacketKey {
        (
            self.src,
            self.sr_final.unwrap_or(self.dst),
            self.protocol,
            self.ident,
        )
    }

    /// The innermost protocol: the tunnelled payload's when encapsulated.
    pub fn logical_protocol(&self) -> IpProtocol {
        match self.inner {
            Some((_, _, p)) => p,
            None => self.protocol,
        }
    }
}

impl Serialize for PacketSummary {
    fn to_value(&self) -> Value {
        let inner = match self.inner {
            Some((s, d, p)) => Value::Object(vec![
                ("src".into(), Value::Str(s.to_string())),
                ("dst".into(), Value::Str(d.to_string())),
                ("protocol".into(), Value::U64(p.number().into())),
            ]),
            None => Value::Null,
        };
        Value::Object(vec![
            ("src".into(), Value::Str(self.src.to_string())),
            ("dst".into(), Value::Str(self.dst.to_string())),
            ("protocol".into(), Value::U64(self.protocol.number().into())),
            ("ident".into(), Value::U64(self.ident.into())),
            ("wire_len".into(), Value::U64(self.wire_len as u64)),
            ("inner".into(), inner),
            (
                "sr_final".into(),
                match self.sr_final {
                    Some(a) => Value::Str(a.to_string()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// Header identity that survives forwarding: the registry key mapping a
/// packet observed anywhere in the net back to its [`PacketId`].
type PacketKey = (Ipv4Addr, Ipv4Addr, IpProtocol, u16);

/// The conversation key: direction-normalized logical endpoints plus the
/// innermost protocol.
type FlowKey = (Ipv4Addr, Ipv4Addr, IpProtocol);

/// Per-packet bookkeeping that outlives the event ring buffer, so causal
/// links and overhead deltas survive shedding.
#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    flow: FlowId,
    parent: Option<PacketId>,
    /// Wire length when first observed (pre-transform for parents), for
    /// per-layer header-overhead deltas.
    wire_len: usize,
}

/// What happened to the packet at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Originated here and handed to a link.
    Sent,
    /// Transited a router (or was re-tunnelled by an agent).
    Forwarded,
    /// Reached a host stack and was delivered to a local protocol.
    DeliveredLocal,
    /// Discarded.
    Dropped(DropReason),
    /// Became a new packet (the one this event describes) by the given
    /// transform; the new packet's `parent_id` names the packet that went
    /// in. Not a wire event: the transform happens inside a node.
    Transformed(TransformKind),
}

impl TraceEventKind {
    /// Stable machine-readable tag (run reports, trace files).
    pub fn tag(self) -> &'static str {
        match self {
            TraceEventKind::Sent => "sent",
            TraceEventKind::Forwarded => "forwarded",
            TraceEventKind::DeliveredLocal => "delivered",
            TraceEventKind::Dropped(_) => "dropped",
            TraceEventKind::Transformed(_) => "transformed",
        }
    }

    /// Whether this event put bytes on a wire.
    pub fn is_wire(self) -> bool {
        matches!(self, TraceEventKind::Sent | TraceEventKind::Forwarded)
    }
}

impl Serialize for TraceEventKind {
    fn to_value(&self) -> Value {
        let mut fields = vec![("event".to_string(), Value::Str(self.tag().into()))];
        match self {
            TraceEventKind::Dropped(r) => fields.push(("reason".into(), r.to_value())),
            TraceEventKind::Transformed(t) => {
                fields.push(("kind".into(), Value::Str(t.tag().into())));
                if let Some(f) = t.format() {
                    fields.push(("format".into(), Value::Str(f.tag().into())));
                }
            }
            _ => {}
        }
        Value::Object(fields)
    }
}

/// One observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// What happened to the packet.
    pub kind: TraceEventKind,
    /// Parsed view of the packet involved.
    pub packet: PacketSummary,
    /// Causal identity of the packet this event observes.
    pub packet_id: PacketId,
    /// The conversation the packet belongs to.
    pub flow_id: FlowId,
    /// The packet this one was derived from, if it was produced by a
    /// transform (set on every event of the derived packet).
    pub parent_id: Option<PacketId>,
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        let Value::Object(kind_fields) = self.kind.to_value() else {
            unreachable!("TraceEventKind serializes to an object");
        };
        let mut fields = vec![
            ("t_us".to_string(), Value::U64(self.at.0)),
            ("node".into(), Value::U64(self.node.0 as u64)),
            ("packet_id".into(), self.packet_id.to_value()),
            ("flow_id".into(), self.flow_id.to_value()),
            ("parent_id".into(), self.parent_id.to_value()),
        ];
        fields.extend(kind_fields);
        fields.push(("packet".into(), self.packet.to_value()));
        Value::Object(fields)
    }
}

/// Collects [`TraceEvent`]s. Owned by the [`crate::world::World`].
#[derive(Debug, Default)]
pub struct PacketTrace {
    events: VecDeque<TraceEvent>,
    enabled: bool,
    /// `Some(n)` = ring buffer holding at most `n` events.
    capacity: Option<usize>,
    /// Events shed from the front of the ring since the last [`clear`].
    ///
    /// [`clear`]: PacketTrace::clear
    dropped_events: u64,
    /// Current id for each header identity seen in the world. A transform
    /// re-points the child's key at a fresh id, so the same wire identity
    /// observed after the transform belongs to the new causal node.
    ids: HashMap<PacketKey, PacketId>,
    /// Causal bookkeeping per id. Survives ring shedding (it is bounded by
    /// distinct packets, not events), so parent links outlive the window.
    meta: HashMap<PacketId, PacketMeta>,
    /// Conversation registry.
    flows: HashMap<FlowKey, FlowId>,
    /// Last packet each logical endpoint contributed to each flow — the
    /// presumed parent of a retransmission, which arrives with a fresh
    /// ident and no explicit parent packet.
    last_in_flow: HashMap<(FlowId, Ipv4Addr), PacketId>,
    next_packet: u64,
    next_flow: u64,
    /// Head-based flow sampling: `Some((n, seed))` records 1-in-n flows
    /// in full (decided by a stateless seeded hash of the [`FlowId`], so
    /// no per-flow memory) and suppresses the rest — except flows that
    /// hit an anomaly, which are promoted to full capture.
    sample: Option<(u64, u64)>,
    /// Flows promoted to full capture by an anomaly (drop, TTL expiry,
    /// retransmission, registration failure). Bounded by the number of
    /// *anomalous* flows, not total flows.
    promoted: HashSet<FlowId>,
    /// Events suppressed by flow sampling since the last clear.
    suppressed_events: u64,
}

/// The stateless 1-in-n sampling decision for a flow: a seeded hash draw,
/// so the sampled subset is deterministic and needs no per-flow state.
fn flow_sampled_in(flow: FlowId, n: u64, seed: u64) -> bool {
    crate::telemetry::hash64(flow.0 ^ seed).is_multiple_of(n)
}

/// Where trace records get written. Kept as a struct rather than a trait so
/// the world can expose it without dynamic dispatch; experiments only read.
pub type TraceSink = PacketTrace;

impl PacketTrace {
    /// An empty, unbounded trace; records only while enabled.
    pub fn new(enabled: bool) -> PacketTrace {
        PacketTrace {
            enabled,
            ..PacketTrace::default()
        }
    }

    /// An enabled trace that keeps only the `capacity` most recent events,
    /// shedding the oldest (and counting them in
    /// [`PacketTrace::dropped_events`]) once full. `capacity` of 0 counts
    /// everything it sheds and keeps nothing.
    pub fn with_capacity(capacity: usize) -> PacketTrace {
        PacketTrace {
            events: VecDeque::with_capacity(capacity),
            enabled: true,
            capacity: Some(capacity),
            ..PacketTrace::default()
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The ring-buffer bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Events shed by the ring buffer since the last [`PacketTrace::clear`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Enable head-based 1-in-`n` flow sampling, seeded so the sampled
    /// subset is deterministic. `n` ≤ 1 disables sampling (every flow is
    /// recorded). Anomalous flows are always promoted to full capture —
    /// see [`PacketTrace::record`].
    pub fn enable_flow_sampling(&mut self, n: u64, seed: u64) {
        self.sample = (n > 1).then_some((n, seed));
    }

    /// The sampling rate `n` (record 1-in-n flows), if sampling is on.
    pub fn flow_sample_rate(&self) -> Option<u64> {
        self.sample.map(|(n, _)| n)
    }

    /// Events suppressed by flow sampling since the last clear.
    pub fn suppressed_events(&self) -> u64 {
        self.suppressed_events
    }

    /// Flows promoted to full capture by an anomaly since the last clear.
    pub fn promoted_flows(&self) -> usize {
        self.promoted.len()
    }

    /// Whether `flow`'s events are currently being kept (always true when
    /// sampling is off).
    pub fn keeps_flow(&self, flow: FlowId) -> bool {
        match self.sample {
            None => true,
            Some((n, seed)) => flow_sampled_in(flow, n, seed) || self.promoted.contains(&flow),
        }
    }

    /// Promote one flow to full capture (idempotent; no-op when sampling
    /// is off — everything is captured anyway).
    pub fn promote_flow(&mut self, flow: FlowId) {
        if self.sample.is_none() {
            return;
        }
        self.promoted.insert(flow);
    }

    /// Promote the conversation between `a` and `b` over `proto`
    /// (direction insensitive) — the hook protocol layers use to flag
    /// anomalies the trace cannot see itself, e.g. a mobile host's
    /// registration denial or timeout. No-op if the conversation has not
    /// produced any trace identity yet (nothing recorded to promote).
    pub fn promote_endpoints(&mut self, a: Ipv4Addr, b: Ipv4Addr, proto: IpProtocol) {
        if self.sample.is_none() {
            return;
        }
        let key = if a <= b { (a, b, proto) } else { (b, a, proto) };
        if let Some(&f) = self.flows.get(&key) {
            self.promote_flow(f);
        }
    }

    /// Record one observation (no-op while disabled).
    ///
    /// Under flow sampling, events of unsampled flows are suppressed and
    /// counted rather than stored — but a [`TraceEventKind::Dropped`]
    /// event (any reason, including TTL expiry) promotes its flow to full
    /// capture from that point on, so every anomalous flow is observable.
    /// Identity bookkeeping (packet/flow ids) always runs, keeping causal
    /// links consistent for the flows that are kept.
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        let packet = PacketSummary::of(pkt);
        let (packet_id, flow_id, parent_id) = self.ids_for(&packet);
        if matches!(kind, TraceEventKind::Dropped(_)) {
            self.promote_flow(flow_id);
        }
        if !self.keeps_flow(flow_id) {
            self.suppressed_events += 1;
            return;
        }
        self.push(TraceEvent {
            at,
            node,
            kind,
            packet,
            packet_id,
            flow_id,
            parent_id,
        });
    }

    /// Record that `child` was produced from a parent packet by `kind` at
    /// `node` — the causal edges of the trace tree. The child gets a fresh
    /// [`PacketId`] (superseding whatever id its header identity held) and
    /// inherits the parent's [`FlowId`]. `parent` is `None` only for
    /// retransmissions, whose parent is inferred as the last packet this
    /// endpoint contributed to the flow. No-op while disabled.
    pub fn record_transform(
        &mut self,
        at: SimTime,
        node: NodeId,
        kind: TransformKind,
        parent: Option<&Ipv4Packet>,
        child: &Ipv4Packet,
    ) {
        if !self.enabled {
            return;
        }
        let child_summary = PacketSummary::of(child);
        let parent_id = match parent {
            Some(p) => {
                let ps = PacketSummary::of(p);
                Some(self.ids_for(&ps).0)
            }
            None => {
                let flow = self.flow_for(&child_summary);
                let (src, _) = child_summary.logical_endpoints();
                self.last_in_flow.get(&(flow, src)).copied()
            }
        };
        let flow_id = match parent_id.and_then(|p| self.meta.get(&p)) {
            Some(m) => m.flow,
            None => self.flow_for(&child_summary),
        };
        let packet_id = self.alloc_packet(&child_summary, flow_id, parent_id);
        if kind == TransformKind::Retransmission {
            // A retransmission means loss or delay somewhere — promote
            // the flow so its recovery is fully observable.
            self.promote_flow(flow_id);
        }
        if !self.keeps_flow(flow_id) {
            self.suppressed_events += 1;
            return;
        }
        self.push(TraceEvent {
            at,
            node,
            kind: TraceEventKind::Transformed(kind),
            packet: child_summary,
            packet_id,
            flow_id,
            parent_id,
        });
    }

    /// The parent of `id` in the causal tree, if it was produced by a
    /// transform. Answered from bookkeeping that survives ring shedding.
    pub fn parent_of(&self, id: PacketId) -> Option<PacketId> {
        self.meta.get(&id).and_then(|m| m.parent)
    }

    /// The flow `id` belongs to, from bookkeeping that survives shedding.
    pub fn flow_of(&self, id: PacketId) -> Option<FlowId> {
        self.meta.get(&id).map(|m| m.flow)
    }

    /// Wire length of `id` when it was first observed — the pre-transform
    /// size for packets that later served as a transform's parent, which
    /// makes `child.wire_len - first_wire_len(parent)` the header bytes a
    /// layer added.
    pub fn first_wire_len(&self, id: PacketId) -> Option<usize> {
        self.meta.get(&id).map(|m| m.wire_len)
    }

    /// Distinct packets the trace has identified since the last clear.
    pub fn packets_identified(&self) -> usize {
        self.meta.len()
    }

    /// Current id and flow for the packet `summary` describes, allocating
    /// both on first sight.
    fn ids_for(&mut self, summary: &PacketSummary) -> (PacketId, FlowId, Option<PacketId>) {
        if let Some(&id) = self.ids.get(&summary.flow_key()) {
            let m = self.meta[&id];
            return (id, m.flow, m.parent);
        }
        let flow = self.flow_for(summary);
        let id = self.alloc_packet(summary, flow, None);
        (id, flow, None)
    }

    /// The flow for `summary`'s logical conversation, allocated on first
    /// sight. Direction-normalized so requests and replies share it.
    fn flow_for(&mut self, summary: &PacketSummary) -> FlowId {
        let (s, d) = summary.logical_endpoints();
        let proto = summary.logical_protocol();
        let key = if s <= d { (s, d, proto) } else { (d, s, proto) };
        match self.flows.get(&key) {
            Some(&f) => f,
            None => {
                let f = FlowId(self.next_flow);
                self.next_flow += 1;
                self.flows.insert(key, f);
                f
            }
        }
    }

    /// Mint a fresh packet id for `summary`, repointing its header identity
    /// at the new id and remembering the causal link.
    fn alloc_packet(
        &mut self,
        summary: &PacketSummary,
        flow: FlowId,
        parent: Option<PacketId>,
    ) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        self.ids.insert(summary.flow_key(), id);
        self.meta.insert(
            id,
            PacketMeta {
                flow,
                parent,
                wire_len: summary.wire_len,
            },
        );
        let (src, _) = summary.logical_endpoints();
        self.last_in_flow.insert((flow, src), id);
        id
    }

    /// Append one event, honouring the ring bound.
    fn push(&mut self, event: TraceEvent) {
        if let Some(cap) = self.capacity {
            while self.events.len() >= cap {
                if self.events.pop_front().is_none() {
                    break; // cap == 0
                }
                self.dropped_events += 1;
            }
            if cap == 0 {
                self.dropped_events += 1;
                return;
            }
        }
        self.events.push_back(event);
    }

    /// Forget everything recorded so far (including the shed-event count
    /// and all packet/flow identities).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped_events = 0;
        self.ids.clear();
        self.meta.clear();
        self.flows.clear();
        self.last_in_flow.clear();
        self.next_packet = 0;
        self.next_flow = 0;
        self.promoted.clear();
        self.suppressed_events = 0;
    }

    /// Every retained event, in order. (A deque rather than a slice so the
    /// bounded ring-buffer mode never has to shuffle memory; it iterates,
    /// `len()`s and `is_empty()`s the same way.)
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Events whose packet summary satisfies `pred`.
    pub fn matching<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: Fn(&PacketSummary) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.packet))
    }

    /// Number of times matching packets were put on a wire (Sent+Forwarded):
    /// i.e. total link traversals, the "distance travelled" of §3.2.
    pub fn hops<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .count()
    }

    /// Local deliveries of matching packets.
    pub fn deliveries<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::DeliveredLocal))
            .count()
    }

    /// Drops of matching packets, with reasons.
    pub fn drops<F>(&self, pred: F) -> Vec<(NodeId, DropReason)>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter_map(|e| match e.kind {
                TraceEventKind::Dropped(r) => Some((e.node, r)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes put on wires by matching packets.
    pub fn bytes_on_wire<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .map(|e| e.packet.wire_len)
            .sum()
    }

    /// One-way delivery latency of the first matching packet that arrived:
    /// time from the transmission that actually carried it to its local
    /// delivery.
    ///
    /// The delivery is paired with the `Sent` event whose header identity
    /// (src, dst, protocol, IP ident) matches — so when a first
    /// transmission is dropped and a retransmission (with a fresh ident)
    /// gets through, the measured latency is the successful attempt's
    /// one-way time, not the loss plus the retransmit timeout. When no
    /// identity match exists (e.g. the send was recorded pre-encapsulation
    /// under a different outer header), it falls back to the most recent
    /// matching `Sent` before the delivery, which still favours the
    /// retransmission over the lost original.
    pub fn first_delivery_latency<F>(&self, pred: F) -> Option<crate::time::SimDuration>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        let mut last_sent: Option<SimTime> = None;
        let mut sent_at: HashMap<(Ipv4Addr, Ipv4Addr, IpProtocol, u16), SimTime> = HashMap::new();
        // Earliest transmission that carried each logical flow *inside a
        // tunnel*. When an agent decapsulates and re-originates the inner
        // packet (a `Sent` event at the agent), the delivery must still be
        // charged from the original sender, not from the agent's re-send.
        let mut tunnel_sent: HashMap<(Ipv4Addr, Ipv4Addr, IpProtocol), SimTime> = HashMap::new();
        for e in self.matching(pred) {
            match e.kind {
                TraceEventKind::Sent => {
                    last_sent = Some(e.at);
                    sent_at.entry(e.packet.flow_key()).or_insert(e.at);
                    if let Some(inner) = e.packet.inner {
                        tunnel_sent.entry(inner).or_insert(e.at);
                    }
                }
                TraceEventKind::DeliveredLocal => {
                    // A delivery may have two plausible origins: a Sent
                    // event with the same flow identity (possibly an
                    // agent's decapsulated re-send) and a Sent event that
                    // carried this flow inside a tunnel. Charge from the
                    // earliest — that is the transmission the sender made.
                    let logical = (e.packet.src, e.packet.dst, e.packet.protocol);
                    let paired = [
                        sent_at.get(&e.packet.flow_key()).copied(),
                        tunnel_sent.get(&logical).copied(),
                    ]
                    .into_iter()
                    .flatten()
                    .min()
                    .or(last_sent);
                    if let Some(s) = paired {
                        return Some(e.at.since(s));
                    }
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::wire::encap::{encapsulate, EncapFormat};
    use bytes::Bytes;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt(src: &str, dst: &str) -> Ipv4Packet {
        Ipv4Packet::new(ip(src), ip(dst), IpProtocol::Udp, Bytes::from_static(b"x"))
    }

    #[test]
    fn summary_sees_through_tunnels() {
        let inner = pkt("171.64.15.9", "18.26.0.1");
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            0,
        )
        .unwrap();
        let s = PacketSummary::of(&outer);
        assert_eq!(s.src, ip("36.186.0.99"));
        assert_eq!(
            s.inner,
            Some((ip("171.64.15.9"), ip("18.26.0.1"), IpProtocol::Udp))
        );
        assert_eq!(s.logical_endpoints(), (ip("171.64.15.9"), ip("18.26.0.1")));
        let plain = PacketSummary::of(&inner);
        assert_eq!(plain.inner, None);
        assert_eq!(
            plain.logical_endpoints(),
            (ip("171.64.15.9"), ip("18.26.0.1"))
        );
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PacketTrace::new(false);
        t.record(
            SimTime::ZERO,
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(
            SimTime::ZERO,
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn hops_deliveries_drops_and_bytes() {
        let mut t = PacketTrace::new(true);
        let p = pkt("1.1.1.1", "2.2.2.2");
        let q = pkt("3.3.3.3", "4.4.4.4");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        t.record(SimTime(10), NodeId(1), TraceEventKind::Forwarded, &p);
        t.record(SimTime(20), NodeId(2), TraceEventKind::DeliveredLocal, &p);
        t.record(
            SimTime(5),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::SourceAddressFilter),
            &q,
        );
        let to2 = |s: &PacketSummary| s.dst == ip("2.2.2.2");
        assert_eq!(t.hops(to2), 2);
        assert_eq!(t.deliveries(to2), 1);
        assert_eq!(t.bytes_on_wire(to2), 2 * p.wire_len());
        assert_eq!(
            t.first_delivery_latency(to2),
            Some(SimDuration::from_micros(20))
        );
        let dropped = t.drops(|s| s.src == ip("3.3.3.3"));
        assert_eq!(dropped, vec![(NodeId(1), DropReason::SourceAddressFilter)]);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn latency_pairs_delivery_with_the_transmission_that_carried_it() {
        // First copy (ident 1) sent at t=0 and lost; retransmission
        // (ident 2) sent at t=50_000, delivered at t=51_200. The one-way
        // latency is 1.2 ms — not 51.2 ms from the doomed first send.
        let mut t = PacketTrace::new(true);
        let mut first = pkt("1.1.1.1", "2.2.2.2");
        first.ident = 1;
        let mut retx = pkt("1.1.1.1", "2.2.2.2");
        retx.ident = 2;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &first);
        t.record(
            SimTime(400),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::LinkFault),
            &first,
        );
        t.record(SimTime(50_000), NodeId(0), TraceEventKind::Sent, &retx);
        t.record(
            SimTime(51_200),
            NodeId(2),
            TraceEventKind::DeliveredLocal,
            &retx,
        );
        let lat = t
            .first_delivery_latency(|s| s.dst == ip("2.2.2.2"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(1_200));
    }

    #[test]
    fn latency_pairs_by_ident_across_interleaved_packets() {
        // Pipelined sends: p1 (ident 1) at t=0, p2 (ident 2) at t=100.
        // p1 arrives at t=900 — after p2's send. Ident pairing still
        // charges p1's full 900 µs rather than 800 µs from p2's send.
        let mut t = PacketTrace::new(true);
        let mut p1 = pkt("1.1.1.1", "2.2.2.2");
        p1.ident = 1;
        let mut p2 = pkt("1.1.1.1", "2.2.2.2");
        p2.ident = 2;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p1);
        t.record(SimTime(100), NodeId(0), TraceEventKind::Sent, &p2);
        t.record(SimTime(900), NodeId(2), TraceEventKind::DeliveredLocal, &p1);
        let lat = t
            .first_delivery_latency(|s| s.dst == ip("2.2.2.2"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(900));
    }

    #[test]
    fn latency_charges_tunnel_deliveries_from_the_original_sender() {
        // Reverse tunnel: the mobile sends an encapsulated packet at t=0;
        // the home agent decapsulates and re-originates the inner packet
        // (a Sent event at the agent, t=600); the server receives it at
        // t=900. End-to-end latency is 900 µs, not the 300 µs final leg.
        let mut t = PacketTrace::new(true);
        let inner = pkt("171.64.15.9", "18.26.0.1");
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            0,
        )
        .unwrap();
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &outer);
        t.record(SimTime(600), NodeId(1), TraceEventKind::Sent, &inner);
        t.record(
            SimTime(900),
            NodeId(2),
            TraceEventKind::DeliveredLocal,
            &inner,
        );
        let lat = t
            .first_delivery_latency(|s| s.logical_endpoints().1 == ip("18.26.0.1"))
            .unwrap();
        assert_eq!(lat, SimDuration::from_micros(900));
    }

    #[test]
    fn ring_buffer_keeps_most_recent_and_counts_shed_events() {
        let mut t = PacketTrace::with_capacity(3);
        assert_eq!(t.capacity(), Some(3));
        for i in 0..5u64 {
            t.record(
                SimTime(i),
                NodeId(0),
                TraceEventKind::Sent,
                &pkt("1.1.1.1", "2.2.2.2"),
            );
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped_events(), 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![2, 3, 4], "oldest events shed first");
        // Aggregates now see only the window.
        assert_eq!(t.hops(|_| true), 3);
        t.clear();
        assert_eq!(t.dropped_events(), 0);
        assert_eq!(t.capacity(), Some(3), "clear keeps the bound");
    }

    #[test]
    fn ring_buffer_shed_count_is_exact_at_the_boundary() {
        let mut t = PacketTrace::with_capacity(4);
        let p = pkt("1.1.1.1", "2.2.2.2");
        // Exactly at capacity: nothing shed yet.
        for i in 0..4u64 {
            t.record(SimTime(i), NodeId(0), TraceEventKind::Sent, &p);
        }
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.dropped_events(), 0, "full ring has shed nothing");
        // Each event past capacity sheds exactly one.
        for extra in 1..=3u64 {
            t.record(SimTime(10 + extra), NodeId(0), TraceEventKind::Sent, &p);
            assert_eq!(t.events().len(), 4);
            assert_eq!(t.dropped_events(), extra);
        }
    }

    #[test]
    fn causal_bookkeeping_survives_ring_shedding() {
        // Capacity 1: by the end only the last event remains, but parent
        // links and flow membership are answered from the id registry,
        // which is bounded by packets, not events.
        let mut t = PacketTrace::with_capacity(1);
        let inner = pkt("1.1.1.1", "2.2.2.2");
        let outer =
            encapsulate(EncapFormat::IpInIp, ip("9.9.9.9"), ip("8.8.8.8"), &inner, 3).unwrap();
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &inner);
        let root = t.events().back().unwrap().packet_id;
        let flow = t.events().back().unwrap().flow_id;
        t.record_transform(
            SimTime(1),
            NodeId(0),
            TransformKind::Encapsulated(EncapFormat::IpInIp),
            Some(&inner),
            &outer,
        );
        let child = t.events().back().unwrap().packet_id;
        assert_eq!(t.events().len(), 1, "ring kept only the transform");
        assert_eq!(t.dropped_events(), 1);
        assert_eq!(t.parent_of(child), Some(root), "link outlives the window");
        assert_eq!(t.flow_of(child), Some(flow));
        assert_eq!(
            t.first_wire_len(root),
            Some(inner.wire_len()),
            "overhead baseline outlives the window"
        );
        assert_eq!(t.packets_identified(), 2);
    }

    #[test]
    fn flow_sampling_keeps_one_in_n_and_counts_suppressed() {
        let mut t = PacketTrace::new(true);
        t.enable_flow_sampling(4, 99);
        assert_eq!(t.flow_sample_rate(), Some(4));
        // 64 distinct flows, 2 events each.
        let mut kept_flows = 0;
        for i in 0..64u32 {
            let p = pkt(&format!("10.0.{i}.1"), &format!("10.0.{i}.2"));
            t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
            t.record(SimTime(1), NodeId(1), TraceEventKind::DeliveredLocal, &p);
        }
        for e in t.events() {
            assert!(t.keeps_flow(e.flow_id));
        }
        let flows: std::collections::HashSet<_> = t.events().iter().map(|e| e.flow_id).collect();
        kept_flows += flows.len();
        assert!(
            kept_flows > 0 && kept_flows < 64,
            "sampled subset, kept {kept_flows}"
        );
        assert_eq!(
            t.suppressed_events() as usize + t.events().len(),
            128,
            "every event either kept or counted"
        );
        // Identity bookkeeping still covers every flow.
        assert_eq!(t.packets_identified(), 64);
    }

    #[test]
    fn flow_sampling_is_deterministic_given_seed() {
        let run = |seed: u64| {
            let mut t = PacketTrace::new(true);
            t.enable_flow_sampling(3, seed);
            for i in 0..32u32 {
                let p = pkt(&format!("10.1.{i}.1"), &format!("10.1.{i}.2"));
                t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
            }
            t.events().iter().map(|e| e.flow_id.0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same sample");
        assert_ne!(run(7), run(8), "different seed, different sample");
    }

    #[test]
    fn anomalous_flows_are_promoted_to_full_capture() {
        let mut t = PacketTrace::new(true);
        // Rate so high nothing is sampled in by the hash.
        t.enable_flow_sampling(u64::MAX, 1);
        let p = pkt("10.9.0.1", "10.9.0.2");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        assert!(t.events().is_empty(), "head of flow sampled out");
        assert_eq!(t.suppressed_events(), 1);
        // A drop promotes the flow: the drop and everything after is kept.
        t.record(
            SimTime(1),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::TtlExpired),
            &p,
        );
        t.record(SimTime(2), NodeId(0), TraceEventKind::Sent, &p);
        assert_eq!(t.events().len(), 2, "drop + post-drop event kept");
        assert_eq!(t.promoted_flows(), 1);
    }

    #[test]
    fn retransmission_promotes_its_flow() {
        let mut t = PacketTrace::new(true);
        t.enable_flow_sampling(u64::MAX, 1);
        let mut first = pkt("10.8.0.1", "10.8.0.2");
        first.ident = 1;
        let mut retx = pkt("10.8.0.1", "10.8.0.2");
        retx.ident = 2;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &first);
        assert!(t.events().is_empty());
        t.record_transform(
            SimTime(10),
            NodeId(0),
            TransformKind::Retransmission,
            None,
            &retx,
        );
        t.record(SimTime(11), NodeId(0), TraceEventKind::Sent, &retx);
        assert_eq!(t.events().len(), 2, "retransmission promoted the flow");
    }

    #[test]
    fn promote_endpoints_flags_known_conversations() {
        let mut t = PacketTrace::new(true);
        t.enable_flow_sampling(u64::MAX, 1);
        let p = pkt("10.7.0.1", "10.7.0.2");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        assert!(t.events().is_empty());
        // Protocol layer flags the conversation (reversed direction —
        // promotion is direction insensitive).
        t.promote_endpoints(ip("10.7.0.2"), ip("10.7.0.1"), IpProtocol::Udp);
        t.record(SimTime(1), NodeId(0), TraceEventKind::Sent, &p);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.promoted_flows(), 1);
    }

    #[test]
    fn sampling_off_keeps_everything_and_clear_resets() {
        let mut t = PacketTrace::new(true);
        let p = pkt("10.6.0.1", "10.6.0.2");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        assert_eq!(t.suppressed_events(), 0);
        assert!(t.keeps_flow(FlowId(123)));
        t.enable_flow_sampling(1, 0);
        assert_eq!(t.flow_sample_rate(), None, "n<=1 disables sampling");
        t.enable_flow_sampling(1000, 0);
        t.record(SimTime(1), NodeId(0), TraceEventKind::Sent, &p);
        t.clear();
        assert_eq!(t.suppressed_events(), 0);
        assert_eq!(t.promoted_flows(), 0);
    }

    #[test]
    fn zero_capacity_ring_counts_everything() {
        let mut t = PacketTrace::with_capacity(0);
        t.record(
            SimTime(0),
            NodeId(0),
            TraceEventKind::Sent,
            &pkt("1.1.1.1", "2.2.2.2"),
        );
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 1);
    }
}
