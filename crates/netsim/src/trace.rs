//! Packet tracing and measurement.
//!
//! Experiments observe the network exclusively through this module: every
//! send, forward, local delivery and drop is recorded with a parsed summary
//! of the packet (including the inner header when the packet is a tunnel).
//! That is enough to measure everything the paper's figures illustrate —
//! path hop counts, per-direction latency, bytes on the wire, and exactly
//! *which router dropped which packet and why* (Figure 2).

use crate::event::NodeId;
use crate::time::SimTime;
use crate::wire::encap;
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};

/// Why a packet was dropped. The first three are the network policies the
/// paper names in §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// A boundary router saw a packet arriving from outside whose source
    /// address claims to be inside (ingress filtering), or vice versa
    /// (egress filtering). The paper's Figure 2 failure.
    SourceAddressFilter,
    /// An end-user network refusing to carry transit traffic (§3.1).
    TransitPolicy,
    /// An explicit firewall rule.
    Firewall,
    /// TTL reached zero.
    TtlExpired,
    /// No route to the destination.
    NoRoute,
    /// Packet larger than link MTU with DF set.
    MtuExceeded,
    /// Fault injection on a link.
    LinkFault,
    /// ARP could not resolve the next hop on the final segment.
    ArpFailure,
    /// Arrived at a host with no protocol handler / listener.
    NoListener,
    /// Failed to parse (e.g. corrupted by fault injection).
    Malformed,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::SourceAddressFilter => "source-address filter",
            DropReason::TransitPolicy => "transit policy",
            DropReason::Firewall => "firewall",
            DropReason::TtlExpired => "ttl expired",
            DropReason::NoRoute => "no route",
            DropReason::MtuExceeded => "mtu exceeded (DF)",
            DropReason::LinkFault => "link fault",
            DropReason::ArpFailure => "arp failure",
            DropReason::NoListener => "no listener",
            DropReason::Malformed => "malformed",
        };
        f.write_str(s)
    }
}

/// A compact, parsed view of one IP packet as seen at one point in the net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSummary {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// The IP protocol of the payload.
    pub protocol: IpProtocol,
    /// On-wire length of the packet, bytes.
    pub wire_len: usize,
    /// `(src, dst, protocol)` of the inner packet, when this is a tunnel.
    pub inner: Option<(Ipv4Addr, Ipv4Addr, IpProtocol)>,
}

impl PacketSummary {
    /// Summarize a packet, looking through one tunnel layer if present.
    pub fn of(pkt: &Ipv4Packet) -> PacketSummary {
        let inner = if encap::is_tunnel(pkt) {
            encap::decapsulate(pkt)
                .ok()
                .map(|i| (i.src, i.dst, i.protocol))
        } else {
            None
        };
        PacketSummary {
            src: pkt.src,
            dst: pkt.dst,
            protocol: pkt.protocol,
            wire_len: pkt.wire_len(),
            inner,
        }
    }

    /// The addresses of the *logical* conversation: the inner header if
    /// encapsulated, the outer one otherwise.
    pub fn logical_endpoints(&self) -> (Ipv4Addr, Ipv4Addr) {
        match self.inner {
            Some((s, d, _)) => (s, d),
            None => (self.src, self.dst),
        }
    }
}

/// What happened to the packet at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Originated here and handed to a link.
    Sent,
    /// Transited a router (or was re-tunnelled by an agent).
    Forwarded,
    /// Reached a host stack and was delivered to a local protocol.
    DeliveredLocal,
    /// Discarded.
    Dropped(DropReason),
}

/// One observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// What happened to the packet.
    pub kind: TraceEventKind,
    /// Parsed view of the packet involved.
    pub packet: PacketSummary,
}

/// Collects [`TraceEvent`]s. Owned by the [`crate::world::World`].
#[derive(Debug, Default)]
pub struct PacketTrace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

/// Where trace records get written. Kept as a struct rather than a trait so
/// the world can expose it without dynamic dispatch; experiments only read.
pub type TraceSink = PacketTrace;

impl PacketTrace {
    /// An empty trace; records only while enabled.
    pub fn new(enabled: bool) -> PacketTrace {
        PacketTrace {
            events: Vec::new(),
            enabled,
        }
    }

    /// Turn recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Record one observation (no-op while disabled).
    pub fn record(&mut self, at: SimTime, node: NodeId, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                node,
                kind,
                packet: PacketSummary::of(pkt),
            });
        }
    }

    /// Forget everything recorded so far.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Every recorded event, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose packet summary satisfies `pred`.
    pub fn matching<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a TraceEvent>
    where
        F: Fn(&PacketSummary) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.packet))
    }

    /// Number of times matching packets were put on a wire (Sent+Forwarded):
    /// i.e. total link traversals, the "distance travelled" of §3.2.
    pub fn hops<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .count()
    }

    /// Local deliveries of matching packets.
    pub fn deliveries<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::DeliveredLocal))
            .count()
    }

    /// Drops of matching packets, with reasons.
    pub fn drops<F>(&self, pred: F) -> Vec<(NodeId, DropReason)>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter_map(|e| match e.kind {
                TraceEventKind::Dropped(r) => Some((e.node, r)),
                _ => None,
            })
            .collect()
    }

    /// Total bytes put on wires by matching packets.
    pub fn bytes_on_wire<F>(&self, pred: F) -> usize
    where
        F: Fn(&PacketSummary) -> bool,
    {
        self.matching(pred)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent | TraceEventKind::Forwarded))
            .map(|e| e.packet.wire_len)
            .sum()
    }

    /// Time from first Sent to first DeliveredLocal among matching events,
    /// i.e. one-way delivery latency of the first matching packet.
    pub fn first_delivery_latency<F>(&self, pred: F) -> Option<crate::time::SimDuration>
    where
        F: Fn(&PacketSummary) -> bool,
    {
        let mut sent: Option<SimTime> = None;
        for e in self.matching(pred) {
            match e.kind {
                TraceEventKind::Sent if sent.is_none() => sent = Some(e.at),
                TraceEventKind::DeliveredLocal => {
                    if let Some(s) = sent {
                        return Some(e.at.since(s));
                    }
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::wire::encap::{encapsulate, EncapFormat};
    use bytes::Bytes;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt(src: &str, dst: &str) -> Ipv4Packet {
        Ipv4Packet::new(ip(src), ip(dst), IpProtocol::Udp, Bytes::from_static(b"x"))
    }

    #[test]
    fn summary_sees_through_tunnels() {
        let inner = pkt("171.64.15.9", "18.26.0.1");
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &inner,
            0,
        )
        .unwrap();
        let s = PacketSummary::of(&outer);
        assert_eq!(s.src, ip("36.186.0.99"));
        assert_eq!(
            s.inner,
            Some((ip("171.64.15.9"), ip("18.26.0.1"), IpProtocol::Udp))
        );
        assert_eq!(s.logical_endpoints(), (ip("171.64.15.9"), ip("18.26.0.1")));
        let plain = PacketSummary::of(&inner);
        assert_eq!(plain.inner, None);
        assert_eq!(plain.logical_endpoints(), (ip("171.64.15.9"), ip("18.26.0.1")));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PacketTrace::new(false);
        t.record(SimTime::ZERO, NodeId(0), TraceEventKind::Sent, &pkt("1.1.1.1", "2.2.2.2"));
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.record(SimTime::ZERO, NodeId(0), TraceEventKind::Sent, &pkt("1.1.1.1", "2.2.2.2"));
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn hops_deliveries_drops_and_bytes() {
        let mut t = PacketTrace::new(true);
        let p = pkt("1.1.1.1", "2.2.2.2");
        let q = pkt("3.3.3.3", "4.4.4.4");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        t.record(SimTime(10), NodeId(1), TraceEventKind::Forwarded, &p);
        t.record(SimTime(20), NodeId(2), TraceEventKind::DeliveredLocal, &p);
        t.record(
            SimTime(5),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::SourceAddressFilter),
            &q,
        );
        let to2 = |s: &PacketSummary| s.dst == ip("2.2.2.2");
        assert_eq!(t.hops(to2), 2);
        assert_eq!(t.deliveries(to2), 1);
        assert_eq!(t.bytes_on_wire(to2), 2 * p.wire_len());
        assert_eq!(
            t.first_delivery_latency(to2),
            Some(SimDuration::from_micros(20))
        );
        let dropped = t.drops(|s| s.src == ip("3.3.3.3"));
        assert_eq!(dropped, vec![(NodeId(1), DropReason::SourceAddressFilter)]);
        t.clear();
        assert!(t.events().is_empty());
    }
}
