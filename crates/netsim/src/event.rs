//! The discrete-event scheduler.
//!
//! Every interesting occurrence in the simulated network — a frame arriving
//! at an interface, a protocol timer firing — is an [`Event`] ordered by
//! simulated time. Ties are broken by insertion sequence number, which makes
//! runs fully deterministic.
//!
//! The production implementation is a **hierarchical timing wheel**
//! ([`SchedulerKind::Wheel`]): four levels of 256 buckets whose slot widths
//! grow by 256× per level (1 µs, 256 µs, ~65.5 ms, ~16.8 s), covering
//! 2³² µs ≈ 71 minutes of simulated future; anything farther sits in an
//! overflow heap until the wheel rotates close enough. Push and cancel are
//! O(1); popping cascades coarse buckets into finer ones as time advances,
//! touching each event at most [`LEVELS`] times. A plain `BinaryHeap` model
//! ([`SchedulerKind::ReferenceHeap`]) is kept for differential tests: both
//! backends pop byte-identical event sequences.
//!
//! Timers scheduled through [`EventQueue::push_cancellable`] return a
//! [`TimerHandle`]. Cancellation is *lazy tombstoning*: the handle's slab
//! slot is flagged and the queued entry is discarded when the scheduler next
//! touches it, so `cancel` never searches the wheel. A cancelled event is
//! never returned from `pop` — but an event already drained into the
//! caller's same-timestamp batch can no longer be recalled, which is why
//! protocol guard code against stale timers stays in place.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

use bytes::Bytes;

use crate::time::SimTime;

/// Identifies a node (host or router) in the [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a network interface within a node.
pub type IfaceNo = usize;

/// Opaque timer identifier. Protocols encode what the timer means in the
/// token value; the scheduler never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// A scheduled timer, delivered back to the node that set it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// The node concerned.
    pub node: NodeId,
    /// The opaque token the setter chose.
    pub token: TimerToken,
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A link finished propagating a frame to `iface` of `node`.
    /// `frame` is the raw Ethernet frame bytes as they appear on the wire.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Interface to deliver on.
        iface: IfaceNo,
        /// Raw Ethernet frame bytes as they appear on the wire.
        frame: Bytes,
    },
    /// A timer set by `timer.node` fires.
    Timer(Timer),
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// Deterministic tie-break key. For events pushed through
    /// [`EventQueue::push`] this is an insertion sequence number; the world
    /// instead supplies *lane keys* ([`lane_key`]) derived from the pushing
    /// entity, so the same-timestamp order is identical no matter which
    /// shard's queue an event was pushed into.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

// ---- lane keys ---------------------------------------------------------------
//
// Sharded execution dispatches same-timestamp events in `(time, key)` order,
// merged across shards. A globally incrementing push counter cannot supply
// the key — push order is not reproducible once shards run concurrently — so
// the world derives keys from the *pushing entity* instead: every node and
// every segment owns a monotone counter, and a key is `(lane << 40) | seq`.
// An entity is dispatched by exactly one shard, so its counter advances in
// the same order serially and sharded, making keys (and therefore the merged
// dispatch order) byte-identical across execution modes.

/// Bits reserved for the per-lane sequence counter.
pub const LANE_SEQ_BITS: u32 = 40;

/// Lane of world-level pushes ([`crate::world::World::poll_soon`] and
/// friends), which only ever happen on the coordinating thread.
pub const LANE_EXTERNAL: u64 = 0;

/// Lane owned by node `n` (timers it sets for itself).
pub fn node_lane(n: NodeId) -> u64 {
    1 + 2 * n.0 as u64
}

/// Lane owned by segment `s` (frame deliveries it schedules).
pub fn segment_lane(s: usize) -> u64 {
    2 + 2 * s as u64
}

/// Compose a tie-break key from a lane and that lane's sequence counter.
pub fn lane_key(lane: u64, seq: u64) -> u64 {
    debug_assert!(lane < (1 << (64 - LANE_SEQ_BITS)), "lane overflow");
    debug_assert!(seq < (1 << LANE_SEQ_BITS), "lane sequence overflow");
    (lane << LANE_SEQ_BITS) | seq
}

/// Anything events can be scheduled into. [`crate::link::Segment::transmit`]
/// is generic over this so delivery events can go to a single queue (serial
/// execution), the dispatching shard's own queue, or be routed to each
/// receiver's shard queue when a border transmission is applied at a
/// synchronization barrier.
pub trait EventSink {
    /// Schedule `kind` at `at` with the explicit tie-break `key`.
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind);
}

impl EventSink for EventQueue {
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        EventQueue::push_keyed(self, at, key, kind);
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---- cancellable timer handles ----------------------------------------------

/// Handle to a cancellable scheduled event, returned by
/// [`EventQueue::push_cancellable`] (and therefore by
/// [`crate::world::NetCtx::set_timer`]). Cancelling a handle whose event
/// already fired is a harmless no-op: the generation check makes stale
/// handles inert, so holders never need to track firing themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    ix: u32,
    gen: u32,
}

/// One slab slot backing a [`TimerHandle`]. The generation counter is
/// bumped every time the slot is recycled, so handles from a previous
/// occupancy can never cancel the current one.
#[derive(Debug, Clone, Copy)]
struct SlabEntry {
    gen: u32,
    cancelled: bool,
}

/// Array-backed registry of pending cancellable events: O(1) allocate,
/// cancel and release, no hashing on the scheduler hot path.
#[derive(Debug, Default)]
struct TimerSlab {
    entries: Vec<SlabEntry>,
    free: Vec<u32>,
}

impl TimerSlab {
    fn alloc(&mut self) -> TimerHandle {
        match self.free.pop() {
            Some(ix) => {
                let e = &mut self.entries[ix as usize];
                e.cancelled = false;
                TimerHandle { ix, gen: e.gen }
            }
            None => {
                self.entries.push(SlabEntry {
                    gen: 0,
                    cancelled: false,
                });
                TimerHandle {
                    ix: (self.entries.len() - 1) as u32,
                    gen: 0,
                }
            }
        }
    }

    /// Tombstone the handle's event. Returns `false` when the handle is
    /// stale (the event already fired or was already cancelled).
    fn cancel(&mut self, h: TimerHandle) -> bool {
        match self.entries.get_mut(h.ix as usize) {
            Some(e) if e.gen == h.gen && !e.cancelled => {
                e.cancelled = true;
                true
            }
            _ => false,
        }
    }

    /// Whether a queued event's handle was tombstoned. Only valid for
    /// handles still physically in the queue (their slot cannot have been
    /// recycled yet).
    fn is_cancelled(&self, h: TimerHandle) -> bool {
        self.entries[h.ix as usize].cancelled
    }

    /// Return a slot to the free list once its event leaves the queue
    /// (fired or tombstone collected).
    fn release(&mut self, h: TimerHandle) {
        let e = &mut self.entries[h.ix as usize];
        e.gen = e.gen.wrapping_add(1);
        self.free.push(h.ix);
    }
}

// ---- scheduler selection -----------------------------------------------------

/// Which event-queue implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The hierarchical timing wheel (production default).
    Wheel,
    /// The plain `BinaryHeap` model the wheel must match event-for-event.
    /// Kept for differential tests and benchmarks.
    ReferenceHeap,
}

static DEFAULT_SCHEDULER: AtomicU8 = AtomicU8::new(0);

/// Set the scheduler every subsequently created [`crate::world::World`]
/// uses. Differential tests flip this to [`SchedulerKind::ReferenceHeap`]
/// to prove run reports are byte-identical across backends; everything
/// else leaves it alone.
pub fn set_default_scheduler(kind: SchedulerKind) {
    let v = match kind {
        SchedulerKind::Wheel => 0,
        SchedulerKind::ReferenceHeap => 1,
    };
    DEFAULT_SCHEDULER.store(v, AtomicOrdering::SeqCst);
}

/// The scheduler new worlds currently get (see [`set_default_scheduler`]).
pub fn default_scheduler() -> SchedulerKind {
    match DEFAULT_SCHEDULER.load(AtomicOrdering::SeqCst) {
        0 => SchedulerKind::Wheel,
        _ => SchedulerKind::ReferenceHeap,
    }
}

/// Scheduler activity counters, readable through
/// [`crate::world::World::scheduler_stats`]. `dispatched + cancelled ==
/// pushed` once a simulation drains: a cancelled event is never dispatched.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Events scheduled (cancellable or not).
    pub pushed: u64,
    /// Events handed to the event loop.
    pub dispatched: u64,
    /// Events tombstoned via [`EventQueue::cancel`] before firing.
    pub cancelled: u64,
}

serde::impl_serialize!(SchedulerStats {
    pushed,
    dispatched,
    cancelled,
});

/// Timing-wheel internals sampled while the flight recorder
/// ([`crate::profile`]) is enabled: cascade activity, occupancy-bitmap
/// popcounts per level, and overflow-heap pressure. All zeros when
/// profiling never ran or on the reference-heap backend. Readable through
/// [`EventQueue::telemetry`] / [`crate::world::World::scheduler_telemetry`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerTelemetry {
    /// Coarse buckets cascaded down a level.
    pub cascades: u64,
    /// Entries moved by those cascades.
    pub cascade_entries: u64,
    /// Entries promoted from the overflow heap onto the wheel.
    pub overflow_promotions: u64,
    /// High-water mark of the overflow heap.
    pub overflow_peak: u64,
    /// Occupied-slot popcount per level, summed over cascade samples
    /// (divide by `samples` for the mean).
    pub occupancy_sum: [u64; LEVELS],
    /// Occupied-slot popcount per level, peak over cascade samples.
    pub occupancy_peak: [u64; LEVELS],
    /// Number of occupancy samples (one per cascade).
    pub samples: u64,
}

serde::impl_serialize!(SchedulerTelemetry {
    cascades,
    cascade_entries,
    overflow_promotions,
    overflow_peak,
    occupancy_sum,
    occupancy_peak,
    samples,
});

// ---- internal entry ----------------------------------------------------------

/// A queued event plus its cancellation handle (if any). Times are raw
/// microsecond ticks internally; [`Event`] re-wraps them on the way out.
#[derive(Debug, Clone)]
struct Entry {
    at: u64,
    seq: u64,
    handle: Option<TimerHandle>,
    kind: EventKind,
}

/// Min-heap adapter for [`Entry`] ordered by `(at, seq)`.
#[derive(Debug)]
struct HeapEntry(Entry);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

// ---- the hierarchical timing wheel -------------------------------------------

/// Wheel levels. Level `L` buckets are `256^L` µs wide.
const LEVELS: usize = 4;
/// log2(buckets per level).
const SLOT_BITS: u32 = 8;
/// Buckets per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Bitmap words per level.
const WORDS: usize = SLOTS / 64;
/// Events at `cursor + 2^32 µs` or beyond go to the overflow heap.
const SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// Level an event at xor-distance `x = at ^ cursor` belongs to, or `None`
/// for the overflow heap. Aligned windows: two times share a level-`L`
/// window exactly when their bits above `8(L+1)` agree.
fn level_of(x: u64) -> Option<usize> {
    if x < SPAN {
        // Highest differing byte picks the level; x < 256 → level 0.
        Some((63 - (x | 1).leading_zeros() as usize) / SLOT_BITS as usize)
    } else {
        None
    }
}

/// Bucket index of `at` within its level-`l` window.
fn slot_ix(l: usize, at: u64) -> usize {
    ((at >> (SLOT_BITS as usize * l)) & (SLOTS as u64 - 1)) as usize
}

struct Wheel {
    /// `LEVELS × SLOTS` buckets, flattened.
    slots: Vec<Vec<Entry>>,
    /// Occupancy bitmaps, one bit per bucket.
    occupied: [[u64; WORDS]; LEVELS],
    /// Lower bound on the time of every queued event; advances as batches
    /// drain, never backwards.
    cursor: u64,
    /// Events beyond the wheel's current 2³² µs horizon.
    overflow: BinaryHeap<HeapEntry>,
    /// The drained earliest bucket, sorted by seq: the next events out.
    ready: VecDeque<Entry>,
    /// Timestamp shared by everything in `ready`.
    ready_at: u64,
    /// Time of the last batch handed to the caller — a lower bound on the
    /// simulation's `now`, and therefore on every future push. The cursor
    /// rewinds here (never to an arbitrary push time) when tombstone
    /// sweeps have carried it past `now` over an emptied wheel.
    floor: u64,
    /// Cascade/occupancy/overflow gauges, recorded only while profiling
    /// is enabled.
    telemetry: SchedulerTelemetry,
}

impl std::fmt::Debug for Wheel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wheel")
            .field("cursor", &self.cursor)
            .field("ready", &self.ready.len())
            .field("overflow", &self.overflow.len())
            .finish_non_exhaustive()
    }
}

impl Wheel {
    fn new() -> Wheel {
        Wheel {
            slots: vec![Vec::new(); LEVELS * SLOTS],
            occupied: [[0; WORDS]; LEVELS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            ready_at: 0,
            floor: 0,
            telemetry: SchedulerTelemetry::default(),
        }
    }

    /// Release bucket/overflow capacity grown during event bursts. Only
    /// empty buffers are dropped, so entries (tombstoned or live) are
    /// never touched: steady-state memory reflects the world, not the
    /// largest broadcast storm the queue ever absorbed.
    fn shrink(&mut self) {
        for v in &mut self.slots {
            if v.is_empty() && v.capacity() > 32 {
                *v = Vec::new();
            }
        }
        if self.overflow.is_empty() && self.overflow.capacity() > 32 {
            self.overflow = BinaryHeap::new();
        }
        if self.ready.is_empty() && self.ready.capacity() > 32 {
            self.ready = VecDeque::new();
        }
    }

    /// Occupied-slot popcount per level.
    fn occupancy(&self) -> [u64; LEVELS] {
        let mut occ = [0u64; LEVELS];
        for (o, words) in occ.iter_mut().zip(&self.occupied) {
            *o = words.iter().map(|w| u64::from(w.count_ones())).sum();
        }
        occ
    }

    /// No physical entries anywhere — the only state when the cursor may
    /// move backwards.
    fn is_phys_empty(&self) -> bool {
        self.ready.is_empty()
            && self.overflow.is_empty()
            && self.occupied.iter().flatten().all(|&w| w == 0)
    }

    fn insert(&mut self, e: Entry) {
        if e.at < self.cursor {
            // Normalization may have swept the cursor past `now` while
            // reaping tombstones; that can only drain the wheel completely,
            // in which case rewinding to the dispatch floor (not to `e.at`
            // — later pushes may be earlier still) is unobservable.
            assert!(
                self.is_phys_empty() && e.at >= self.floor,
                "scheduled into the past: at={} cursor={} floor={}",
                e.at,
                self.cursor,
                self.floor
            );
            self.cursor = self.floor;
        }
        match level_of(e.at ^ self.cursor) {
            Some(l) => {
                let s = slot_ix(l, e.at);
                self.slots[l * SLOTS + s].push(e);
                self.occupied[l][s / 64] |= 1 << (s % 64);
            }
            None => {
                self.overflow.push(HeapEntry(e));
                if crate::profile::enabled() {
                    let len = self.overflow.len() as u64;
                    self.telemetry.overflow_peak = self.telemetry.overflow_peak.max(len);
                }
            }
        }
    }

    /// Read-only lower bound on the earliest queued entry's time, without
    /// advancing the cursor or reaping tombstones. Cancelled entries still
    /// count — they can only make the bound *earlier*, which conservative
    /// horizon computation tolerates (a too-small horizon stalls progress
    /// for a window, never corrupts it; the next `pop_batch_until` reaps
    /// the tombstones and the bound recovers).
    ///
    /// Exactness: within the wheel, occupied levels are strictly ordered in
    /// time (an entry files at the level of its xor distance from the
    /// cursor, so higher levels hold strictly later windows), level-0
    /// buckets hold a single timestamp, and a coarse bucket's minimum is
    /// found by scanning its entries. Overflow entries sort after all wheel
    /// entries.
    fn min_time(&self) -> Option<u64> {
        if let Some(front) = self.ready.front() {
            debug_assert_eq!(front.at, self.ready_at);
            return Some(self.ready_at);
        }
        if let Some(s) = self.first_slot(0) {
            return Some((self.cursor & !(SLOTS as u64 - 1)) | s as u64);
        }
        for l in 1..LEVELS {
            if let Some(s) = self.first_slot(l) {
                let min = self.slots[l * SLOTS + s]
                    .iter()
                    .map(|e| e.at)
                    .min()
                    .expect("occupied bucket is non-empty");
                return Some(min);
            }
        }
        self.overflow.peek().map(|HeapEntry(e)| e.at)
    }

    /// Lowest occupied bucket index at level `l`.
    fn first_slot(&self, l: usize) -> Option<usize> {
        for (w, &bits) in self.occupied[l].iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Ensure `ready` holds the globally earliest events, cascading coarse
    /// buckets and promoting overflow entries as needed, discarding
    /// tombstones along the way. Returns the batch timestamp, or `None`
    /// when nothing is due at or before `limit`.
    ///
    /// The cursor never advances past `limit`: a tombstone-only tail beyond
    /// the caller's deadline is left in place, so events scheduled after
    /// the caller settles at `limit` (always `>=` it) still land ahead of
    /// the cursor.
    fn next_batch_time(&mut self, limit: u64, slab: &mut TimerSlab) -> Option<u64> {
        loop {
            // Sweep tombstones off the ready front.
            while let Some(e) = self.ready.front() {
                match e.handle {
                    Some(h) if slab.is_cancelled(h) => {
                        slab.release(h);
                        self.ready.pop_front();
                    }
                    _ => {
                        self.floor = self.ready_at;
                        return Some(self.ready_at);
                    }
                }
            }
            // Refill from the finest occupied level. Level 0 buckets hold a
            // single timestamp: drain straight into `ready`.
            if let Some(s) = self.first_slot(0) {
                let t = (self.cursor & !(SLOTS as u64 - 1)) | s as u64;
                debug_assert!(t >= self.cursor, "level-0 bucket behind cursor");
                if t > limit {
                    return None;
                }
                self.cursor = t;
                self.ready_at = t;
                self.occupied[0][s / 64] &= !(1 << (s % 64));
                let bucket = &mut self.slots[s];
                bucket.sort_unstable_by_key(|e| e.seq);
                for e in bucket.drain(..) {
                    debug_assert_eq!(e.at, t, "level-0 bucket mixes timestamps");
                    match e.handle {
                        Some(h) if slab.is_cancelled(h) => slab.release(h),
                        _ => self.ready.push_back(e),
                    }
                }
                continue;
            }
            // Cascade the earliest coarse bucket down a level.
            if let Some((l, s)) = (1..LEVELS).find_map(|l| self.first_slot(l).map(|s| (l, s))) {
                let width = SLOT_BITS as usize * l;
                let window = (SLOTS as u64) << width;
                let start = (self.cursor & !(window - 1)) | ((s as u64) << width);
                debug_assert!(start >= self.cursor, "coarse bucket behind cursor");
                if start > limit {
                    return None;
                }
                self.cursor = start;
                if crate::profile::enabled() {
                    // Sample occupancy before the bucket empties so the
                    // gauge reflects the wheel as the cascade saw it.
                    let occ = self.occupancy();
                    let t = &mut self.telemetry;
                    t.cascades += 1;
                    t.samples += 1;
                    t.cascade_entries += self.slots[l * SLOTS + s].len() as u64;
                    for (l2, &o) in occ.iter().enumerate() {
                        t.occupancy_sum[l2] += o;
                        t.occupancy_peak[l2] = t.occupancy_peak[l2].max(o);
                    }
                }
                self.occupied[l][s / 64] &= !(1 << (s % 64));
                let mut bucket = std::mem::take(&mut self.slots[l * SLOTS + s]);
                for e in bucket.drain(..) {
                    match e.handle {
                        Some(h) if slab.is_cancelled(h) => slab.release(h),
                        _ => self.insert(e),
                    }
                }
                self.slots[l * SLOTS + s] = bucket; // keep the allocation
                continue;
            }
            // Wheel empty: rotate to the overflow's earliest window. Every
            // overflow event was pushed beyond the then-current horizon, so
            // all of them sort after everything the wheel held.
            let first = loop {
                match self.overflow.peek() {
                    Some(HeapEntry(e)) => match e.handle {
                        Some(h) if slab.is_cancelled(h) => {
                            slab.release(h);
                            self.overflow.pop();
                        }
                        _ => break e.at,
                    },
                    None => {
                        // Nothing lives anywhere: the sweep may have carried
                        // the cursor past `now` over tombstone-only buckets.
                        // The wheel is physically empty here, so pulling the
                        // cursor back to the dispatch floor is unobservable
                        // and keeps future pushes (all ≥ now ≥ floor) ahead
                        // of it.
                        self.cursor = self.floor;
                        return None;
                    }
                }
            };
            if first > limit {
                return None;
            }
            self.cursor = first;
            let mut promoted = 0u64;
            while let Some(HeapEntry(e)) = self.overflow.peek() {
                if e.at ^ self.cursor >= SPAN {
                    break;
                }
                let HeapEntry(e) = self.overflow.pop().expect("peeked");
                self.insert(e);
                promoted += 1;
            }
            if promoted > 0 && crate::profile::enabled() {
                self.telemetry.overflow_promotions += promoted;
            }
        }
    }
}

// ---- the public queue --------------------------------------------------------

#[derive(Debug)]
enum Backend {
    Wheel(Box<Wheel>),
    Heap(BinaryHeap<HeapEntry>),
}

/// Deterministic time-ordered event queue with O(1) cancellable timers.
///
/// Push times must be monotone with respect to dispatch: an event may not
/// be scheduled earlier than the last popped batch (the world loop
/// guarantees this — everything is scheduled at `now + delay`).
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    slab: TimerSlab,
    next_seq: u64,
    live: usize,
    stats: SchedulerStats,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty timing-wheel queue.
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::Wheel)
    }

    /// An empty queue backed by the reference `BinaryHeap` model.
    pub fn new_reference() -> Self {
        Self::with_kind(SchedulerKind::ReferenceHeap)
    }

    /// An empty queue with an explicit backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        EventQueue {
            backend: match kind {
                SchedulerKind::Wheel => Backend::Wheel(Box::new(Wheel::new())),
                SchedulerKind::ReferenceHeap => Backend::Heap(BinaryHeap::new()),
            },
            slab: TimerSlab::default(),
            next_seq: 0,
            live: 0,
            stats: SchedulerStats::default(),
        }
    }

    fn push_entry(&mut self, at: SimTime, seq: u64, kind: EventKind, handle: Option<TimerHandle>) {
        self.live += 1;
        self.stats.pushed += 1;
        let e = Entry {
            at: at.0,
            seq,
            handle,
            kind,
        };
        match &mut self.backend {
            Backend::Wheel(w) => w.insert(e),
            Backend::Heap(h) => h.push(HeapEntry(e)),
        }
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `kind` to fire at absolute time `at`, breaking timestamp
    /// ties by insertion order.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq();
        self.push_entry(at, seq, kind, None);
    }

    /// Schedule `kind` at `at` with an explicit tie-break key (see
    /// [`lane_key`]). The world uses this exclusively: entity-derived keys
    /// make same-timestamp order independent of push order, which is what
    /// lets sharded runs reproduce serial runs byte for byte. Do not mix
    /// with [`EventQueue::push`] on the same queue — the internal counter
    /// and lane keys share one ordering space.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        self.push_entry(at, key, kind, None);
    }

    /// Schedule `kind` to fire at `at` and return a handle that can
    /// cancel it in O(1) until it fires.
    pub fn push_cancellable(&mut self, at: SimTime, kind: EventKind) -> TimerHandle {
        let h = self.slab.alloc();
        let seq = self.next_seq();
        self.push_entry(at, seq, kind, Some(h));
        h
    }

    /// [`EventQueue::push_cancellable`] with an explicit tie-break key.
    pub fn push_cancellable_keyed(
        &mut self,
        at: SimTime,
        key: u64,
        kind: EventKind,
    ) -> TimerHandle {
        let h = self.slab.alloc();
        self.push_entry(at, key, kind, Some(h));
        h
    }

    /// Tombstone a scheduled event: it will never be dispatched. Returns
    /// `false` (harmlessly) when the event already fired or was already
    /// cancelled. The physical entry is reaped lazily when the scheduler
    /// next touches its bucket.
    pub fn cancel(&mut self, h: TimerHandle) -> bool {
        if self.slab.cancel(h) {
            self.live -= 1;
            self.stats.cancelled += 1;
            true
        } else {
            false
        }
    }

    fn emit(&mut self, e: Entry) -> Event {
        if let Some(h) = e.handle {
            self.slab.release(h);
        }
        self.live -= 1;
        self.stats.dispatched += 1;
        Event {
            at: SimTime(e.at),
            seq: e.seq,
            kind: e.kind,
        }
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.backend {
            Backend::Wheel(w) => {
                w.next_batch_time(u64::MAX, &mut self.slab)?;
                let e = w.ready.pop_front().expect("normalized queue has a front");
                Some(self.emit(e))
            }
            Backend::Heap(h) => loop {
                let HeapEntry(e) = h.pop()?;
                match e.handle {
                    Some(hd) if self.slab.is_cancelled(hd) => self.slab.release(hd),
                    _ => return Some(self.emit(e)),
                }
            },
        }
    }

    /// Time of the next event without removing it. `&mut` because finding
    /// it may cascade wheel buckets (and reap tombstones) — neither changes
    /// anything observable *through pops*. It does commit the wheel to the
    /// returned time: scheduling anything earlier afterwards (without
    /// popping first) is a contract violation the wheel backend panics on.
    /// [`EventQueue::pop_batch_until`] bounds the same scan by its deadline
    /// and carries no such edge — prefer it for deadline loops.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Wheel(w) => w.next_batch_time(u64::MAX, &mut self.slab).map(SimTime),
            Backend::Heap(h) => loop {
                match h.peek() {
                    None => return None,
                    Some(HeapEntry(e)) => match e.handle {
                        Some(hd) if self.slab.is_cancelled(hd) => {
                            self.slab.release(hd);
                            h.pop();
                        }
                        _ => return Some(SimTime(e.at)),
                    },
                }
            },
        }
    }

    /// Read-only lower bound on the next event's time, tombstones included
    /// (they can only make the bound earlier — see the wheel's `min_time`).
    /// Unlike [`EventQueue::peek_time`] this never commits the backend to
    /// anything, so events may still be scheduled at any time `>=` the last
    /// dispatched batch afterwards. The sharded run loop's horizon probe.
    pub fn min_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Wheel(w) => w.min_time().map(SimTime),
            Backend::Heap(h) => h.peek().map(|HeapEntry(e)| SimTime(e.at)),
        }
    }

    /// Time and tie-break key of the next event, **if** it is due at or
    /// before `limit`; `None` otherwise. Normalization is bounded by
    /// `limit`, so the queue is only ever committed to times the caller has
    /// already resolved to dispatch — pushing events after `limit` settles
    /// stays legal. Used to merge the heads of several shard queues in
    /// exact `(time, key)` order.
    pub fn peek_until(&mut self, limit: SimTime) -> Option<(SimTime, u64)> {
        match &mut self.backend {
            Backend::Wheel(w) => {
                let t = w.next_batch_time(limit.0, &mut self.slab)?;
                let front = w.ready.front().expect("normalized queue has a front");
                Some((SimTime(t), front.seq))
            }
            Backend::Heap(h) => loop {
                match h.peek() {
                    None => return None,
                    Some(HeapEntry(e)) => match e.handle {
                        Some(hd) if self.slab.is_cancelled(hd) => {
                            self.slab.release(hd);
                            h.pop();
                        }
                        _ if e.at > limit.0 => return None,
                        _ => return Some((SimTime(e.at), e.seq)),
                    },
                }
            },
        }
    }

    /// Drain every event currently queued at the earliest timestamp into
    /// `buf` (in seq order), **if** that timestamp is `<= deadline`, and
    /// return it. One peek decides the deadline and the whole batch moves
    /// without further queue traversal. Events the batch's dispatch
    /// schedules at the same timestamp are picked up by the next call.
    pub fn pop_batch_until(&mut self, deadline: SimTime, buf: &mut Vec<Event>) -> Option<SimTime> {
        let t = match &mut self.backend {
            // The deadline bounds wheel normalization: the cursor never
            // advances past it, even over a tombstone-only tail, so the
            // caller can settle at `deadline` and keep scheduling.
            Backend::Wheel(w) => SimTime(w.next_batch_time(deadline.0, &mut self.slab)?),
            Backend::Heap(_) => {
                let t = self.peek_time()?;
                if t > deadline {
                    return None;
                }
                t
            }
        };
        let start = buf.len();
        match &mut self.backend {
            Backend::Wheel(w) => {
                while let Some(e) = w.ready.pop_front() {
                    match e.handle {
                        Some(h) if self.slab.is_cancelled(h) => self.slab.release(h),
                        _ => {
                            if let Some(h) = e.handle {
                                self.slab.release(h);
                            }
                            buf.push(Event {
                                at: SimTime(e.at),
                                seq: e.seq,
                                kind: e.kind,
                            });
                        }
                    }
                }
            }
            Backend::Heap(h) => {
                while let Some(HeapEntry(e)) = h.peek() {
                    if e.at != t.0 {
                        break;
                    }
                    let HeapEntry(e) = h.pop().expect("peeked");
                    match e.handle {
                        Some(hd) if self.slab.is_cancelled(hd) => self.slab.release(hd),
                        _ => {
                            if let Some(hd) = e.handle {
                                self.slab.release(hd);
                            }
                            buf.push(Event {
                                at: SimTime(e.at),
                                seq: e.seq,
                                kind: e.kind,
                            });
                        }
                    }
                }
            }
        }
        let n = buf.len() - start;
        self.live -= n;
        self.stats.dispatched += n as u64;
        debug_assert!(n > 0, "peeked batch cannot be empty");
        Some(t)
    }

    /// Release internal capacity grown during event bursts (a broadcast
    /// storm fanning one frame out to a two-hundred-host LAN grows bucket
    /// vectors that otherwise never give the memory back). Only empty
    /// buffers are dropped, so the call is unobservable except through
    /// the allocator; the world invokes it when a run drains the queue.
    pub fn shrink(&mut self) {
        match &mut self.backend {
            Backend::Wheel(w) => w.shrink(),
            Backend::Heap(h) => {
                if h.is_empty() && h.capacity() > 32 {
                    *h = BinaryHeap::new();
                }
            }
        }
    }

    /// Number of queued (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of cancellable-timer slab slots currently allocated. A
    /// conservative over-count (tombstoned-but-unreaped entries are
    /// included); zero guarantees no outstanding [`TimerHandle`] refers
    /// to this queue's slab.
    pub(crate) fn live_cancellable(&self) -> usize {
        self.slab.entries.len() - self.slab.free.len()
    }

    /// Activity counters since creation.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Wheel-internals gauges recorded while profiling was enabled. All
    /// zeros on the reference-heap backend (it has no cascades).
    pub fn telemetry(&self) -> SchedulerTelemetry {
        match &self.backend {
            Backend::Wheel(w) => w.telemetry,
            Backend::Heap(_) => SchedulerTelemetry::default(),
        }
    }

    /// Instantaneous wheel occupancy: occupied-slot popcount per level
    /// plus the overflow-heap length. On the reference-heap backend every
    /// entry counts as overflow.
    pub fn wheel_occupancy(&self) -> ([u64; LEVELS], usize) {
        match &self.backend {
            Backend::Wheel(w) => (w.occupancy(), w.overflow.len()),
            Backend::Heap(h) => ([0; LEVELS], h.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer_event(node: usize, token: u64) -> EventKind {
        EventKind::Timer(Timer {
            node: NodeId(node),
            token: TimerToken(token),
        })
    }

    fn drain_tokens(q: &mut EventQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(t) => t.token.0,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            q.push(SimTime(30), timer_event(0, 3));
            q.push(SimTime(10), timer_event(0, 1));
            q.push(SimTime(20), timer_event(0, 2));
            assert_eq!(drain_tokens(&mut q), vec![1, 2, 3]);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            let t = SimTime::ZERO + SimDuration::from_millis(1);
            for token in 0..100 {
                q.push(t, timer_event(0, token));
            }
            assert_eq!(drain_tokens(&mut q), (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            q.push(SimTime(5), timer_event(1, 0));
            assert_eq!(q.peek_time(), Some(SimTime(5)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop().unwrap();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn cancelled_events_never_fire() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            let _keep = q.push_cancellable(SimTime(10), timer_event(0, 1));
            let kill = q.push_cancellable(SimTime(20), timer_event(0, 2));
            q.push(SimTime(30), timer_event(0, 3));
            assert!(q.cancel(kill));
            assert!(!q.cancel(kill), "double cancel is a no-op");
            assert_eq!(q.len(), 2);
            assert_eq!(drain_tokens(&mut q), vec![1, 3]);
            let s = q.stats();
            assert_eq!((s.pushed, s.dispatched, s.cancelled), (3, 2, 1));
        }
    }

    #[test]
    fn cancel_after_fire_is_inert() {
        let mut q = EventQueue::new();
        let h = q.push_cancellable(SimTime(1), timer_event(0, 1));
        q.pop().unwrap();
        assert!(!q.cancel(h));
        // The slab slot was recycled; the stale handle must not cancel the
        // new occupant.
        let h2 = q.push_cancellable(SimTime(2), timer_event(0, 2));
        assert!(!q.cancel(h));
        assert_eq!(drain_tokens(&mut q), vec![2]);
        assert!(!q.cancel(h2), "fired handle is stale");
    }

    #[test]
    fn cascade_boundaries_preserve_order() {
        // Events straddling every level boundary, pushed out of order.
        let times = [
            0u64,
            1,
            255,
            256,
            257,
            65_535,
            65_536,
            65_537,
            (1 << 24) - 1,
            1 << 24,
            (1 << 32) - 1,
            1 << 32, // overflow heap
            (1 << 32) + 5,
            (1 << 40),
        ];
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            for (i, &t) in times.iter().rev().enumerate() {
                q.push(SimTime(t), timer_event(0, i as u64));
            }
            let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
            let mut expect = times.to_vec();
            expect.sort_unstable();
            assert_eq!(popped, expect);
        }
    }

    #[test]
    fn interleaved_push_pop_across_windows() {
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::new_reference();
        let mut lcg = 0x1234_5678_u64;
        let mut now = 0u64;
        let mut out_w = Vec::new();
        let mut out_h = Vec::new();
        for i in 0..2_000u64 {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            // Mix of same-tick, near, cascade-crossing and far-future delays.
            let delay = match lcg % 7 {
                0 => 0,
                1 => lcg % 256,
                2 => 255 + lcg % 3,
                3 => lcg % 70_000,
                4 => lcg % (1 << 25),
                5 => (1 << 32) + lcg % 1_000,
                _ => lcg % 64,
            };
            wheel.push(SimTime(now + delay), timer_event(0, i));
            heap.push(SimTime(now + delay), timer_event(0, i));
            if lcg.is_multiple_of(3) {
                let a = wheel.pop().unwrap();
                let b = heap.pop().unwrap();
                now = a.at.0;
                out_w.push((a.at.0, a.seq));
                out_h.push((b.at.0, b.seq));
            }
        }
        while let (Some(a), Some(b)) = (wheel.pop(), heap.pop()) {
            out_w.push((a.at.0, a.seq));
            out_h.push((b.at.0, b.seq));
        }
        assert!(wheel.is_empty() && heap.is_empty());
        assert_eq!(out_w, out_h);
    }

    #[test]
    fn batch_pop_drains_one_timestamp() {
        let mut q = EventQueue::new();
        for token in 0..5 {
            q.push(SimTime(10), timer_event(0, token));
        }
        q.push(SimTime(11), timer_event(0, 99));
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch_until(SimTime(50), &mut buf), Some(SimTime(10)));
        assert_eq!(buf.len(), 5);
        assert!(buf.windows(2).all(|w| w[0].seq < w[1].seq));
        buf.clear();
        assert_eq!(
            q.pop_batch_until(SimTime(10), &mut buf),
            None,
            "next batch is past the deadline"
        );
        assert_eq!(q.pop_batch_until(SimTime(11), &mut buf), Some(SimTime(11)));
        assert_eq!(buf.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn keyed_pushes_order_by_key_not_insertion() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            let t = SimTime(500);
            q.push_keyed(t, lane_key(node_lane(NodeId(3)), 0), timer_event(0, 7));
            q.push_keyed(t, lane_key(LANE_EXTERNAL, 1), timer_event(0, 1));
            q.push_keyed(t, lane_key(segment_lane(0), 0), timer_event(0, 2));
            q.push_keyed(t, lane_key(LANE_EXTERNAL, 0), timer_event(0, 0));
            // External lane 0 < segment 0 lane < node 3 lane.
            assert_eq!(drain_tokens(&mut q), vec![0, 1, 2, 7]);
        }
    }

    #[test]
    fn min_time_is_read_only_and_conservative() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            assert_eq!(q.min_time(), None);
            // Far apart so they land on different wheel levels.
            q.push(SimTime(70_000), timer_event(0, 2));
            q.push(SimTime(300), timer_event(0, 1));
            let h = q.push_cancellable(SimTime(5), timer_event(0, 0));
            assert_eq!(q.min_time(), Some(SimTime(5)));
            q.cancel(h);
            // Tombstone still counts: a conservative (earlier) bound.
            assert!(q.min_time().unwrap() <= SimTime(300));
            // Scheduling earlier than the reported bound stays legal.
            q.push(SimTime(2), timer_event(0, 9));
            assert_eq!(q.min_time(), Some(SimTime(2)));
            assert_eq!(drain_tokens(&mut q), vec![9, 1, 2]);
        }
    }

    #[test]
    fn peek_until_bounds_commitment() {
        for mut q in [EventQueue::new(), EventQueue::new_reference()] {
            q.push_keyed(SimTime(1000), 42, timer_event(0, 1));
            assert_eq!(q.peek_until(SimTime(999)), None);
            // Probing commits at most up to the limit: pushing at or past
            // the probed horizon stays legal, and peeking never dispatches.
            q.push_keyed(SimTime(999), 7, timer_event(0, 0));
            assert_eq!(q.peek_until(SimTime(999)), Some((SimTime(999), 7)));
            assert_eq!(q.peek_until(SimTime(u64::MAX)), Some((SimTime(999), 7)));
            assert_eq!(drain_tokens(&mut q), vec![0, 1]);
        }
    }

    #[test]
    fn default_scheduler_is_settable() {
        assert_eq!(default_scheduler(), SchedulerKind::Wheel);
        set_default_scheduler(SchedulerKind::ReferenceHeap);
        assert_eq!(default_scheduler(), SchedulerKind::ReferenceHeap);
        set_default_scheduler(SchedulerKind::Wheel);
    }
}
