//! The discrete-event scheduler.
//!
//! Every interesting occurrence in the simulated network — a frame arriving
//! at an interface, a protocol timer firing — is an [`Event`] in a priority
//! queue ordered by simulated time. Ties are broken by insertion sequence
//! number, which makes runs fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;

use crate::time::SimTime;

/// Identifies a node (host or router) in the [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a network interface within a node.
pub type IfaceNo = usize;

/// Opaque timer identifier. Protocols encode what the timer means in the
/// token value; the scheduler never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// A scheduled timer, delivered back to the node that set it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// The node concerned.
    pub node: NodeId,
    /// The opaque token the setter chose.
    pub token: TimerToken,
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A link finished propagating a frame to `iface` of `node`.
    /// `frame` is the raw Ethernet frame bytes as they appear on the wire.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Interface to deliver on.
        iface: IfaceNo,
        /// Raw Ethernet frame bytes as they appear on the wire.
        frame: Bytes,
    },
    /// A timer set by `timer.node` fires.
    Timer(Timer),
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// Insertion sequence number (deterministic tie-break).
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer_event(node: usize, token: u64) -> EventKind {
        EventKind::Timer(Timer {
            node: NodeId(node),
            token: TimerToken(token),
        })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer_event(0, 3));
        q.push(SimTime(10), timer_event(0, 1));
        q.push(SimTime(20), timer_event(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(t) => t.token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + SimDuration::from_millis(1);
        for token in 0..100 {
            q.push(t, timer_event(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer(t) => t.token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), timer_event(1, 0));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
