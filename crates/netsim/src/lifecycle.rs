//! Causal packet-lifecycle reconstruction.
//!
//! [`PacketTrace`] records a flat event log with causal identities; this
//! module folds that log into *spans*: one [`PacketLifecycle`] per packet
//! (send → hops → transform/drop/delivery, with per-hop latency), linked
//! into a tree by parent ids, plus one [`FlowSummary`] per conversation
//! aggregating deliveries, drops by reason, retransmissions and the header
//! bytes each encapsulation layer added.
//!
//! A [`Lifecycle`] is self-contained (it embeds the world's node names) and
//! round-trips through the run-report JSON: [`Lifecycle::to_value`] /
//! [`Lifecycle::from_value`]. Two exporters read it:
//!
//! * [`Lifecycle::chrome_trace`] — Chrome trace-event JSON (load in
//!   `chrome://tracing` or Perfetto), one lane per node, spans over
//!   simulated time.
//! * [`Lifecycle::write_pcapng`] — a pcapng capture whose per-packet
//!   comments carry the packet/flow ids, event kinds and drop reasons.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, Write};

use crate::event::NodeId;
use crate::time::SimDuration;
use crate::trace::{
    DropReason, FlowId, PacketId, PacketSummary, PacketTrace, TraceEvent, TraceEventKind,
    TransformKind,
};
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};
use crate::wire::pcap::PcapNgWriter;
use bytes::Bytes;
use serde::{Serialize, Value};

/// How a packet's recorded life ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketOutcome {
    /// Delivered to a local protocol at this node.
    Delivered(NodeId),
    /// Discarded at this node for this reason.
    Dropped(NodeId, DropReason),
    /// Turned into another packet (encapsulated, decapsulated, rewritten…);
    /// the story continues under the child's id.
    Became(PacketId),
    /// The trace window closed with the packet still in flight (or its
    /// later events were shed by the ring buffer).
    InFlight,
}

impl Serialize for PacketOutcome {
    fn to_value(&self) -> Value {
        let mut fields = vec![(
            "outcome".to_string(),
            Value::Str(
                match self {
                    PacketOutcome::Delivered(_) => "delivered",
                    PacketOutcome::Dropped(..) => "dropped",
                    PacketOutcome::Became(_) => "became",
                    PacketOutcome::InFlight => "in-flight",
                }
                .into(),
            ),
        )];
        match self {
            PacketOutcome::Delivered(n) => fields.push(("node".into(), Value::U64(n.0 as u64))),
            PacketOutcome::Dropped(n, r) => {
                fields.push(("node".into(), Value::U64(n.0 as u64)));
                fields.push(("reason".into(), r.to_value()));
            }
            PacketOutcome::Became(c) => fields.push(("child".into(), c.to_value())),
            PacketOutcome::InFlight => {}
        }
        Value::Object(fields)
    }
}

/// One link traversal in a packet's span: consecutive trace events at
/// different nodes, the first of which put the packet on a wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The node that transmitted.
    pub from: NodeId,
    /// The node that next observed the packet.
    pub to: NodeId,
    /// Simulated time between the two observations.
    pub latency: SimDuration,
}

impl Serialize for Hop {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("from".to_string(), Value::U64(self.from.0 as u64)),
            ("to".into(), Value::U64(self.to.0 as u64)),
            ("us".into(), Value::U64(self.latency.as_micros())),
        ])
    }
}

/// The reconstructed span of one packet: everything the trace saw happen to
/// it, in order, with its causal links.
#[derive(Debug, Clone)]
pub struct PacketLifecycle {
    /// The packet's stable id.
    pub id: PacketId,
    /// The conversation it belongs to.
    pub flow: FlowId,
    /// The packet it was derived from, when a transform produced it.
    pub parent: Option<PacketId>,
    /// Every retained trace event for this packet, in time order.
    pub events: Vec<TraceEvent>,
    /// How the recorded life ended.
    pub outcome: PacketOutcome,
    /// Link traversals with per-hop latency.
    pub hops: Vec<Hop>,
    /// True when the span's beginning is missing — its first retained event
    /// is not the send or transform that created it, so earlier events were
    /// shed by the ring buffer (or recording started mid-flight).
    pub truncated: bool,
    /// Header bytes the encapsulation added, for packets created by an
    /// `Encapsulated` transform: this packet's wire length minus the
    /// parent's original wire length.
    pub encap_overhead: Option<u64>,
}

impl PacketLifecycle {
    /// When the span starts (first retained event).
    pub fn start_us(&self) -> u64 {
        self.events.first().map(|e| e.at.0).unwrap_or(0)
    }

    /// When the span ends (last retained event).
    pub fn end_us(&self) -> u64 {
        self.events.last().map(|e| e.at.0).unwrap_or(0)
    }

    /// The packet header as first observed.
    pub fn summary(&self) -> Option<&PacketSummary> {
        self.events.first().map(|e| &e.packet)
    }
}

impl Serialize for PacketLifecycle {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), self.id.to_value()),
            ("flow".into(), self.flow.to_value()),
            ("parent".into(), self.parent.to_value()),
            ("truncated".into(), Value::Bool(self.truncated)),
            ("encap_overhead".into(), self.encap_overhead.to_value()),
            ("outcome".into(), self.outcome.to_value()),
            ("hops".into(), self.hops.to_value()),
            ("events".into(), self.events.to_value()),
        ])
    }
}

/// Aggregate view of one conversation.
#[derive(Debug, Clone)]
pub struct FlowSummary {
    /// The flow's stable id.
    pub flow: FlowId,
    /// Logical source as first observed (flow ids themselves are
    /// direction-insensitive; this records the first-seen direction).
    pub src: Ipv4Addr,
    /// Logical destination as first observed.
    pub dst: Ipv4Addr,
    /// The innermost protocol of the conversation.
    pub protocol: IpProtocol,
    /// Distinct packets (including every transform product).
    pub packets: u64,
    /// Link traversals across all the flow's packets.
    pub wire_events: u64,
    /// Total bytes those traversals put on wires.
    pub bytes_on_wire: u64,
    /// Local deliveries.
    pub deliveries: u64,
    /// Drops by reason, in stable [`DropReason::index`] order; reasons that
    /// never occurred are omitted.
    pub drops: Vec<(DropReason, u64)>,
    /// Packets that were transport retransmissions.
    pub retransmissions: u64,
    /// Total header bytes encapsulation layers added across the flow.
    pub encap_overhead_bytes: u64,
    /// First activity, µs of simulated time.
    pub first_us: u64,
    /// Last activity, µs of simulated time.
    pub last_us: u64,
}

impl Serialize for FlowSummary {
    fn to_value(&self) -> Value {
        let drops = self
            .drops
            .iter()
            .map(|(r, n)| (r.tag().to_string(), Value::U64(*n)))
            .collect();
        Value::Object(vec![
            ("flow".to_string(), self.flow.to_value()),
            ("src".into(), Value::Str(self.src.to_string())),
            ("dst".into(), Value::Str(self.dst.to_string())),
            ("protocol".into(), Value::U64(self.protocol.number().into())),
            ("packets".into(), Value::U64(self.packets)),
            ("wire_events".into(), Value::U64(self.wire_events)),
            ("bytes_on_wire".into(), Value::U64(self.bytes_on_wire)),
            ("deliveries".into(), Value::U64(self.deliveries)),
            ("drops".into(), Value::Object(drops)),
            ("retransmissions".into(), Value::U64(self.retransmissions)),
            (
                "encap_overhead_bytes".into(),
                Value::U64(self.encap_overhead_bytes),
            ),
            ("first_us".into(), Value::U64(self.first_us)),
            ("last_us".into(), Value::U64(self.last_us)),
        ])
    }
}

/// The reconstructed lifecycles of every packet a trace retained, plus
/// per-flow rollups. Self-contained: carries the node names, so a lifecycle
/// loaded back from a run report can render without the world.
#[derive(Debug, Clone, Default)]
pub struct Lifecycle {
    /// Node names by [`NodeId`] index.
    pub node_names: Vec<String>,
    /// Events the trace's ring buffer shed before reconstruction — when
    /// nonzero, spans may be [truncated](PacketLifecycle::truncated).
    pub shed_events: u64,
    /// Per-packet spans, ordered by [`PacketId`].
    pub packets: Vec<PacketLifecycle>,
    /// Per-flow rollups, ordered by [`FlowId`].
    pub flows: Vec<FlowSummary>,
}

impl Lifecycle {
    /// Fold a trace's event log into per-packet spans and per-flow
    /// summaries. Works purely from the retained events: a bounded trace
    /// that shed history yields truncated spans, never a panic.
    pub fn reconstruct(trace: &PacketTrace, node_names: &[&str]) -> Lifecycle {
        let mut by_packet: BTreeMap<PacketId, Vec<TraceEvent>> = BTreeMap::new();
        let mut child_of: HashMap<PacketId, PacketId> = HashMap::new();
        for e in trace.events() {
            if matches!(e.kind, TraceEventKind::Transformed(_)) {
                if let Some(p) = e.parent_id {
                    child_of.insert(p, e.packet_id);
                }
            }
            by_packet.entry(e.packet_id).or_default().push(e.clone());
        }

        let mut packets = Vec::with_capacity(by_packet.len());
        for (id, events) in by_packet {
            let first = &events[0];
            let parent = first.parent_id;
            let truncated = !matches!(
                first.kind,
                TraceEventKind::Sent | TraceEventKind::Transformed(_)
            );
            let mut outcome = PacketOutcome::InFlight;
            for e in events.iter().rev() {
                match e.kind {
                    TraceEventKind::Dropped(r) => {
                        outcome = PacketOutcome::Dropped(e.node, r);
                        break;
                    }
                    TraceEventKind::DeliveredLocal => {
                        outcome = PacketOutcome::Delivered(e.node);
                        break;
                    }
                    _ => {}
                }
            }
            if matches!(outcome, PacketOutcome::InFlight) {
                if let Some(&c) = child_of.get(&id) {
                    outcome = PacketOutcome::Became(c);
                }
            }
            let hops = events
                .windows(2)
                .filter(|w| w[0].kind.is_wire() && w[1].node != w[0].node)
                .map(|w| Hop {
                    from: w[0].node,
                    to: w[1].node,
                    latency: w[1].at.since(w[0].at),
                })
                .collect();
            let encap_overhead = match first.kind {
                TraceEventKind::Transformed(TransformKind::Encapsulated(_)) => parent
                    .and_then(|p| trace.first_wire_len(p))
                    .map(|plen| first.packet.wire_len.saturating_sub(plen) as u64),
                _ => None,
            };
            packets.push(PacketLifecycle {
                id,
                flow: first.flow_id,
                parent,
                outcome,
                hops,
                truncated,
                encap_overhead,
                events,
            });
        }

        let mut flows: BTreeMap<FlowId, FlowSummary> = BTreeMap::new();
        let mut drop_counts: BTreeMap<FlowId, [u64; DropReason::ALL.len()]> = BTreeMap::new();
        for p in &packets {
            let first = &p.events[0];
            let f = flows.entry(p.flow).or_insert_with(|| {
                let (s, d) = first.packet.logical_endpoints();
                FlowSummary {
                    flow: p.flow,
                    src: s,
                    dst: d,
                    protocol: first.packet.logical_protocol(),
                    packets: 0,
                    wire_events: 0,
                    bytes_on_wire: 0,
                    deliveries: 0,
                    drops: Vec::new(),
                    retransmissions: 0,
                    encap_overhead_bytes: 0,
                    first_us: first.at.0,
                    last_us: first.at.0,
                }
            });
            f.packets += 1;
            f.encap_overhead_bytes += p.encap_overhead.unwrap_or(0);
            if matches!(
                first.kind,
                TraceEventKind::Transformed(TransformKind::Retransmission)
            ) {
                f.retransmissions += 1;
            }
            for e in &p.events {
                f.first_us = f.first_us.min(e.at.0);
                f.last_us = f.last_us.max(e.at.0);
                if e.kind.is_wire() {
                    f.wire_events += 1;
                    f.bytes_on_wire += e.packet.wire_len as u64;
                }
                match e.kind {
                    TraceEventKind::DeliveredLocal => f.deliveries += 1,
                    TraceEventKind::Dropped(r) => {
                        drop_counts
                            .entry(p.flow)
                            .or_insert([0; DropReason::ALL.len()])[r.index()] += 1;
                    }
                    _ => {}
                }
            }
        }
        for (flow, counts) in drop_counts {
            if let Some(f) = flows.get_mut(&flow) {
                f.drops = DropReason::ALL
                    .into_iter()
                    .filter(|r| counts[r.index()] > 0)
                    .map(|r| (r, counts[r.index()]))
                    .collect();
            }
        }

        Lifecycle {
            node_names: node_names.iter().map(|s| (*s).to_string()).collect(),
            shed_events: trace.dropped_events(),
            packets,
            flows: flows.into_values().collect(),
        }
    }

    /// The span for `id`, if retained.
    pub fn packet(&self, id: PacketId) -> Option<&PacketLifecycle> {
        self.packets
            .binary_search_by_key(&id, |p| p.id)
            .ok()
            .map(|i| &self.packets[i])
    }

    /// The rollup for `flow`, if any of its packets were retained.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowSummary> {
        self.flows
            .binary_search_by_key(&flow, |f| f.flow)
            .ok()
            .map(|i| &self.flows[i])
    }

    /// Spans that ended in a drop.
    pub fn dropped(&self) -> impl Iterator<Item = &PacketLifecycle> {
        self.packets
            .iter()
            .filter(|p| matches!(p.outcome, PacketOutcome::Dropped(..)))
    }

    /// The causal chain ending at `id`, root first. The chain follows
    /// parent links through the retained spans; if an ancestor's span was
    /// shed, its bare id still appears (as the chain's first element) but
    /// the walk cannot continue past it.
    pub fn chain(&self, id: PacketId) -> Vec<PacketId> {
        let mut rev = vec![id];
        let mut cur = id;
        while let Some(parent) = self.packet(cur).and_then(|p| p.parent) {
            if rev.contains(&parent) {
                break; // defensive: never loop on malformed input
            }
            rev.push(parent);
            cur = parent;
        }
        rev.reverse();
        rev
    }

    /// Display name for a node, falling back to `node<N>`.
    pub fn node_name(&self, n: NodeId) -> String {
        self.node_names
            .get(n.0)
            .cloned()
            .unwrap_or_else(|| format!("node{}", n.0))
    }

    fn value_with(&self, packets: &[&PacketLifecycle], omitted: Option<usize>) -> Value {
        let mut fields = vec![
            (
                "nodes".to_string(),
                Value::Array(
                    self.node_names
                        .iter()
                        .map(|n| Value::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("shed_events".into(), Value::U64(self.shed_events)),
        ];
        if let Some(n) = omitted {
            fields.push(("packets_omitted".into(), Value::U64(n as u64)));
        }
        fields.push((
            "packets".into(),
            Value::Array(packets.iter().map(|p| p.to_value()).collect()),
        ));
        fields.push(("flows".into(), self.flows.to_value()));
        Value::Object(fields)
    }

    /// A bounded rendition for run reports: every span participating in a
    /// drop chain is kept (those are what post-mortems need), the rest fill
    /// up to `cap` spans in id order, and `packets_omitted` counts the
    /// remainder. Flow rollups are always complete.
    pub fn report_value(&self, cap: usize) -> Value {
        let mut keep: BTreeSet<PacketId> = BTreeSet::new();
        for p in self.dropped().map(|p| p.id).collect::<Vec<_>>() {
            keep.extend(self.chain(p));
        }
        for p in &self.packets {
            if keep.len() >= cap {
                break;
            }
            keep.insert(p.id);
        }
        let kept: Vec<&PacketLifecycle> = self
            .packets
            .iter()
            .filter(|p| keep.contains(&p.id))
            .collect();
        let omitted = self.packets.len() - kept.len();
        self.value_with(&kept, Some(omitted))
    }

    /// Rebuild a lifecycle from its serialized form ([`Lifecycle::to_value`]
    /// or [`Lifecycle::report_value`]). Returns `None` on any shape
    /// mismatch rather than panicking.
    pub fn from_value(v: &Value) -> Option<Lifecycle> {
        let node_names = as_array(field(v, "nodes")?)?
            .iter()
            .map(|n| as_str(n).map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let shed_events = as_u64(field(v, "shed_events")?)?;
        let packets = as_array(field(v, "packets")?)?
            .iter()
            .map(parse_packet)
            .collect::<Option<Vec<_>>>()?;
        let flows = as_array(field(v, "flows")?)?
            .iter()
            .map(parse_flow)
            .collect::<Option<Vec<_>>>()?;
        Some(Lifecycle {
            node_names,
            shed_events,
            packets,
            flows,
        })
    }

    /// Export as Chrome trace-event JSON (the object form with a
    /// `traceEvents` array): load in `chrome://tracing` or Perfetto. Each
    /// node is a lane; link traversals become complete ("X") spans on the
    /// transmitting node's lane, and transforms, drops and deliveries
    /// become instant events, all over simulated time (µs).
    pub fn chrome_trace(&self) -> Value {
        fn meta(tid: u64, what: &str, name: &str) -> Value {
            Value::Object(vec![
                ("ph".to_string(), Value::Str("M".into())),
                ("pid".into(), Value::U64(0)),
                ("tid".into(), Value::U64(tid)),
                ("name".into(), Value::Str(what.into())),
                (
                    "args".into(),
                    Value::Object(vec![("name".to_string(), Value::Str(name.into()))]),
                ),
            ])
        }
        let mut events = vec![meta(0, "process_name", "netsim")];
        for (i, name) in self.node_names.iter().enumerate() {
            events.push(meta(i as u64, "thread_name", name));
        }
        for p in &self.packets {
            let label = format!("{} {}", p.id, p.flow);
            let mut args = vec![
                ("packet".to_string(), Value::Str(p.id.to_string())),
                ("flow".into(), Value::Str(p.flow.to_string())),
            ];
            if let Some(parent) = p.parent {
                args.push(("parent".into(), Value::Str(parent.to_string())));
            }
            for h in &p.hops {
                events.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(label.clone())),
                    ("cat".into(), Value::Str("hop".into())),
                    ("ph".into(), Value::Str("X".into())),
                    (
                        "ts".into(),
                        Value::U64(hop_start(p, h).unwrap_or_else(|| p.start_us())),
                    ),
                    ("dur".into(), Value::U64(h.latency.as_micros())),
                    ("pid".into(), Value::U64(0)),
                    ("tid".into(), Value::U64(h.from.0 as u64)),
                    (
                        "args".into(),
                        Value::Object(
                            args.iter()
                                .cloned()
                                .chain([("to".to_string(), Value::Str(self.node_name(h.to)))])
                                .collect(),
                        ),
                    ),
                ]));
            }
            for e in &p.events {
                let name = match e.kind {
                    TraceEventKind::Transformed(t) => format!("{} {}", p.id, t),
                    TraceEventKind::Dropped(r) => format!("{} dropped: {}", p.id, r.tag()),
                    TraceEventKind::DeliveredLocal => format!("{} delivered", p.id),
                    _ => continue,
                };
                events.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(name)),
                    ("cat".into(), Value::Str(e.kind.tag().into())),
                    ("ph".into(), Value::Str("i".into())),
                    ("s".into(), Value::Str("t".into())),
                    ("ts".into(), Value::U64(e.at.0)),
                    ("pid".into(), Value::U64(0)),
                    ("tid".into(), Value::U64(e.node.0 as u64)),
                    ("args".into(), Value::Object(args.clone())),
                ]));
            }
        }
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
    }

    /// Export as a pcapng capture: one enhanced packet block per trace
    /// event, in time order, each carrying a comment with the packet and
    /// flow ids, the event, the node, and the drop reason when there is
    /// one. Packet bytes are re-synthesized from the recorded header
    /// summary (real IPv4 headers, zeroed payload), so any pcap tool can
    /// dissect them. Returns the number of packet blocks written.
    pub fn write_pcapng<W: Write>(&self, out: W) -> io::Result<u64> {
        let mut ordered: Vec<(&PacketLifecycle, &TraceEvent)> = self
            .packets
            .iter()
            .flat_map(|p| p.events.iter().map(move |e| (p, e)))
            .collect();
        ordered.sort_by_key(|(p, e)| (e.at, p.id));
        let mut w = PcapNgWriter::new(out)?;
        for (p, e) in ordered {
            let mut comment = format!(
                "{} {} {} @ {}",
                p.id,
                p.flow,
                e.kind.tag(),
                self.node_name(e.node)
            );
            if let Some(parent) = p.parent {
                comment.push_str(&format!(" parent={parent}"));
            }
            match e.kind {
                TraceEventKind::Dropped(r) => comment.push_str(&format!(" reason={}", r.tag())),
                TraceEventKind::Transformed(t) => comment.push_str(&format!(" via={t}")),
                _ => {}
            }
            w.write_packet(e.at.0, &synthesize(&e.packet), Some(&comment))?;
        }
        let n = w.packets_written();
        w.finish()?;
        Ok(n)
    }
}

impl Serialize for Lifecycle {
    fn to_value(&self) -> Value {
        let all: Vec<&PacketLifecycle> = self.packets.iter().collect();
        self.value_with(&all, None)
    }
}

/// Start time of a hop: the wire event at `h.from` immediately preceding
/// the observation at `h.to`.
fn hop_start(p: &PacketLifecycle, h: &Hop) -> Option<u64> {
    p.events
        .windows(2)
        .find(|w| {
            w[0].kind.is_wire()
                && w[0].node == h.from
                && w[1].node == h.to
                && w[1].at.since(w[0].at) == h.latency
        })
        .map(|w| w[0].at.0)
}

/// Rebuild wire bytes approximating the recorded packet: the real header
/// fields from the summary over a zeroed payload of the recorded length.
fn synthesize(s: &PacketSummary) -> Bytes {
    let payload_len = s.wire_len.saturating_sub(20);
    let mut p = Ipv4Packet::new(
        s.src,
        s.dst,
        s.protocol,
        Bytes::from(vec![0u8; payload_len]),
    );
    p.ident = s.ident;
    p.emit()
}

// ---- Value parsing helpers (inverse of the Serialize impls) ----

fn field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_array(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Array(a) => Some(a),
        _ => None,
    }
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn as_addr(v: &Value) -> Option<Ipv4Addr> {
    as_str(v)?.parse().ok()
}

fn opt_u64(v: Option<&Value>) -> Option<Option<u64>> {
    match v {
        None | Some(Value::Null) => Some(None),
        Some(v) => Some(Some(as_u64(v)?)),
    }
}

fn parse_kind(v: &Value) -> Option<TraceEventKind> {
    Some(match as_str(field(v, "event")?)? {
        "sent" => TraceEventKind::Sent,
        "forwarded" => TraceEventKind::Forwarded,
        "delivered" => TraceEventKind::DeliveredLocal,
        "dropped" => TraceEventKind::Dropped(DropReason::from_tag(as_str(field(v, "reason")?)?)?),
        "transformed" => TraceEventKind::Transformed(TransformKind::from_tag(
            as_str(field(v, "kind")?)?,
            field(v, "format").and_then(as_str),
        )?),
        _ => return None,
    })
}

fn parse_summary(v: &Value) -> Option<PacketSummary> {
    let inner = match field(v, "inner") {
        None | Some(Value::Null) => None,
        Some(i) => Some((
            as_addr(field(i, "src")?)?,
            as_addr(field(i, "dst")?)?,
            IpProtocol::from_number(as_u64(field(i, "protocol")?)? as u8),
        )),
    };
    let sr_final = match field(v, "sr_final") {
        None | Some(Value::Null) => None,
        Some(a) => Some(as_addr(a)?),
    };
    Some(PacketSummary {
        src: as_addr(field(v, "src")?)?,
        dst: as_addr(field(v, "dst")?)?,
        protocol: IpProtocol::from_number(as_u64(field(v, "protocol")?)? as u8),
        ident: as_u64(field(v, "ident")?)? as u16,
        wire_len: as_u64(field(v, "wire_len")?)? as usize,
        inner,
        sr_final,
    })
}

fn parse_event(v: &Value) -> Option<TraceEvent> {
    Some(TraceEvent {
        at: crate::time::SimTime(as_u64(field(v, "t_us")?)?),
        node: NodeId(as_u64(field(v, "node")?)? as usize),
        kind: parse_kind(v)?,
        packet: parse_summary(field(v, "packet")?)?,
        packet_id: PacketId(as_u64(field(v, "packet_id")?)?),
        flow_id: FlowId(as_u64(field(v, "flow_id")?)?),
        parent_id: opt_u64(field(v, "parent_id"))?.map(PacketId),
    })
}

fn parse_outcome(v: &Value) -> Option<PacketOutcome> {
    Some(match as_str(field(v, "outcome")?)? {
        "delivered" => PacketOutcome::Delivered(NodeId(as_u64(field(v, "node")?)? as usize)),
        "dropped" => PacketOutcome::Dropped(
            NodeId(as_u64(field(v, "node")?)? as usize),
            DropReason::from_tag(as_str(field(v, "reason")?)?)?,
        ),
        "became" => PacketOutcome::Became(PacketId(as_u64(field(v, "child")?)?)),
        "in-flight" => PacketOutcome::InFlight,
        _ => return None,
    })
}

fn parse_hop(v: &Value) -> Option<Hop> {
    Some(Hop {
        from: NodeId(as_u64(field(v, "from")?)? as usize),
        to: NodeId(as_u64(field(v, "to")?)? as usize),
        latency: SimDuration::from_micros(as_u64(field(v, "us")?)?),
    })
}

fn parse_packet(v: &Value) -> Option<PacketLifecycle> {
    Some(PacketLifecycle {
        id: PacketId(as_u64(field(v, "id")?)?),
        flow: FlowId(as_u64(field(v, "flow")?)?),
        parent: opt_u64(field(v, "parent"))?.map(PacketId),
        truncated: as_bool(field(v, "truncated")?)?,
        encap_overhead: opt_u64(field(v, "encap_overhead"))?,
        outcome: parse_outcome(field(v, "outcome")?)?,
        hops: as_array(field(v, "hops")?)?
            .iter()
            .map(parse_hop)
            .collect::<Option<Vec<_>>>()?,
        events: as_array(field(v, "events")?)?
            .iter()
            .map(parse_event)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn parse_flow(v: &Value) -> Option<FlowSummary> {
    let drops = match field(v, "drops")? {
        Value::Object(fields) => fields
            .iter()
            .map(|(k, n)| Some((DropReason::from_tag(k)?, as_u64(n)?)))
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    Some(FlowSummary {
        flow: FlowId(as_u64(field(v, "flow")?)?),
        src: as_addr(field(v, "src")?)?,
        dst: as_addr(field(v, "dst")?)?,
        protocol: IpProtocol::from_number(as_u64(field(v, "protocol")?)? as u8),
        packets: as_u64(field(v, "packets")?)?,
        wire_events: as_u64(field(v, "wire_events")?)?,
        bytes_on_wire: as_u64(field(v, "bytes_on_wire")?)?,
        deliveries: as_u64(field(v, "deliveries")?)?,
        drops,
        retransmissions: as_u64(field(v, "retransmissions")?)?,
        encap_overhead_bytes: as_u64(field(v, "encap_overhead_bytes")?)?,
        first_us: as_u64(field(v, "first_us")?)?,
        last_us: as_u64(field(v, "last_us")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::wire::encap::{encapsulate, EncapFormat};

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt(src: &str, dst: &str) -> Ipv4Packet {
        Ipv4Packet::new(
            ip(src),
            ip(dst),
            IpProtocol::Udp,
            Bytes::from_static(b"payload"),
        )
    }

    fn names() -> Vec<&'static str> {
        vec!["mh", "r1", "server"]
    }

    /// A three-node story: mh sends, r1 forwards, server delivers; a second
    /// packet is dropped at r1.
    fn sample_trace() -> PacketTrace {
        let mut t = PacketTrace::new(true);
        let p = pkt("1.1.1.1", "2.2.2.2");
        let mut q = pkt("1.1.1.1", "2.2.2.2");
        q.ident = 77;
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        t.record(SimTime(150), NodeId(1), TraceEventKind::Forwarded, &p);
        t.record(SimTime(400), NodeId(2), TraceEventKind::DeliveredLocal, &p);
        t.record(SimTime(500), NodeId(0), TraceEventKind::Sent, &q);
        t.record(
            SimTime(650),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::SourceAddressFilter),
            &q,
        );
        t
    }

    #[test]
    fn reconstructs_spans_hops_and_outcomes() {
        let t = sample_trace();
        let lc = Lifecycle::reconstruct(&t, &names());
        assert_eq!(lc.packets.len(), 2);
        assert_eq!(lc.flows.len(), 1);

        let p0 = &lc.packets[0];
        assert_eq!(p0.outcome, PacketOutcome::Delivered(NodeId(2)));
        assert!(!p0.truncated);
        assert_eq!(
            p0.hops,
            vec![
                Hop {
                    from: NodeId(0),
                    to: NodeId(1),
                    latency: SimDuration::from_micros(150)
                },
                Hop {
                    from: NodeId(1),
                    to: NodeId(2),
                    latency: SimDuration::from_micros(250)
                },
            ]
        );

        let p1 = &lc.packets[1];
        assert_eq!(
            p1.outcome,
            PacketOutcome::Dropped(NodeId(1), DropReason::SourceAddressFilter)
        );

        let f = &lc.flows[0];
        assert_eq!((f.src, f.dst), (ip("1.1.1.1"), ip("2.2.2.2")));
        assert_eq!(f.packets, 2);
        assert_eq!(f.deliveries, 1);
        assert_eq!(f.drops, vec![(DropReason::SourceAddressFilter, 1)]);
        assert_eq!(f.wire_events, 3, "p's Sent+Forwarded and q's Sent");
        assert_eq!(f.first_us, 0);
        assert_eq!(f.last_us, 650);
    }

    #[test]
    fn transform_links_form_a_chain_with_overhead() {
        let mut t = PacketTrace::new(true);
        let inner = pkt("1.1.1.1", "2.2.2.2");
        let outer =
            encapsulate(EncapFormat::IpInIp, ip("9.9.9.9"), ip("8.8.8.8"), &inner, 5).unwrap();
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &inner);
        t.record_transform(
            SimTime(10),
            NodeId(1),
            TransformKind::Encapsulated(EncapFormat::IpInIp),
            Some(&inner),
            &outer,
        );
        t.record(SimTime(10), NodeId(1), TraceEventKind::Forwarded, &outer);
        t.record(
            SimTime(300),
            NodeId(2),
            TraceEventKind::DeliveredLocal,
            &outer,
        );

        let lc = Lifecycle::reconstruct(&t, &names());
        assert_eq!(lc.packets.len(), 2);
        let child = &lc.packets[1];
        assert_eq!(child.parent, Some(lc.packets[0].id));
        assert_eq!(child.encap_overhead, Some(20), "IP-in-IP adds one header");
        assert_eq!(
            lc.packets[0].outcome,
            PacketOutcome::Became(child.id),
            "parent's story continues under the child"
        );
        assert_eq!(lc.chain(child.id), vec![lc.packets[0].id, child.id]);
        // Same conversation throughout.
        assert_eq!(child.flow, lc.packets[0].flow);
    }

    #[test]
    fn bounded_trace_yields_truncated_spans_not_panics() {
        let mut t = PacketTrace::with_capacity(2);
        let p = pkt("1.1.1.1", "2.2.2.2");
        t.record(SimTime(0), NodeId(0), TraceEventKind::Sent, &p);
        t.record(SimTime(100), NodeId(1), TraceEventKind::Forwarded, &p);
        t.record(SimTime(200), NodeId(2), TraceEventKind::DeliveredLocal, &p);
        assert_eq!(t.dropped_events(), 1, "the Sent event was shed");

        let lc = Lifecycle::reconstruct(&t, &names());
        assert_eq!(lc.shed_events, 1);
        assert_eq!(lc.packets.len(), 1);
        let span = &lc.packets[0];
        assert!(span.truncated, "first retained event is a Forwarded");
        assert_eq!(span.outcome, PacketOutcome::Delivered(NodeId(2)));
        assert_eq!(span.hops.len(), 1, "only the retained hop is measurable");
    }

    #[test]
    fn value_round_trip_preserves_everything() {
        let t = sample_trace();
        let lc = Lifecycle::reconstruct(&t, &names());
        let back = Lifecycle::from_value(&lc.to_value()).expect("parses");
        assert_eq!(back.node_names, lc.node_names);
        assert_eq!(back.shed_events, lc.shed_events);
        assert_eq!(back.packets.len(), lc.packets.len());
        for (a, b) in lc.packets.iter().zip(&back.packets) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.flow, b.flow);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.hops, b.hops);
            assert_eq!(a.truncated, b.truncated);
            assert_eq!(a.events, b.events);
        }
        assert_eq!(back.flows.len(), lc.flows.len());
        assert_eq!(back.flows[0].drops, lc.flows[0].drops);
        assert_eq!(back.flows[0].bytes_on_wire, lc.flows[0].bytes_on_wire);
    }

    #[test]
    fn report_value_keeps_drop_chains_under_cap() {
        let mut t = PacketTrace::new(true);
        // Ten delivered packets...
        for i in 0..10u16 {
            let mut p = pkt("1.1.1.1", "2.2.2.2");
            p.ident = i;
            t.record(SimTime(u64::from(i)), NodeId(0), TraceEventKind::Sent, &p);
            t.record(
                SimTime(u64::from(i) + 100),
                NodeId(2),
                TraceEventKind::DeliveredLocal,
                &p,
            );
        }
        // ...and one dropped one, allocated last.
        let mut q = pkt("3.3.3.3", "4.4.4.4");
        q.ident = 99;
        t.record(SimTime(1000), NodeId(0), TraceEventKind::Sent, &q);
        t.record(
            SimTime(1100),
            NodeId(1),
            TraceEventKind::Dropped(DropReason::Firewall),
            &q,
        );
        let lc = Lifecycle::reconstruct(&t, &names());
        let v = lc.report_value(3);
        let back = Lifecycle::from_value(&v).unwrap();
        assert!(
            back.packets
                .iter()
                .any(|p| matches!(p.outcome, PacketOutcome::Dropped(_, DropReason::Firewall))),
            "the dropped packet survives the cap"
        );
        assert!(back.packets.len() <= 4);
        let omitted = match field(&v, "packets_omitted") {
            Some(Value::U64(n)) => *n,
            other => panic!("packets_omitted missing: {other:?}"),
        };
        assert_eq!(omitted as usize + back.packets.len(), lc.packets.len());
        assert_eq!(back.flows.len(), lc.flows.len(), "flow rollups stay whole");
    }

    #[test]
    fn chrome_trace_has_a_lane_per_node_and_spans() {
        let t = sample_trace();
        let lc = Lifecycle::reconstruct(&t, &names());
        let v = lc.chrome_trace();
        let events = as_array(field(&v, "traceEvents").unwrap()).unwrap();
        let lanes = events
            .iter()
            .filter(|e| field(e, "name").and_then(as_str) == Some("thread_name"))
            .count();
        assert_eq!(lanes, 3);
        let spans = events
            .iter()
            .filter(|e| field(e, "ph").and_then(as_str) == Some("X"))
            .count();
        assert_eq!(spans, 3, "two hops for the delivery, one for the drop");
        let drops = events
            .iter()
            .filter(|e| field(e, "cat").and_then(as_str) == Some("dropped"))
            .count();
        assert_eq!(drops, 1);
    }

    #[test]
    fn pcapng_export_writes_every_event() {
        let t = sample_trace();
        let lc = Lifecycle::reconstruct(&t, &names());
        let mut buf = Vec::new();
        let n = lc.write_pcapng(&mut buf).unwrap();
        assert_eq!(n, 5, "one packet block per trace event");
        // Section header magic at the very start…
        assert_eq!(&buf[0..4], &0x0A0D_0D0Au32.to_le_bytes());
        // …and the comments carry the causal ids.
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("reason=source-address-filter"));
        assert!(text.contains("p0 f0 sent @ mh"));
    }
}
