//! Simulated time.
//!
//! Time is measured in integer microseconds from the start of the simulation.
//! Integer ticks (rather than floating point) keep event ordering exact and
//! runs bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start, as floating point (for reporting only;
    /// never used in simulation logic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// As whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// As whole milliseconds (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// As floating-point seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scalar multiply (used for RTO backoff).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Integer division (used for RTT averaging); division by zero clamps
    /// to the identity rather than panicking.
    pub fn div_by(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_micros(), 5_000);
        assert_eq!(t.as_millis(), 5);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!((t2 - t).as_millis(), 1_000);
        assert_eq!(t2.since(t), SimDuration::from_secs(1));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime(10);
        let late = SimTime(20);
        assert_eq!((early - late).as_micros(), 0);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.saturating_mul(2), SimDuration::from_millis(200));
        assert_eq!(d.div_by(4), SimDuration::from_millis(25));
        assert_eq!(d.div_by(0), d, "division by zero clamps to identity");
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(7)), "7.000s");
    }
}
