//! Network devices: the shared NIC layer, IP routers, and host stacks.

pub mod host;
pub mod nic;
pub mod router;

use crate::event::{IfaceNo, TimerToken};

/// Timer-token namespaces. The high byte of a token says who owns it.
///
/// * `0x01..=0xFC` — the protocol handler registered for that IP protocol
///   number (e.g. TCP timers use `0x06`).
/// * [`NS_APPS`] — application wake-ups.
/// * [`NS_MOBILITY`] — the mobility hook.
/// * [`NS_HOST`] — host-internal housekeeping.
pub const NS_APPS: u8 = 0xFD;
/// Timer namespace: the mobility hook.
pub const NS_MOBILITY: u8 = 0xFE;
/// Timer namespace: host-internal housekeeping.
pub const NS_HOST: u8 = 0xFF;

/// Build a token in namespace `ns` with a 56-bit payload.
pub fn token(ns: u8, payload: u64) -> TimerToken {
    TimerToken((u64::from(ns) << 56) | (payload & 0x00ff_ffff_ffff_ffff))
}

/// Split a token into its namespace and payload.
pub fn split_token(t: TimerToken) -> (u8, u64) {
    ((t.0 >> 56) as u8, t.0 & 0x00ff_ffff_ffff_ffff)
}

/// Metadata accompanying a packet handed to the IP send path.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxMeta {
    /// §7.1.2's proposed IP-interface extension: transports mark whether the
    /// packet is an original transmission or a retransmission, so the
    /// mobility layer can detect silently-failing delivery methods.
    pub retransmission: bool,
    /// Bypass the mobility hook (used by the hook itself when re-submitting
    /// an encapsulated packet, like the paper's virtual interface).
    pub skip_override: bool,
    /// Interface for multicast/broadcast transmissions that cannot be routed.
    pub iface: Option<IfaceNo>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        let t = token(NS_MOBILITY, 0x1234_5678);
        assert_eq!(split_token(t), (NS_MOBILITY, 0x1234_5678));
        let t = token(6, u64::MAX);
        assert_eq!(split_token(t), (6, 0x00ff_ffff_ffff_ffff));
    }
}
