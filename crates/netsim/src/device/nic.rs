//! The NIC layer shared by hosts and routers: interfaces, ARP resolution
//! (RFC 826) with proxy-ARP support (RFC 1027), fragmentation to the link
//! MTU, and frame transmission.

use bytes::Bytes;

use crate::event::IfaceNo;
use crate::link::{FaultOutcome, SegmentId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEventKind};
use crate::wire::arp::{ArpOp, ArpPacket};
use crate::wire::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Cidr, Ipv4Packet};
use crate::world::NetCtx;

/// How long a learned ARP entry stays valid (one minute, as in smoltcp).
const ARP_TTL: SimDuration = SimDuration::from_secs(60);
/// Maximum packets queued awaiting one ARP resolution.
const ARP_PENDING_CAP: usize = 8;
/// Cap on learned neighbours per interface. Routers on large LANs touch
/// at most this many entries; when a new neighbour would exceed the cap,
/// expired entries are dropped first, then the least recently learned —
/// so long churn runs (handoff storms re-learning thousands of moved
/// hosts) cannot grow ARP tables unboundedly. Far above anything the
/// 48-node experiment suite learns, so small worlds never evict.
const ARP_CACHE_CAP: usize = 512;

/// Interface configuration kept unmasked: `addr` is the host address and
/// `prefix` the on-link subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceAddr {
    /// The leased address.
    pub addr: Ipv4Addr,
    /// Destination prefix this entry matches.
    pub prefix: Ipv4Cidr,
}

impl IfaceAddr {
    /// e.g. `IfaceAddr::parse("171.64.15.9/24")`
    pub fn parse(s: &str) -> IfaceAddr {
        let (a, l) = s.split_once('/').expect("addr/len");
        let addr: Ipv4Addr = a.parse().expect("ipv4 addr");
        let len: u8 = l.parse().expect("prefix len");
        IfaceAddr {
            addr,
            prefix: Ipv4Cidr::new(addr, len),
        }
    }
}

/// Who a NIC should answer ARP requests for: its own addresses plus any
/// proxied ones (the home agent answers for absent mobile hosts).
pub struct ArpIdentity<'a> {
    /// Addresses this node owns.
    pub own: &'a [Ipv4Addr],
    /// Addresses answered on behalf of others (proxy ARP).
    pub proxy: &'a [Ipv4Addr],
}

impl ArpIdentity<'_> {
    fn covers(&self, a: Ipv4Addr) -> bool {
        self.own.contains(&a) || self.proxy.contains(&a)
    }
}

/// Link-layer destination for an outgoing IP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NextHop {
    /// Resolve this IP (the final destination or a gateway) via ARP.
    Unicast(Ipv4Addr),
    /// Link broadcast.
    Broadcast,
    /// IPv4 multicast group (mapped straight to a multicast MAC).
    Multicast(Ipv4Addr),
}

/// One learned neighbour on one interface. Stored in a flat per-iface
/// vector: the tables are small (bounded by [`ARP_CACHE_CAP`]), entries
/// are `Copy`, and a linear probe over contiguous memory beats tuple
/// hashing at every size the simulator sees — and needs no per-lookup
/// hasher state or heap buckets.
#[derive(Debug, Clone, Copy)]
struct ArpEntry {
    ip: Ipv4Addr,
    mac: MacAddr,
    learned_at: SimTime,
    /// Last send that resolved through this entry. Eviction under
    /// [`ARP_CACHE_CAP`] picks the least recently *used* entry, so a
    /// neighbour the node actively forwards to (a router's next hop, a
    /// segment's home agent) survives a flood of passively learned
    /// bindings; expiry stays on `learned_at`, as ARP caches age.
    last_used: SimTime,
}

#[derive(Debug)]
struct Pending {
    iface: IfaceNo,
    next_hop: Ipv4Addr,
    pkt: Ipv4Packet,
    kind: TraceEventKind,
}

/// Interfaces + ARP machinery shared by [`super::host::Host`] and
/// [`super::router::Router`].
#[derive(Debug)]
pub struct Nic {
    ifaces: Vec<InterfaceState>,
    /// Per-interface neighbour tables, indexed by the dense iface number
    /// (no `(IfaceNo, Ipv4Addr)` tuple hashing on the hot lookup path).
    arp: Vec<Vec<ArpEntry>>,
    pending: Vec<Pending>,
}

#[derive(Debug, Clone)]
struct InterfaceState {
    mac: MacAddr,
    addr: Option<IfaceAddr>,
    segment: Option<SegmentId>,
    mtu: usize,
}

/// What the NIC made of a received frame.
#[derive(Debug)]
pub enum NicRx {
    /// Consumed (ARP traffic, or a frame not addressed to this NIC).
    Consumed,
    /// An IPv4 packet addressed (at the link layer) to this NIC.
    Ip(Ipv4Packet),
    /// An IPv4 packet that arrived but failed to parse (e.g. corrupted).
    Malformed,
}

impl Default for Nic {
    fn default() -> Self {
        Self::new()
    }
}

impl Nic {
    /// An empty NIC with no interfaces.
    pub fn new() -> Nic {
        Nic {
            ifaces: Vec::new(),
            arp: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Add an interface with the given MAC. Returns its index.
    pub fn add_iface(&mut self, mac: MacAddr) -> IfaceNo {
        self.ifaces.push(InterfaceState {
            mac,
            addr: None,
            segment: None,
            mtu: 1500,
        });
        self.arp.push(Vec::new());
        self.ifaces.len() - 1
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    /// The interface's MAC address.
    pub fn mac(&self, iface: IfaceNo) -> MacAddr {
        self.ifaces[iface].mac
    }

    /// The interface's configured address.
    pub fn addr(&self, iface: IfaceNo) -> Option<IfaceAddr> {
        self.ifaces[iface].addr
    }

    /// (Re)configure an interface's address.
    pub fn set_addr(&mut self, iface: IfaceNo, addr: Option<IfaceAddr>) {
        self.ifaces[iface].addr = addr;
    }

    /// The segment the interface is plugged into, if any.
    pub fn segment(&self, iface: IfaceNo) -> Option<SegmentId> {
        self.ifaces[iface].segment
    }

    /// Record attachment (the [`crate::world::World`] updates the segment's
    /// side of the relationship).
    pub fn set_segment(&mut self, iface: IfaceNo, seg: Option<SegmentId>, mtu: usize) {
        self.ifaces[iface].segment = seg;
        self.ifaces[iface].mtu = mtu;
        // Stale neighbours and queued packets are meaningless on a new wire.
        self.arp[iface].clear();
        self.pending.retain(|p| p.iface != iface);
    }

    /// The attached segment's MTU (IP bytes per frame).
    pub fn mtu(&self, iface: IfaceNo) -> usize {
        self.ifaces[iface].mtu
    }

    /// All configured interface addresses.
    pub fn addrs(&self) -> Vec<Ipv4Addr> {
        self.ifaces
            .iter()
            .filter_map(|i| i.addr.map(|a| a.addr))
            .collect()
    }

    /// The interface whose on-link prefix contains `dst`, if any.
    pub fn iface_on_link(&self, dst: Ipv4Addr) -> Option<IfaceNo> {
        self.ifaces
            .iter()
            .position(|i| i.addr.is_some_and(|a| a.prefix.contains(dst)))
    }

    /// Send `pkt` out of `iface` toward the link-layer `next_hop`,
    /// fragmenting to the interface MTU. Each fragment is traced with
    /// `kind` (Sent for origination, Forwarded for transit).
    pub fn send_ip(
        &mut self,
        ctx: &mut NetCtx,
        iface: IfaceNo,
        next_hop: NextHop,
        pkt: Ipv4Packet,
        kind: TraceEventKind,
    ) {
        let mtu = self.ifaces[iface].mtu;
        let Some(frags) = pkt.fragment(mtu) else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::MtuExceeded), &pkt);
            return;
        };
        for frag in frags {
            match next_hop {
                NextHop::Broadcast => {
                    self.emit(ctx, iface, MacAddr::BROADCAST, &frag, kind);
                }
                NextHop::Multicast(group) => {
                    self.emit(ctx, iface, MacAddr::for_ipv4_multicast(group), &frag, kind);
                }
                NextHop::Unicast(nh) => match self.lookup_arp(iface, nh, ctx.now) {
                    Some(mac) => self.emit(ctx, iface, mac, &frag, kind),
                    None => self.queue_pending(ctx, iface, nh, frag, kind),
                },
            }
        }
    }

    fn emit(
        &mut self,
        ctx: &mut NetCtx,
        iface: IfaceNo,
        dst_mac: MacAddr,
        pkt: &Ipv4Packet,
        kind: TraceEventKind,
    ) {
        let st = &self.ifaces[iface];
        let Some(seg) = st.segment else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoRoute), pkt);
            return;
        };
        // Serialize header and packet into a single buffer: the one
        // allocation on the whole send path (the segment, pcap writer and
        // every delivery event share it through `Bytes`).
        let mut buf = Vec::with_capacity(ETHERNET_HEADER_LEN + pkt.wire_len());
        EthernetFrame::emit_header_into(dst_mac, st.mac, EtherType::Ipv4, &mut buf);
        pkt.emit_into(&mut buf);
        let outcome = ctx.transmit_raw(seg, iface, Bytes::from(buf));
        match outcome {
            FaultOutcome::Drop => {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::LinkFault), pkt);
            }
            FaultOutcome::Corrupt => {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::Malformed), pkt);
            }
            FaultOutcome::Deliver | FaultOutcome::Duplicate => ctx.trace_packet(kind, pkt),
        }
    }

    fn lookup_arp(&mut self, iface: IfaceNo, ip: Ipv4Addr, now: SimTime) -> Option<MacAddr> {
        self.arp[iface]
            .iter_mut()
            .find(|e| e.ip == ip)
            .filter(|e| now.since(e.learned_at) <= ARP_TTL)
            .map(|e| {
                e.last_used = now;
                e.mac
            })
    }

    /// Update an existing binding without creating one — what overheard
    /// broadcast traffic is allowed to do.
    fn refresh_arp(&mut self, iface: IfaceNo, ip: Ipv4Addr, mac: MacAddr, now: SimTime) {
        if let Some(e) = self.arp[iface].iter_mut().find(|e| e.ip == ip) {
            e.mac = mac;
            e.learned_at = now;
            e.last_used = now;
        }
    }

    /// Learn (or refresh) a neighbour binding, evicting to stay within
    /// [`ARP_CACHE_CAP`]: expired entries go first, then the least
    /// recently used — deterministic, and an active next hop outlives any
    /// flood of passively learned neighbours (see [`ArpEntry::last_used`]).
    fn learn_arp(&mut self, iface: IfaceNo, ip: Ipv4Addr, mac: MacAddr, now: SimTime) {
        let table = &mut self.arp[iface];
        if let Some(e) = table.iter_mut().find(|e| e.ip == ip) {
            e.mac = mac;
            e.learned_at = now;
            e.last_used = now;
            return;
        }
        if table.len() >= ARP_CACHE_CAP {
            table.retain(|e| now.since(e.learned_at) <= ARP_TTL);
        }
        if table.len() >= ARP_CACHE_CAP {
            let oldest = table
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.last_used, e.learned_at))
                .map(|(i, _)| i)
                .expect("table at cap is non-empty");
            table.remove(oldest);
        }
        table.push(ArpEntry {
            ip,
            mac,
            learned_at: now,
            last_used: now,
        });
    }

    fn queue_pending(
        &mut self,
        ctx: &mut NetCtx,
        iface: IfaceNo,
        next_hop: Ipv4Addr,
        pkt: Ipv4Packet,
        kind: TraceEventKind,
    ) {
        // Evict the oldest waiter if this neighbour's queue is full.
        let waiting = self
            .pending
            .iter()
            .filter(|p| p.iface == iface && p.next_hop == next_hop)
            .count();
        if waiting >= ARP_PENDING_CAP {
            let ix = self
                .pending
                .iter()
                .position(|p| p.iface == iface && p.next_hop == next_hop)
                .unwrap();
            let old = self.pending.remove(ix);
            ctx.note_unparked();
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::ArpFailure), &old.pkt);
        }
        self.send_arp_request(ctx, iface, next_hop);
        ctx.note_parked();
        self.pending.push(Pending {
            iface,
            next_hop,
            pkt,
            kind,
        });
    }

    fn send_arp_request(&mut self, ctx: &mut NetCtx, iface: IfaceNo, target: Ipv4Addr) {
        let st = &self.ifaces[iface];
        let Some(seg) = st.segment else {
            return;
        };
        // An unnumbered interface (mobile host using a foreign agent, DHCP
        // client) probes with the unspecified sender address; receivers
        // answer but learn no binding from it.
        let spa = st.addr.map_or(Ipv4Addr::UNSPECIFIED, |a| a.addr);
        let arp = ArpPacket::request(st.mac, spa, target);
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            st.mac,
            EtherType::Arp,
            Bytes::from(arp.emit()),
        );
        ctx.transmit(seg, iface, &frame);
    }

    /// Broadcast a gratuitous ARP binding `ip` to this interface's MAC —
    /// used by the home agent for proxy ARP capture and by a returning
    /// mobile host to reclaim its address (RFC 1027; paper §2).
    pub fn send_gratuitous_arp(&mut self, ctx: &mut NetCtx, iface: IfaceNo, ip: Ipv4Addr) {
        let st = &self.ifaces[iface];
        let Some(seg) = st.segment else { return };
        let arp = ArpPacket::gratuitous(st.mac, ip);
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            st.mac,
            EtherType::Arp,
            Bytes::from(arp.emit()),
        );
        ctx.transmit(seg, iface, &frame);
    }

    /// Process a received frame. ARP is consumed internally (answering for
    /// every address in `identity`); IPv4 frames addressed to this NIC (or
    /// broadcast/multicast) come back as [`NicRx::Ip`].
    pub fn on_frame(
        &mut self,
        ctx: &mut NetCtx,
        iface: IfaceNo,
        frame: &[u8],
        identity: &ArpIdentity<'_>,
    ) -> NicRx {
        let Ok(eth) = EthernetFrame::parse(frame) else {
            return NicRx::Malformed;
        };
        let my_mac = self.ifaces[iface].mac;
        if eth.dst != my_mac && !eth.dst.is_broadcast() && !eth.dst.is_multicast() {
            return NicRx::Consumed; // not for us; NICs are not promiscuous
        }
        match eth.ethertype {
            EtherType::Arp => {
                match ArpPacket::parse(&eth.payload) {
                    Ok(arp) => self.on_arp(ctx, iface, arp, identity),
                    Err(_) => return NicRx::Malformed,
                }
                NicRx::Consumed
            }
            EtherType::Ipv4 => match Ipv4Packet::parse(&eth.payload) {
                Ok(p) => NicRx::Ip(p),
                Err(_) => NicRx::Malformed,
            },
            EtherType::Other(_) => NicRx::Consumed,
        }
    }

    fn on_arp(
        &mut self,
        ctx: &mut NetCtx,
        iface: IfaceNo,
        arp: ArpPacket,
        identity: &ArpIdentity<'_>,
    ) {
        // Learn / refresh the sender's binding. Gratuitous replies overwrite
        // stale entries, which is exactly how proxy-ARP capture usurps the
        // mobile host's address on the home segment. A fresh entry is
        // created only when the sender addresses *us* (it is about to talk
        // to us) or we were resolving it ourselves; broadcasts overheard on
        // a big LAN — someone else's resolution, a mover's announcement —
        // refresh what is already cached but do not populate it (RFC 826's
        // merge-then-check, as BSD implements it). Without that rule one
        // gratuitous announce costs an ARP allocation on every resident of
        // the segment.
        if !arp.spa.is_unspecified() {
            let for_us = identity.covers(arp.tpa);
            let awaited = self
                .pending
                .iter()
                .any(|p| p.iface == iface && p.next_hop == arp.spa);
            if for_us || awaited {
                self.learn_arp(iface, arp.spa, arp.sha, ctx.now);
            } else {
                self.refresh_arp(iface, arp.spa, arp.sha, ctx.now);
            }
            self.flush_pending(ctx, iface, arp.spa, arp.sha);
        }
        if arp.op == ArpOp::Request && identity.covers(arp.tpa) {
            let st = &self.ifaces[iface];
            let Some(seg) = st.segment else { return };
            let reply = ArpPacket::reply(st.mac, arp.tpa, arp.sha, arp.spa);
            let frame =
                EthernetFrame::new(arp.sha, st.mac, EtherType::Arp, Bytes::from(reply.emit()));
            ctx.transmit(seg, iface, &frame);
        }
    }

    fn flush_pending(&mut self, ctx: &mut NetCtx, iface: IfaceNo, ip: Ipv4Addr, mac: MacAddr) {
        let ready: Vec<Pending> = {
            let mut ready = Vec::new();
            let mut i = 0;
            while i < self.pending.len() {
                if self.pending[i].iface == iface && self.pending[i].next_hop == ip {
                    ready.push(self.pending.remove(i));
                } else {
                    i += 1;
                }
            }
            ready
        };
        for p in ready {
            ctx.note_unparked();
            self.emit(ctx, iface, mac, &p.pkt, p.kind);
        }
    }

    /// Forget a neighbour (tests and handoff logic).
    pub fn evict_arp(&mut self, iface: IfaceNo, ip: Ipv4Addr) {
        self.arp[iface].retain(|e| e.ip != ip);
    }

    /// Peek at the ARP cache (tests). Read-only: does not refresh the
    /// entry's LRU clock the way a real send would.
    pub fn arp_lookup(&self, iface: IfaceNo, ip: Ipv4Addr, now: SimTime) -> Option<MacAddr> {
        self.arp[iface]
            .iter()
            .find(|e| e.ip == ip)
            .filter(|e| now.since(e.learned_at) <= ARP_TTL)
            .map(|e| e.mac)
    }
}
