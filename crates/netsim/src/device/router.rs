//! IP routers: longest-prefix-match forwarding, TTL handling, ICMP error
//! generation, and — centrally for this paper — the boundary-router policies
//! of §3.1:
//!
//! * **ingress source-address filtering**: "the boundary router will see a
//!   packet coming from outside the home network, with a source address
//!   claiming that the packet originates from a machine inside" → drop;
//! * **egress source-address filtering / no-transit policy**: "network
//!   administrators enforce this policy by configuring routers to discard
//!   packets with source addresses that appear to be invalid";
//! * arbitrary **firewall** rules.
//!
//! Filters examine only the outermost IP header, which is why the paper's
//! bi-directional tunneling works: "the inner packets are protected from
//! scrutiny by routers" (§3.1).

use bytes::Bytes;

use super::nic::{ArpIdentity, NextHop, Nic, NicRx};
use crate::event::{IfaceNo, NodeId, TimerToken};
use crate::link::FaultOutcome;
use crate::route::RouteTable;
use crate::time::SimDuration;
use crate::trace::{DropReason, TraceEventKind};
use crate::wire::checksum_valid;
use crate::wire::ethernet::{EtherType, MacAddr, ETHERNET_HEADER_LEN};
use crate::wire::icmp::{IcmpMessage, UnreachableCode};
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet, IPV4_HEADER_LEN};
use crate::wire::srcroute;
use crate::world::NetCtx;

/// Whether a filter rule applies to packets entering or leaving the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterWhen {
    /// Applied where packets enter the router.
    Ingress,
    /// Applied where packets leave the router.
    Egress,
}

/// What a matching filter rule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Let the packet through (stops rule evaluation).
    Permit,
    /// Drop the packet, attributing the given reason.
    Deny(DropReason),
}

/// One packet-filter rule. All present conditions must hold for the rule to
/// match; the first matching rule's action applies; the default is permit.
#[derive(Debug, Clone)]
pub struct FilterRule {
    /// Ingress or egress.
    pub when: FilterWhen,
    /// Restrict to one interface (the arrival interface for ingress rules,
    /// the departure interface for egress rules).
    pub iface: Option<IfaceNo>,
    /// Match if the source address IS in this prefix.
    pub src_in: Option<Ipv4Cidr>,
    /// Match if the source address is NOT in this prefix.
    pub src_not_in: Option<Ipv4Cidr>,
    /// Match if the destination address IS in this prefix.
    pub dst_in: Option<Ipv4Cidr>,
    /// Match if the destination address is NOT in this prefix.
    pub dst_not_in: Option<Ipv4Cidr>,
    /// Match only this IP protocol (applies to the *outer* header).
    pub protocol: Option<IpProtocol>,
    /// What to do on match.
    pub action: FilterAction,
}

impl FilterRule {
    fn blank(when: FilterWhen, action: FilterAction) -> FilterRule {
        FilterRule {
            when,
            iface: None,
            src_in: None,
            src_not_in: None,
            dst_in: None,
            dst_not_in: None,
            protocol: None,
            action,
        }
    }

    /// The Figure 2 rule: packets arriving on `outside_iface` (from the rest
    /// of the Internet) whose source claims to be inside `inside` are
    /// spoofed — drop them. This is what breaks Out-DH toward the home
    /// network.
    pub fn ingress_source_filter(outside_iface: IfaceNo, inside: Ipv4Cidr) -> FilterRule {
        FilterRule {
            iface: Some(outside_iface),
            src_in: Some(inside),
            ..FilterRule::blank(
                FilterWhen::Ingress,
                FilterAction::Deny(DropReason::SourceAddressFilter),
            )
        }
    }

    /// The visited-network rule: packets leaving toward `outside_iface`
    /// whose source is not one of ours "indicate some inappropriate use of
    /// the network" (§3.1) — drop them. This is what breaks Out-DH *from* a
    /// filtered visited network.
    pub fn egress_source_filter(outside_iface: IfaceNo, inside: Ipv4Cidr) -> FilterRule {
        FilterRule {
            iface: Some(outside_iface),
            src_not_in: Some(inside),
            ..FilterRule::blank(
                FilterWhen::Egress,
                FilterAction::Deny(DropReason::SourceAddressFilter),
            )
        }
    }

    /// End-user networks forbid transit traffic: packets arriving from
    /// outside that are not destined inside are transit — drop them.
    pub fn no_transit(outside_iface: IfaceNo, inside: Ipv4Cidr) -> FilterRule {
        FilterRule {
            iface: Some(outside_iface),
            dst_not_in: Some(inside),
            ..FilterRule::blank(
                FilterWhen::Ingress,
                FilterAction::Deny(DropReason::TransitPolicy),
            )
        }
    }

    /// A firewall rule denying traffic from `src` to `dst` (either may be
    /// `None` = any).
    pub fn firewall_deny(src: Option<Ipv4Cidr>, dst: Option<Ipv4Cidr>) -> FilterRule {
        FilterRule {
            src_in: src,
            dst_in: dst,
            ..FilterRule::blank(
                FilterWhen::Ingress,
                FilterAction::Deny(DropReason::Firewall),
            )
        }
    }

    /// An explicit permit (placed before deny rules to punch holes, e.g.
    /// letting tunnel packets through to the home agent on a firewall).
    pub fn permit(
        when: FilterWhen,
        src: Option<Ipv4Cidr>,
        dst: Option<Ipv4Cidr>,
        protocol: Option<IpProtocol>,
    ) -> FilterRule {
        FilterRule {
            src_in: src,
            dst_in: dst,
            protocol,
            ..FilterRule::blank(when, FilterAction::Permit)
        }
    }

    fn matches(&self, when: FilterWhen, iface: IfaceNo, pkt: &Ipv4Packet) -> bool {
        self.when == when
            && self.iface.is_none_or(|i| i == iface)
            && self.src_in.is_none_or(|p| p.contains(pkt.src))
            && self.src_not_in.is_none_or(|p| !p.contains(pkt.src))
            && self.dst_in.is_none_or(|p| p.contains(pkt.dst))
            && self.dst_not_in.is_none_or(|p| !p.contains(pkt.dst))
            && self.protocol.is_none_or(|pr| pr == pkt.protocol)
    }
}

/// Evaluate a rule chain; `None` means permitted.
pub fn evaluate_filters(
    rules: &[FilterRule],
    when: FilterWhen,
    iface: IfaceNo,
    pkt: &Ipv4Packet,
) -> Option<DropReason> {
    for r in rules {
        if r.matches(when, iface, pkt) {
            return match r.action {
                FilterAction::Permit => None,
                FilterAction::Deny(reason) => Some(reason),
            };
        }
    }
    None
}

/// A routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Destination prefix this entry matches.
    pub prefix: Ipv4Cidr,
    /// Outgoing interface.
    pub iface: IfaceNo,
    /// Next-hop router address; `None` means the destination is on-link.
    pub gateway: Option<Ipv4Addr>,
}

/// Longest-prefix-match over a route list. When the same prefix appears
/// twice, the latest entry wins. This linear scan is the reference
/// semantics; the forwarding hot path uses [`RouteTable`](crate::route::RouteTable),
/// which matches it exactly.
pub fn lpm(routes: &[RouteEntry], dst: Ipv4Addr) -> Option<RouteEntry> {
    routes
        .iter()
        .filter(|r| r.prefix.contains(dst))
        .max_by_key(|r| r.prefix.prefix_len())
        .copied()
}

/// Patch an Ethernet + plain-IPv4 frame in place for one forwarding hop:
/// rewrite both MACs, decrement the TTL, and update the IPv4 header
/// checksum incrementally (RFC 1624) instead of recomputing it over the
/// header. Produces bytes identical to a full parse → decrement → re-emit
/// of the same frame.
///
/// The caller must have validated the frame: Ethernet + 20-byte option-free
/// IPv4 header with a correct checksum, TTL ≥ 2.
pub fn patch_forwarded_frame(buf: &mut [u8], dst_mac: MacAddr, src_mac: MacAddr) {
    buf[0..6].copy_from_slice(&dst_mac.0);
    buf[6..12].copy_from_slice(&src_mac.0);
    buf[ETHERNET_HEADER_LEN + 8] -= 1; // TTL is the high byte of word 4
                                       // RFC 1624: HC' = ~(~HC + ~m + m'). The changed word m is ttl<<8|proto
                                       // and m' = m - 0x0100, so ~m + m' is the constant 0xfeff. One fold
                                       // suffices (the sum is < 0x20000).
    let ck = ETHERNET_HEADER_LEN + 10;
    let hc = u16::from_be_bytes([buf[ck], buf[ck + 1]]);
    let sum = u32::from(!hc) + 0xfeff;
    let hc = !(((sum & 0xffff) + (sum >> 16)) as u16);
    buf[ck..ck + 2].copy_from_slice(&hc.to_be_bytes());
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Fully-qualified name, lower-case, dot-separated.
    pub name: String,
    /// Generate ICMP errors (time exceeded, unreachable, frag needed).
    pub icmp_errors: bool,
    /// Extra processing delay for any packet carrying IP options — the §4
    /// observation that "current IP routers typically handle packets with
    /// options much more slowly than they handle normal unadorned IP
    /// packets", modelled as a slow-path detour through the router CPU.
    pub option_delay: SimDuration,
}

impl RouterConfig {
    /// A router config with defaults (ICMP errors on, 500 µs option delay).
    pub fn named(name: &str) -> RouterConfig {
        RouterConfig {
            name: name.to_string(),
            icmp_errors: true,
            option_delay: SimDuration::from_micros(500),
        }
    }

    /// Set the options slow-path delay (0 disables it).
    pub fn with_option_delay(mut self, d: SimDuration) -> RouterConfig {
        self.option_delay = d;
        self
    }
}

/// An IP router.
#[derive(Debug)]
pub struct Router {
    /// Fully-qualified name, lower-case, dot-separated.
    pub name: String,
    id: NodeId,
    pub(crate) nic: Nic,
    routes: RouteTable,
    /// The §3.1 packet-filter chain (first match wins).
    pub filters: Vec<FilterRule>,
    icmp_errors: bool,
    option_delay: SimDuration,
    /// Packets parked on the options slow path. A slab indexed by timer
    /// token: every parked packet's timer fires exactly once, so a slot
    /// freed at fire time can be reused by the next parked packet — a
    /// miss storm of option packets recycles the same few slots instead
    /// of re-hashing and re-allocating map storage per packet.
    slow_path: Vec<Option<(IfaceNo, Ipv4Packet)>>,
    /// Free slots in `slow_path`, reused LIFO.
    slow_free: Vec<u32>,
    ident: u16,
    /// Packets that took the options slow path (observability).
    pub slow_path_packets: u64,
    /// Whether eligible packets may be forwarded in place on the existing
    /// wire buffer (TTL decrement + incremental checksum) instead of the
    /// full parse → mutate → re-emit pipeline. On by default; tests flip
    /// it off to compare the two paths.
    fast_forward: bool,
    /// Packets forwarded via the in-place fast path (observability).
    pub fast_path_forwards: u64,
}

impl Router {
    /// A router with no interfaces or routes yet.
    pub fn new(id: NodeId, config: RouterConfig) -> Router {
        Router {
            name: config.name,
            id,
            nic: Nic::new(),
            routes: RouteTable::new(),
            filters: Vec::new(),
            icmp_errors: config.icmp_errors,
            option_delay: config.option_delay,
            slow_path: Vec::new(),
            slow_free: Vec::new(),
            ident: 1,
            slow_path_packets: 0,
            fast_forward: true,
            fast_path_forwards: 0,
        }
    }

    /// Enable or disable the in-place forwarding fast path (default on).
    /// Disabling forces every packet through the reference slow path —
    /// the equivalence property tests compare the two.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// This node's id in the world.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Create an interface with the given MAC; returns its index.
    pub fn add_iface(&mut self, mac: MacAddr) -> IfaceNo {
        self.nic.add_iface(mac)
    }

    /// The interface/ARP layer.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Mutable access to the interface/ARP layer.
    pub fn nic_mut(&mut self) -> &mut Nic {
        &mut self.nic
    }

    /// Append a route; `gateway: None` means the prefix is on-link.
    pub fn add_route(&mut self, prefix: Ipv4Cidr, iface: IfaceNo, gateway: Option<Ipv4Addr>) {
        self.routes.add(RouteEntry {
            prefix,
            iface,
            gateway,
        });
    }

    /// Drop every route (before reconfiguration).
    pub fn clear_routes(&mut self) {
        self.routes.clear();
    }

    /// The current routing table.
    pub fn routes(&self) -> &[RouteEntry] {
        self.routes.entries()
    }

    /// Drop memoized route lookups (the table is unchanged but the world
    /// around it moved — an interface was attached or detached).
    pub(crate) fn invalidate_route_cache(&self) {
        self.routes.invalidate_cache();
    }

    pub(crate) fn on_frame(&mut self, ctx: &mut NetCtx, iface: IfaceNo, frame: &Bytes) {
        let _prof = crate::profile::scope("router/forward");
        if self.try_fast_forward(ctx, iface, frame) {
            return;
        }
        let own = self.nic.addrs();
        let identity = ArpIdentity {
            own: &own,
            proxy: &[],
        };
        let pkt = match self.nic.on_frame(ctx, iface, frame, &identity) {
            NicRx::Ip(p) => p,
            NicRx::Malformed | NicRx::Consumed => return,
        };

        // Ingress policy.
        if let Some(reason) = evaluate_filters(&self.filters, FilterWhen::Ingress, iface, &pkt) {
            ctx.trace_packet(TraceEventKind::Dropped(reason), &pkt);
            return;
        }

        // Packets with IP options take the slow path (§4): park them and
        // resume after the per-router option-processing delay.
        if !pkt.options.is_empty() && self.option_delay > SimDuration::ZERO {
            let token = match self.slow_free.pop() {
                Some(slot) => {
                    self.slow_path[slot as usize] = Some((iface, pkt));
                    u64::from(slot)
                }
                None => {
                    self.slow_path.push(Some((iface, pkt)));
                    (self.slow_path.len() - 1) as u64
                }
            };
            self.slow_path_packets += 1;
            ctx.set_timer(self.option_delay, TimerToken(token));
            return;
        }

        self.continue_after_ingress(ctx, iface, pkt);
    }

    /// The in-place forwarding fast path: when a frame is a plain unicast
    /// IPv4 packet this router merely relays — no options, no filters, no
    /// local delivery, no fragmentation, next hop already resolved — the
    /// router copies the validated wire bytes once, rewrites the MACs,
    /// decrements the TTL and patches the checksum incrementally
    /// ([`patch_forwarded_frame`]), skipping the parse → mutate → re-emit
    /// pipeline entirely. Returns `false` (frame untouched, no events
    /// recorded) whenever any precondition fails, so the slow path remains
    /// the single place transforms and errors are handled; the property
    /// tests assert both paths yield byte-identical wire frames and
    /// identical traces.
    fn try_fast_forward(&mut self, ctx: &mut NetCtx, iface: IfaceNo, frame: &Bytes) -> bool {
        const MIN_FRAME: usize = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
        if !self.fast_forward || !self.filters.is_empty() || frame.len() < MIN_FRAME {
            return false;
        }
        let b = frame.as_slice();
        // Exactly our unicast MAC: broadcast/multicast and ARP stay slow.
        if b[0..6] != self.nic.mac(iface).0
            || u16::from_be_bytes([b[12], b[13]]) != EtherType::Ipv4.number()
        {
            return false;
        }
        let ip = &b[ETHERNET_HEADER_LEN..];
        // Plain IPv4, 20-byte header: packets with options take the §4
        // options slow path (and may carry source routes).
        if ip[0] != 0x45 || !checksum_valid(&ip[..IPV4_HEADER_LEN], 0) {
            return false;
        }
        let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
        if total_len < IPV4_HEADER_LEN || ip.len() < total_len {
            return false;
        }
        let ttl = ip[8];
        if ttl <= 1 {
            return false; // TTL expiry reporting lives on the slow path
        }
        let dst = Ipv4Addr::from_octets([ip[16], ip[17], ip[18], ip[19]]);
        // Addressed to the router itself → local delivery, slow path.
        for i in 0..self.nic.iface_count() {
            if self.nic.addr(i).is_some_and(|a| a.addr == dst) {
                return false;
            }
        }
        let Some(route) = self.routes.lookup(dst) else {
            return false; // no-route ICMP is slow-path work
        };
        let Some(seg) = self.nic.segment(route.iface) else {
            return false;
        };
        if total_len > self.nic.mtu(route.iface) {
            return false; // would fragment (or need ICMP frag-needed)
        }
        let next_hop = route.gateway.unwrap_or(dst);
        let Some(dst_mac) = self.nic.arp_lookup(route.iface, next_hop, ctx.now) else {
            return false; // ARP resolution queues on the slow path
        };

        // Eligible: one copy of the validated region (receivers share the
        // inbound buffer, so the patch needs its own), then patch in place.
        // Trailing link padding is truncated, exactly as a re-emit would.
        let mut out = b[..ETHERNET_HEADER_LEN + total_len].to_vec();
        patch_forwarded_frame(&mut out, dst_mac, self.nic.mac(route.iface));
        let outcome = ctx.transmit_raw(seg, route.iface, Bytes::from(out));
        self.fast_path_forwards += 1;

        // Trace exactly what the slow path would have: the forwarded packet
        // with decremented TTL, payload sliced zero-copy from the frame.
        let flags_frag = u16::from_be_bytes([ip[6], ip[7]]);
        let pkt = Ipv4Packet {
            tos: ip[1],
            ident: u16::from_be_bytes([ip[4], ip[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl: ttl - 1,
            protocol: IpProtocol::from_number(ip[9]),
            src: Ipv4Addr::from_octets([ip[12], ip[13], ip[14], ip[15]]),
            dst,
            options: Bytes::new(),
            payload: frame.slice(MIN_FRAME..ETHERNET_HEADER_LEN + total_len),
        };
        match outcome {
            FaultOutcome::Drop => {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::LinkFault), &pkt);
            }
            FaultOutcome::Corrupt => {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::Malformed), &pkt);
            }
            FaultOutcome::Deliver | FaultOutcome::Duplicate => {
                ctx.trace_packet(TraceEventKind::Forwarded, &pkt);
            }
        }
        true
    }

    fn continue_after_ingress(&mut self, ctx: &mut NetCtx, iface: IfaceNo, mut pkt: Ipv4Packet) {
        let own = self.nic.addrs();
        // Addressed to the router itself?
        if own.contains(&pkt.dst) {
            // A loose source route with remaining hops means we are a
            // waypoint, not the destination: rewrite and keep forwarding.
            let here = pkt.dst;
            if srcroute::process_at_hop(&mut pkt, here) {
                self.forward(ctx, iface, pkt);
                return;
            }
            self.deliver_local(ctx, iface, pkt);
            return;
        }

        self.forward(ctx, iface, pkt);
    }

    fn deliver_local(&mut self, ctx: &mut NetCtx, _iface: IfaceNo, pkt: Ipv4Packet) {
        // Routers answer pings; everything else has no listener.
        if pkt.protocol == IpProtocol::Icmp {
            if let Ok(IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            }) = IcmpMessage::parse(&pkt.payload)
            {
                ctx.trace_packet(TraceEventKind::DeliveredLocal, &pkt);
                let reply = IcmpMessage::EchoReply {
                    ident,
                    seq,
                    payload,
                };
                let out = Ipv4Packet::new(
                    pkt.dst,
                    pkt.src,
                    IpProtocol::Icmp,
                    Bytes::from(reply.emit()),
                );
                self.originate(ctx, out);
                return;
            }
        }
        ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoListener), &pkt);
    }

    fn forward(&mut self, ctx: &mut NetCtx, _in_iface: IfaceNo, mut pkt: Ipv4Packet) {
        // TTL.
        if pkt.ttl <= 1 {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::TtlExpired), &pkt);
            self.icmp_error(ctx, &pkt, IcmpErr::TimeExceeded);
            return;
        }
        pkt.ttl -= 1;

        // Route lookup.
        let Some(route) = self.routes.lookup(pkt.dst) else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoRoute), &pkt);
            self.icmp_error(ctx, &pkt, IcmpErr::Unreachable(UnreachableCode::Net));
            return;
        };

        // Egress policy.
        if let Some(reason) = evaluate_filters(&self.filters, FilterWhen::Egress, route.iface, &pkt)
        {
            ctx.trace_packet(TraceEventKind::Dropped(reason), &pkt);
            return;
        }

        // Path-MTU check for DF packets so we can report the next-hop MTU.
        let mtu = self.nic.mtu(route.iface);
        if pkt.dont_fragment && pkt.wire_len() > mtu {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::MtuExceeded), &pkt);
            self.icmp_error(
                ctx,
                &pkt,
                IcmpErr::Unreachable(UnreachableCode::FragmentationNeeded { mtu: mtu as u16 }),
            );
            return;
        }

        let next_hop = NextHop::Unicast(route.gateway.unwrap_or(pkt.dst));
        self.nic
            .send_ip(ctx, route.iface, next_hop, pkt, TraceEventKind::Forwarded);
    }

    /// Send a packet originated by the router itself (ICMP errors, echo
    /// replies). Self-originated traffic skips the filters.
    fn originate(&mut self, ctx: &mut NetCtx, pkt: Ipv4Packet) {
        let Some(route) = self.routes.lookup(pkt.dst) else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoRoute), &pkt);
            return;
        };
        let next_hop = NextHop::Unicast(route.gateway.unwrap_or(pkt.dst));
        self.nic
            .send_ip(ctx, route.iface, next_hop, pkt, TraceEventKind::Sent);
    }

    fn icmp_error(&mut self, ctx: &mut NetCtx, offending: &Ipv4Packet, err: IcmpErr) {
        if !self.icmp_errors {
            return;
        }
        // Never generate errors about ICMP (avoids error loops; a fuller
        // implementation would allow errors about echo).
        if offending.protocol == IpProtocol::Icmp {
            return;
        }
        let Some(src) = self.nic.addrs().first().copied() else {
            return;
        };
        let wire = offending.emit();
        let quote = wire.slice(..wire.len().min(28));
        let msg = match err {
            IcmpErr::TimeExceeded => IcmpMessage::TimeExceeded { original: quote },
            IcmpErr::Unreachable(code) => IcmpMessage::DestUnreachable {
                code,
                original: quote,
            },
        };
        let mut out = Ipv4Packet::new(
            src,
            offending.src,
            IpProtocol::Icmp,
            Bytes::from(msg.emit()),
        );
        out.ident = self.ident;
        self.ident = self.ident.wrapping_add(1);
        self.originate(ctx, out);
    }

    pub(crate) fn on_timer(&mut self, ctx: &mut NetCtx, token: TimerToken) {
        // The only router timers are options-slow-path resumptions.
        let slot = token.0 as usize;
        if let Some(parked) = self.slow_path.get_mut(slot) {
            if let Some((iface, pkt)) = parked.take() {
                self.slow_free.push(slot as u32);
                self.continue_after_ingress(ctx, iface, pkt);
            }
        }
    }
}

enum IcmpErr {
    TimeExceeded,
    Unreachable(UnreachableCode),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }
    fn pkt(src: &str, dst: &str) -> Ipv4Packet {
        Ipv4Packet::new(ip(src), ip(dst), IpProtocol::Udp, Bytes::from_static(b"x"))
    }

    // iface 0 = outside (Internet), iface 1 = inside (home net 171.64/16).

    #[test]
    fn ingress_source_filter_drops_spoofed_home_sources() {
        let rules = [FilterRule::ingress_source_filter(0, cidr("171.64.0.0/16"))];
        // Figure 2: MH away from home sends Out-DH with home source address;
        // the packet arrives at the home boundary from outside.
        let spoofish = pkt("171.64.15.9", "171.64.7.7");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &spoofish),
            Some(DropReason::SourceAddressFilter)
        );
        // Legitimate outside traffic passes.
        let normal = pkt("18.26.0.1", "171.64.7.7");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &normal),
            None
        );
        // The same source arriving on the *inside* interface is fine.
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 1, &spoofish),
            None
        );
    }

    #[test]
    fn egress_source_filter_drops_foreign_sources_leaving() {
        let rules = [FilterRule::egress_source_filter(0, cidr("36.186.0.0/16"))];
        // MH visiting 36.186/16 tries Out-DH with its home (171.64) source.
        let foreign_src = pkt("171.64.15.9", "18.26.0.1");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Egress, 0, &foreign_src),
            Some(DropReason::SourceAddressFilter)
        );
        // Packets sourced from the visited network's own space pass —
        // including tunnel packets whose *outer* source is the care-of addr.
        let coa_src = pkt("36.186.0.99", "171.64.15.1");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Egress, 0, &coa_src),
            None
        );
    }

    #[test]
    fn transit_policy_drops_pass_through_traffic() {
        let rules = [FilterRule::no_transit(0, cidr("36.186.0.0/16"))];
        let transit = pkt("18.26.0.1", "128.2.0.1");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &transit),
            Some(DropReason::TransitPolicy)
        );
        let inbound = pkt("18.26.0.1", "36.186.0.99");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &inbound),
            None
        );
    }

    #[test]
    fn permit_rules_punch_holes_in_firewalls() {
        // Firewall home agent scenario (§3.1): permit tunnels to the HA,
        // deny everything else inbound.
        let ha = cidr("171.64.15.1/32");
        let rules = [
            FilterRule::permit(
                FilterWhen::Ingress,
                None,
                Some(ha),
                Some(IpProtocol::IpInIp),
            ),
            FilterRule::firewall_deny(None, Some(cidr("171.64.0.0/16"))),
        ];
        let tunnel = Ipv4Packet::new(
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            IpProtocol::IpInIp,
            Bytes::from_static(b"inner"),
        );
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &tunnel),
            None
        );
        let other = pkt("36.186.0.99", "171.64.7.7");
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &other),
            Some(DropReason::Firewall)
        );
    }

    #[test]
    fn filter_protocol_condition() {
        let mut r = FilterRule::blank(
            FilterWhen::Ingress,
            FilterAction::Deny(DropReason::Firewall),
        );
        r.protocol = Some(IpProtocol::Tcp);
        let rules = [r];
        let udp = pkt("1.1.1.1", "2.2.2.2");
        assert_eq!(evaluate_filters(&rules, FilterWhen::Ingress, 0, &udp), None);
        let tcp = Ipv4Packet::new(ip("1.1.1.1"), ip("2.2.2.2"), IpProtocol::Tcp, Bytes::new());
        assert_eq!(
            evaluate_filters(&rules, FilterWhen::Ingress, 0, &tcp),
            Some(DropReason::Firewall)
        );
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let routes = [
            RouteEntry {
                prefix: cidr("0.0.0.0/0"),
                iface: 0,
                gateway: Some(ip("10.0.0.1")),
            },
            RouteEntry {
                prefix: cidr("171.64.0.0/16"),
                iface: 1,
                gateway: None,
            },
            RouteEntry {
                prefix: cidr("171.64.15.0/24"),
                iface: 2,
                gateway: None,
            },
        ];
        assert_eq!(lpm(&routes, ip("171.64.15.9")).unwrap().iface, 2);
        assert_eq!(lpm(&routes, ip("171.64.7.7")).unwrap().iface, 1);
        assert_eq!(lpm(&routes, ip("18.26.0.1")).unwrap().iface, 0);
        assert_eq!(lpm(&[], ip("18.26.0.1")), None);
    }
}
