//! Host network stacks.
//!
//! A [`Host`] is an end system: interfaces + ARP (via [`super::nic::Nic`]),
//! an IPv4 layer with fragmentation/reassembly and multicast membership, a
//! registry of transport protocol handlers, in-simulation applications, and
//! — the paper's central implementation idea — a pluggable **mobility hook**
//! consulted *before* the normal route table for every locally-originated
//! packet:
//!
//! > "We override the IP route lookup routine and replace it with a routine
//! > that consults a mobility policy table before the usual route table. …
//! > Overriding the IP route lookup routine (instead of modifying the IP
//! > send packet routine) allows us to capture all of these crucial decision
//! > points automatically." (§7)
//!
//! The hook ([`MobilityHook`]) also sees every incoming packet after
//! decapsulation (with the recorded tunnel layers), chooses source addresses
//! for new transport endpoints, and receives the §7.1.2 original-vs-
//! retransmission feedback signal from transports. The `mip-core` crate
//! implements this trait for mobile hosts, home agents, and mobile-aware
//! correspondent hosts; a `Host` without a hook is a conventional Internet
//! host.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use super::nic::{ArpIdentity, IfaceAddr, NextHop, Nic, NicRx};
use super::router::RouteEntry;
use super::{split_token, token, TxMeta, NS_APPS, NS_MOBILITY};
use crate::event::{IfaceNo, NodeId, TimerHandle, TimerToken};
use crate::route::RouteTable;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEventKind, TransformKind};
use crate::wire::encap::{self, EncapFormat};
use crate::wire::ethernet::MacAddr;
use crate::wire::icmp::IcmpMessage;
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet, Reassembler};
use crate::world::NetCtx;

/// One decapsulation performed on an incoming packet, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncapLayer {
    /// Source of the removed outer header.
    pub outer_src: Ipv4Addr,
    /// Destination of the removed outer header.
    pub outer_dst: Ipv4Addr,
    /// Which tunnel format the layer used.
    pub format: EncapFormat,
}

/// What the mobility hook decided for an outgoing packet.
#[derive(Debug)]
pub enum RouteDecision {
    /// Continue with normal route-table lookup of this (possibly rewritten
    /// or encapsulated) packet — the paper's virtual interface "resubmits it
    /// to IP".
    Continue(Ipv4Packet),
    /// Deliver directly on `iface` in a single link-layer hop, resolving
    /// `next_hop` by ARP. Used for same-segment delivery (In-DH/Out-DH on
    /// one wire), where "the IP packet need not pass through any Internet
    /// routers at all" (§5).
    OnLink {
        /// Interface to deliver on.
        iface: IfaceNo,
        /// The IP address to resolve by ARP on that interface.
        next_hop: Ipv4Addr,
        /// The packet to deliver.
        pkt: Ipv4Packet,
    },
    /// The hook consumed the packet (sent it itself, or dropped it).
    Consumed,
}

/// The §7.1.2 transmission-feedback signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackEvent {
    /// The correspondent this feedback concerns (the logical peer address).
    pub peer: Ipv4Addr,
    /// Original transmission (`false`) or retransmission (`true`).
    pub retransmission: bool,
    /// `true` if we sent the packet, `false` if we received it. Repeated
    /// retransmissions *to* a peer suggest our packets are not arriving;
    /// repeated retransmissions *from* a peer suggest our acknowledgements
    /// are not arriving (§7.1.2).
    pub outgoing: bool,
}

/// The mobility layer a `Host` may carry. All methods default to the
/// behaviour of a conventional, mobility-unaware host.
#[allow(unused_variables)]
pub trait MobilityHook: Any + Send {
    /// Consulted before the normal route table for every locally-originated
    /// packet (unless the sender set [`TxMeta::skip_override`]).
    fn route_outgoing(
        &mut self,
        pkt: Ipv4Packet,
        meta: TxMeta,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> RouteDecision {
        RouteDecision::Continue(pkt)
    }

    /// Choose the source address a transport should bind for a new
    /// conversation to `dst` (`dst_port` when known — the §7.1.1 port
    /// heuristics key off it). `bound` is the address the application
    /// explicitly bound, if any (the §7.1.1 mobile-awareness signal).
    /// `None` falls back to normal interface-address selection.
    fn select_source(
        &mut self,
        dst: Ipv4Addr,
        dst_port: Option<u16>,
        bound: Option<Ipv4Addr>,
        host: &Host,
    ) -> Option<Ipv4Addr> {
        None
    }

    /// Observe a packet about to be delivered locally (or intercepted), with
    /// the tunnel layers that were removed. Return `Some` to continue
    /// delivery (possibly rewritten), `None` to consume it.
    fn incoming(
        &mut self,
        pkt: Ipv4Packet,
        layers: &[EncapLayer],
        iface: IfaceNo,
        host: &mut Host,
        ctx: &mut NetCtx,
    ) -> Option<Ipv4Packet> {
        Some(pkt)
    }

    /// A timer in the [`NS_MOBILITY`] namespace fired.
    fn on_timer(&mut self, payload: u64, host: &mut Host, ctx: &mut NetCtx) {}

    /// Transmission feedback from transports (§7.1.2).
    fn feedback(&mut self, event: FeedbackEvent, now: SimTime) {}

    /// Downcast support (see `Host::hook_as`/`handler_as`/`app_as`).
    fn as_any(&mut self) -> &mut dyn Any;
}

/// A transport-layer protocol handler (UDP, TCP, …) registered with a host.
#[allow(unused_variables)]
pub trait ProtocolHandler: Any + Send {
    /// The packet's destination was local and its protocol matched.
    fn on_packet(&mut self, pkt: &Ipv4Packet, iface: IfaceNo, host: &mut Host, ctx: &mut NetCtx);

    /// A timer in this protocol's namespace fired.
    fn on_timer(&mut self, payload: u64, host: &mut Host, ctx: &mut NetCtx) {}

    /// Downcast support (see `Host::hook_as`/`handler_as`/`app_as`).
    fn as_any(&mut self) -> &mut dyn Any;
}

/// An in-simulation application, polled after every event its host handles.
#[allow(unused_variables)]
pub trait App: Any + Send {
    /// Called after every event the host handles; do work, schedule wake-ups.
    fn poll(&mut self, host: &mut Host, ctx: &mut NetCtx);
    /// Downcast support (see `Host::hook_as`/`handler_as`/`app_as`).
    fn as_any(&mut self) -> &mut dyn Any;
}

/// Host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Fully-qualified name, lower-case, dot-separated.
    pub name: String,
    /// Can this stack decapsulate tunnel packets addressed to it? The paper:
    /// "Some operating systems, such as recent versions of Linux, have this
    /// capability built-in" (§6.1). Conventional correspondents have it off.
    pub decap_capable: bool,
    /// After decapsulating a packet whose inner destination is not local,
    /// send it onward (tunnel-endpoint behaviour; home agents need this).
    pub forward_decapsulated: bool,
    /// Answer ICMP echo requests.
    pub icmp_echo_reply: bool,
    /// Process loose source routes addressed to this host (RFC 791 hop
    /// behaviour). Off by default, as on security-conscious modern stacks;
    /// experiment E17 turns it on for the home agent to measure §4's
    /// LSR-vs-encapsulation comparison.
    pub forward_source_routes: bool,
}

impl HostConfig {
    /// A conventional, mobility-unaware Internet host.
    pub fn conventional(name: &str) -> HostConfig {
        HostConfig {
            name: name.to_string(),
            decap_capable: false,
            forward_decapsulated: false,
            icmp_echo_reply: true,
            forward_source_routes: false,
        }
    }

    /// A host with tunnel decapsulation enabled.
    pub fn decap_capable(name: &str) -> HostConfig {
        HostConfig {
            decap_capable: true,
            ..HostConfig::conventional(name)
        }
    }

    /// A tunnel endpoint that also forwards inner packets (home agent).
    pub fn agent(name: &str) -> HostConfig {
        HostConfig {
            decap_capable: true,
            forward_decapsulated: true,
            ..HostConfig::conventional(name)
        }
    }
}

/// An ICMP message received by this host (kept for applications and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEvent {
    /// When it happened, in simulated time.
    pub at: SimTime,
    /// Who sent it.
    pub from: Ipv4Addr,
    /// The parsed ICMP message.
    pub message: IcmpMessage,
}

/// An end system in the simulated network.
pub struct Host {
    /// Fully-qualified name, lower-case, dot-separated.
    pub name: String,
    id: NodeId,
    pub(crate) nic: Nic,
    config: HostConfig,
    routes: RouteTable,
    reassembler: Reassembler,
    /// Extra addresses accepted as local and offered to the mobility hook
    /// (the home agent's capture list for registered mobile hosts).
    intercept: HashSet<Ipv4Addr>,
    /// Addresses this host answers ARP requests for on behalf of others.
    proxy_arp: Vec<Ipv4Addr>,
    /// Joined multicast groups, per interface.
    multicast: HashSet<(IfaceNo, Ipv4Addr)>,
    handlers: HashMap<u8, Option<Box<dyn ProtocolHandler>>>,
    hook: Option<Box<dyn MobilityHook>>,
    hook_taken: bool,
    apps: Vec<Option<Box<dyn App>>>,
    /// ICMP messages delivered to this host.
    pub icmp_log: Vec<IcmpEvent>,
    next_ident: u16,
}

impl Host {
    /// A host with no interfaces, handlers, or apps yet.
    pub fn new(id: NodeId, config: HostConfig) -> Host {
        Host {
            name: config.name.clone(),
            id,
            nic: Nic::new(),
            config,
            routes: RouteTable::new(),
            reassembler: Reassembler::default(),
            intercept: HashSet::new(),
            proxy_arp: Vec::new(),
            multicast: HashSet::new(),
            handlers: HashMap::new(),
            hook: None,
            hook_taken: false,
            apps: Vec::new(),
            icmp_log: Vec::new(),
            next_ident: 1,
        }
    }

    /// This node's id in the world.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The static configuration.
    pub fn config(&self) -> &HostConfig {
        &self.config
    }

    /// Enable/disable tunnel decapsulation (§6.1).
    pub fn set_decap_capable(&mut self, on: bool) {
        self.config.decap_capable = on;
    }

    /// Enable/disable onward forwarding of decapsulated inner packets.
    pub fn set_forward_decapsulated(&mut self, on: bool) {
        self.config.forward_decapsulated = on;
    }

    /// Enable/disable RFC 791 source-route hop processing.
    pub fn set_forward_source_routes(&mut self, on: bool) {
        self.config.forward_source_routes = on;
    }

    // ---- interfaces & addressing -------------------------------------

    /// Create an interface with the given MAC; returns its index.
    pub fn add_iface(&mut self, mac: MacAddr) -> IfaceNo {
        self.nic.add_iface(mac)
    }

    /// The interface/ARP layer.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Mutable access to the interface/ARP layer.
    pub fn nic_mut(&mut self) -> &mut Nic {
        &mut self.nic
    }

    /// An interface's configured address.
    pub fn iface_addr(&self, iface: IfaceNo) -> Option<IfaceAddr> {
        self.nic.addr(iface)
    }

    /// (Re)configure an interface's address (movement renumbers here).
    pub fn set_iface_addr(&mut self, iface: IfaceNo, addr: Option<IfaceAddr>) {
        self.nic.set_addr(iface, addr);
    }

    /// All locally-configured unicast addresses.
    pub fn addrs(&self) -> Vec<Ipv4Addr> {
        self.nic.addrs()
    }

    /// Does any interface (physical or virtual) own this address?
    pub fn is_local_addr(&self, a: Ipv4Addr) -> bool {
        self.nic.addrs().contains(&a)
    }

    // ---- routing ------------------------------------------------------

    /// Append a route; `gateway: None` means the prefix is on-link.
    pub fn add_route(&mut self, prefix: Ipv4Cidr, iface: IfaceNo, gateway: Option<Ipv4Addr>) {
        self.routes.add(RouteEntry {
            prefix,
            iface,
            gateway,
        });
    }

    /// Drop every route (before reconfiguration).
    pub fn clear_routes(&mut self) {
        self.routes.clear();
    }

    /// The current routing table.
    pub fn routes(&self) -> &[RouteEntry] {
        self.routes.entries()
    }

    /// Drop memoized route lookups (the table is unchanged but the world
    /// around it moved — an interface was attached or detached).
    pub(crate) fn invalidate_route_cache(&self) {
        self.routes.invalidate_cache();
    }

    /// The normal (non-override) routing decision for `dst`: the interface
    /// and ARP target that would carry the packet.
    pub fn normal_route(&self, dst: Ipv4Addr) -> Option<(IfaceNo, Ipv4Addr)> {
        if let Some(iface) = self.nic.iface_on_link(dst) {
            return Some((iface, dst));
        }
        self.routes
            .lookup(dst)
            .map(|r| (r.iface, r.gateway.unwrap_or(dst)))
    }

    /// The source address a conventional host would use toward `dst` (the
    /// address of the outgoing interface).
    pub fn normal_source(&self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        self.normal_route(dst)
            .and_then(|(iface, _)| self.nic.addr(iface).map(|a| a.addr))
    }

    // ---- mobility hook --------------------------------------------------

    /// Install the mobility layer.
    pub fn set_hook(&mut self, hook: Box<dyn MobilityHook>) {
        self.hook = Some(hook);
    }

    /// Remove and return the mobility layer.
    pub fn clear_hook(&mut self) -> Option<Box<dyn MobilityHook>> {
        self.hook.take()
    }

    /// Is a mobility layer installed?
    pub fn has_hook(&self) -> bool {
        self.hook.is_some()
    }

    /// Mutable access to the hook, downcast to its concrete type.
    pub fn hook_as<T: 'static>(&mut self) -> Option<&mut T> {
        self.hook
            .as_mut()
            .and_then(|h| h.as_any().downcast_mut::<T>())
    }

    /// Ask the mobility layer (or normal routing) which source address a new
    /// conversation to `dst` should use. This is the paper's "decision …
    /// when TCP decides what address to use as the endpoint identifier".
    pub fn select_source(
        &mut self,
        dst: Ipv4Addr,
        dst_port: Option<u16>,
        bound: Option<Ipv4Addr>,
    ) -> Option<Ipv4Addr> {
        if !self.hook_taken {
            if let Some(mut h) = self.hook.take() {
                let choice = h.select_source(dst, dst_port, bound, self);
                self.hook = Some(h);
                if choice.is_some() {
                    return choice;
                }
            }
        }
        bound.or_else(|| self.normal_source(dst))
    }

    /// Deliver §7.1.2 transmission feedback to the mobility layer.
    pub fn mobility_feedback(&mut self, now: SimTime, event: FeedbackEvent) {
        if self.hook_taken {
            return;
        }
        if let Some(mut h) = self.hook.take() {
            h.feedback(event, now);
            self.hook = Some(h);
        }
    }

    // ---- interception, proxy ARP, multicast ---------------------------

    /// Accept `addr` as local and offer its packets to the hook (home-agent capture).
    pub fn add_intercept(&mut self, addr: Ipv4Addr) {
        self.intercept.insert(addr);
    }

    /// Stop intercepting `addr`.
    pub fn remove_intercept(&mut self, addr: Ipv4Addr) {
        self.intercept.remove(&addr);
    }

    /// Is `addr` currently intercepted?
    pub fn intercepts(&self, addr: Ipv4Addr) -> bool {
        self.intercept.contains(&addr)
    }

    /// Answer ARP requests for `addr` on behalf of its absent owner (RFC 1027).
    /// The list is kept sorted so membership checks stay O(log n) even when a
    /// home agent proxies for tens of thousands of registered mobile hosts.
    pub fn add_proxy_arp(&mut self, addr: Ipv4Addr) {
        if let Err(at) = self.proxy_arp.binary_search(&addr) {
            self.proxy_arp.insert(at, addr);
        }
    }

    /// Stop proxy-ARPing for `addr`.
    pub fn remove_proxy_arp(&mut self, addr: Ipv4Addr) {
        if let Ok(at) = self.proxy_arp.binary_search(&addr) {
            self.proxy_arp.remove(at);
        }
    }

    /// Broadcast a gratuitous ARP binding `ip` to this interface's MAC (capture/reclaim).
    pub fn send_gratuitous_arp(&mut self, ctx: &mut NetCtx, iface: IfaceNo, ip: Ipv4Addr) {
        self.nic.send_gratuitous_arp(ctx, iface, ip);
    }

    /// Start accepting `group` traffic arriving on `iface` (RFC 1112).
    pub fn join_multicast(&mut self, iface: IfaceNo, group: Ipv4Addr) {
        debug_assert!(group.is_multicast());
        self.multicast.insert((iface, group));
    }

    /// Stop accepting `group` traffic on `iface`.
    pub fn leave_multicast(&mut self, iface: IfaceNo, group: Ipv4Addr) {
        self.multicast.remove(&(iface, group));
    }

    /// Is the host joined to `group` on any interface?
    pub fn in_multicast_group(&self, group: Ipv4Addr) -> bool {
        self.multicast.iter().any(|&(_, g)| g == group)
    }

    // ---- protocol handlers & apps --------------------------------------

    /// Install the transport handler for an IP protocol.
    pub fn register_handler(&mut self, proto: IpProtocol, handler: Box<dyn ProtocolHandler>) {
        self.handlers.insert(proto.number(), Some(handler));
    }

    /// Temporarily remove a handler so it can be invoked with `&mut Host`
    /// (the take-out pattern). Pair with [`Host::put_handler`].
    pub fn take_handler(&mut self, proto: IpProtocol) -> Option<Box<dyn ProtocolHandler>> {
        self.handlers
            .get_mut(&proto.number())
            .and_then(Option::take)
    }

    /// Return a handler taken out with [`Host::take_handler`].
    pub fn put_handler(&mut self, proto: IpProtocol, handler: Box<dyn ProtocolHandler>) {
        self.handlers.insert(proto.number(), Some(handler));
    }

    /// Mutable access to a registered handler, downcast to its concrete
    /// type. For operations that need no [`NetCtx`] (binding, reading
    /// received data); use the take-out pattern for operations that send.
    pub fn handler_as<T: 'static>(&mut self, proto: IpProtocol) -> Option<&mut T> {
        self.handlers
            .get_mut(&proto.number())
            .and_then(|h| h.as_mut())
            .and_then(|h| h.as_any().downcast_mut::<T>())
    }

    /// Attach an application; returns its index for [`Host::app_as`].
    pub fn add_app(&mut self, app: Box<dyn App>) -> usize {
        self.apps.push(Some(app));
        self.apps.len() - 1
    }

    /// Mutable access to an app, downcast to its concrete type.
    pub fn app_as<T: 'static>(&mut self, ix: usize) -> Option<&mut T> {
        self.apps
            .get_mut(ix)
            .and_then(|a| a.as_mut())
            .and_then(|a| a.as_any().downcast_mut::<T>())
    }

    /// Schedule an application poll after `delay`. The returned
    /// [`TimerHandle`] cancels it via [`NetCtx::cancel_timer`].
    pub fn request_wakeup(&mut self, ctx: &mut NetCtx, delay: SimDuration) -> TimerHandle {
        ctx.set_timer(delay, token(NS_APPS, 0))
    }

    /// Schedule a mobility-hook timer after `delay`; cancellable via the
    /// returned [`TimerHandle`].
    pub fn request_hook_timer(
        &mut self,
        ctx: &mut NetCtx,
        delay: SimDuration,
        payload: u64,
    ) -> TimerHandle {
        ctx.set_timer(delay, token(NS_MOBILITY, payload))
    }

    /// Schedule a protocol-handler timer after `delay`; cancellable via the
    /// returned [`TimerHandle`].
    pub fn request_proto_timer(
        &mut self,
        ctx: &mut NetCtx,
        proto: IpProtocol,
        delay: SimDuration,
        payload: u64,
    ) -> TimerHandle {
        ctx.set_timer(delay, token(proto.number(), payload))
    }

    /// Allocate an IP identification value for a locally-originated packet.
    pub fn alloc_ident(&mut self) -> u16 {
        let i = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1);
        i
    }

    // ---- IP send path ---------------------------------------------------

    /// Send a locally-originated (or hook-emitted) IP packet.
    pub fn send_ip(&mut self, ctx: &mut NetCtx, mut pkt: Ipv4Packet, meta: TxMeta) {
        let _prof = crate::profile::scope("host/tx");
        // A retransmission is causally a clone of an earlier transmission:
        // link it (pre-encapsulation, so the chain matches the original's
        // shape) before the mobility hook may wrap it.
        if meta.retransmission {
            ctx.trace_transform(TransformKind::Retransmission, None, &pkt);
        }
        // The paper's route-override: consult the mobility policy first.
        if !meta.skip_override && !self.hook_taken {
            if let Some(mut h) = self.hook.take() {
                self.hook_taken = true;
                let decision = h.route_outgoing(pkt, meta, self, ctx);
                self.hook_taken = false;
                self.hook = Some(h);
                match decision {
                    RouteDecision::Continue(p) => pkt = p,
                    RouteDecision::OnLink {
                        iface,
                        next_hop,
                        pkt,
                    } => {
                        self.nic.send_ip(
                            ctx,
                            iface,
                            NextHop::Unicast(next_hop),
                            pkt,
                            TraceEventKind::Sent,
                        );
                        return;
                    }
                    RouteDecision::Consumed => return,
                }
            }
        }

        // Loopback.
        if self.is_local_addr(pkt.dst) {
            ctx.trace_packet(TraceEventKind::Sent, &pkt);
            self.process_local(ctx, pkt, usize::MAX);
            return;
        }

        // Multicast.
        if pkt.dst.is_multicast() {
            let iface = meta.iface.unwrap_or(0);
            self.nic.send_ip(
                ctx,
                iface,
                NextHop::Multicast(pkt.dst),
                pkt,
                TraceEventKind::Sent,
            );
            return;
        }

        // Broadcast (limited, or the subnet broadcast of an attached link).
        if pkt.dst.is_broadcast() {
            let iface = meta.iface.unwrap_or(0);
            self.nic
                .send_ip(ctx, iface, NextHop::Broadcast, pkt, TraceEventKind::Sent);
            return;
        }
        if let Some(iface) = self.subnet_broadcast_iface(pkt.dst) {
            self.nic
                .send_ip(ctx, iface, NextHop::Broadcast, pkt, TraceEventKind::Sent);
            return;
        }

        // Normal unicast routing.
        let Some((iface, next_hop)) = self.normal_route(pkt.dst) else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoRoute), &pkt);
            return;
        };
        self.nic.send_ip(
            ctx,
            iface,
            NextHop::Unicast(next_hop),
            pkt,
            TraceEventKind::Sent,
        );
    }

    fn subnet_broadcast_iface(&self, dst: Ipv4Addr) -> Option<IfaceNo> {
        (0..self.nic.iface_count()).find(|&i| {
            self.nic
                .addr(i)
                .is_some_and(|a| a.prefix.broadcast() == dst && a.prefix.prefix_len() < 31)
        })
    }

    /// Convenience: ICMP-echo `dst` (for tests and examples).
    pub fn send_ping(&mut self, ctx: &mut NetCtx, src: Ipv4Addr, dst: Ipv4Addr, seq: u16) {
        let msg = IcmpMessage::EchoRequest {
            ident: 0x4d49, // "MI"
            seq,
            payload: Bytes::from_static(b"mobility4x4 ping"),
        };
        let mut pkt = Ipv4Packet::new(src, dst, IpProtocol::Icmp, Bytes::from(msg.emit()));
        pkt.ident = self.alloc_ident();
        self.send_ip(ctx, pkt, TxMeta::default());
    }

    // ---- IP receive path ------------------------------------------------

    pub(crate) fn on_frame(&mut self, ctx: &mut NetCtx, iface: IfaceNo, frame: &Bytes) {
        let _prof = crate::profile::scope("host/rx");
        let mut own = self.nic.addrs();
        // Also answer ARP for intercepted addresses via the proxy list.
        own.extend(self.intercept.iter().copied());
        let identity = ArpIdentity {
            own: &own,
            proxy: &self.proxy_arp,
        };
        match self.nic.on_frame(ctx, iface, frame, &identity) {
            NicRx::Ip(pkt) => self.receive_ip(ctx, iface, pkt),
            NicRx::Malformed => { /* corrupted frames vanish, as on real wires */ }
            NicRx::Consumed => {}
        }
        self.poll_apps(ctx);
    }

    fn receive_ip(&mut self, ctx: &mut NetCtx, iface: IfaceNo, pkt: Ipv4Packet) {
        let local = self.is_local_addr(pkt.dst)
            || self.intercept.contains(&pkt.dst)
            || pkt.dst.is_broadcast()
            || (pkt.dst.is_multicast() && self.multicast.contains(&(iface, pkt.dst)))
            || self.subnet_broadcast_iface(pkt.dst).is_some();
        if !local {
            // Hosts are not routers; quietly ignore traffic overheard for
            // someone else (e.g. link-layer broadcast of IP unicast).
            return;
        }
        self.process_local(ctx, pkt, iface);
    }

    fn process_local(&mut self, ctx: &mut NetCtx, pkt: Ipv4Packet, iface: IfaceNo) {
        // Reassemble, then peel tunnel layers (re-reassembling between
        // layers, since inner packets may themselves be fragmented).
        let Some(mut pkt) = self.reassembler.push(pkt, ctx.now) else {
            return;
        };
        let mut layers: Vec<EncapLayer> = Vec::new();
        while self.config.decap_capable
            && encap::is_tunnel(&pkt)
            && (self.is_local_addr(pkt.dst) || self.intercept.contains(&pkt.dst))
        {
            let format = match pkt.protocol {
                IpProtocol::IpInIp => EncapFormat::IpInIp,
                IpProtocol::MinimalEncap => EncapFormat::Minimal,
                IpProtocol::Gre => EncapFormat::Gre,
                _ => unreachable!(),
            };
            match encap::decapsulate(&pkt) {
                Ok(inner) => {
                    ctx.trace_transform(TransformKind::Decapsulated(format), Some(&pkt), &inner);
                    layers.push(EncapLayer {
                        outer_src: pkt.src,
                        outer_dst: pkt.dst,
                        format,
                    });
                    let Some(reassembled) = self.reassembler.push(inner, ctx.now) else {
                        return;
                    };
                    pkt = reassembled;
                }
                Err(_) => {
                    ctx.trace_packet(TraceEventKind::Dropped(DropReason::Malformed), &pkt);
                    return;
                }
            }
        }

        // The mobility layer observes (and may consume or rewrite).
        if !self.hook_taken {
            if let Some(mut h) = self.hook.take() {
                self.hook_taken = true;
                // The conservation monitor needs the pre-hook identity:
                // a consuming hook terminates the packet with no trace
                // event, a rewriting hook changes its identity.
                let before = ctx.invariants_enabled().then(|| pkt.clone());
                let verdict = h.incoming(pkt, &layers, iface, self, ctx);
                self.hook_taken = false;
                self.hook = Some(h);
                match verdict {
                    Some(p) => {
                        if let Some(b) = &before {
                            ctx.note_rewrite(b, &p);
                        }
                        pkt = p;
                    }
                    None => {
                        if let Some(b) = &before {
                            ctx.note_consumed(b);
                        }
                        return;
                    }
                }
            }
        }

        // RFC 791 loose-source-route hop processing, for hosts that allow
        // it: we are a waypoint, not the destination.
        if self.config.forward_source_routes
            && !pkt.options.is_empty()
            && self.is_local_addr(pkt.dst)
        {
            let here = pkt.dst;
            let mut onward = pkt.clone();
            if crate::wire::srcroute::process_at_hop(&mut onward, here) {
                ctx.trace_transform(TransformKind::SourceRouteHop, Some(&pkt), &onward);
                self.send_ip(
                    ctx,
                    onward,
                    TxMeta {
                        skip_override: true,
                        ..TxMeta::default()
                    },
                );
                return;
            }
        }

        let local_now = self.is_local_addr(pkt.dst)
            || pkt.dst.is_broadcast()
            || pkt.dst.is_multicast()
            || self.subnet_broadcast_iface(pkt.dst).is_some();
        if !local_now {
            // Tunnel-endpoint forwarding (home agent relaying a reverse
            // tunnel's inner packet onward). The transmission itself is
            // traced by the send path.
            if self.config.forward_decapsulated && !layers.is_empty() {
                self.send_ip(
                    ctx,
                    pkt,
                    TxMeta {
                        skip_override: true,
                        ..TxMeta::default()
                    },
                );
            } else {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoListener), &pkt);
            }
            return;
        }

        ctx.trace_packet(TraceEventKind::DeliveredLocal, &pkt);
        self.dispatch(ctx, pkt, iface);
    }

    fn dispatch(&mut self, ctx: &mut NetCtx, pkt: Ipv4Packet, iface: IfaceNo) {
        if pkt.protocol == IpProtocol::Icmp {
            self.handle_icmp(ctx, pkt);
            return;
        }
        let proto = pkt.protocol;
        match self.take_handler(proto) {
            Some(mut h) => {
                h.on_packet(&pkt, iface, self, ctx);
                self.put_handler(proto, h);
            }
            None => {
                ctx.trace_packet(TraceEventKind::Dropped(DropReason::NoListener), &pkt);
            }
        }
    }

    fn handle_icmp(&mut self, ctx: &mut NetCtx, pkt: Ipv4Packet) {
        let Ok(msg) = IcmpMessage::parse(&pkt.payload) else {
            ctx.trace_packet(TraceEventKind::Dropped(DropReason::Malformed), &pkt);
            return;
        };
        if let IcmpMessage::EchoRequest {
            ident,
            seq,
            payload,
        } = &msg
        {
            if self.config.icmp_echo_reply && self.is_local_addr(pkt.dst) {
                let reply = IcmpMessage::EchoReply {
                    ident: *ident,
                    seq: *seq,
                    payload: payload.clone(),
                };
                let mut out = Ipv4Packet::new(
                    pkt.dst,
                    pkt.src,
                    IpProtocol::Icmp,
                    Bytes::from(reply.emit()),
                );
                out.ident = self.alloc_ident();
                self.send_ip(ctx, out, TxMeta::default());
            }
        }
        self.icmp_log.push(IcmpEvent {
            at: ctx.now,
            from: pkt.src,
            message: msg,
        });
    }

    // ---- timers & apps ----------------------------------------------------

    pub(crate) fn on_timer(&mut self, ctx: &mut NetCtx, t: TimerToken) {
        let (ns, payload) = split_token(t);
        match ns {
            NS_APPS => { /* the poll below handles it */ }
            NS_MOBILITY => {
                if !self.hook_taken {
                    if let Some(mut h) = self.hook.take() {
                        self.hook_taken = true;
                        h.on_timer(payload, self, ctx);
                        self.hook_taken = false;
                        self.hook = Some(h);
                    }
                }
            }
            super::NS_HOST => { /* reserved */ }
            proto => {
                let proto = IpProtocol::from_number(proto);
                if let Some(mut h) = self.take_handler(proto) {
                    h.on_timer(payload, self, ctx);
                    self.put_handler(proto, h);
                }
            }
        }
        self.poll_apps(ctx);
    }

    fn poll_apps(&mut self, ctx: &mut NetCtx) {
        for i in 0..self.apps.len() {
            if let Some(mut app) = self.apps[i].take() {
                app.poll(self, ctx);
                self.apps[i] = Some(app);
            }
        }
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("addrs", &self.addrs())
            .finish_non_exhaustive()
    }
}
