//! Global string interner: `u32` symbols for node labels and addresses.
//!
//! At 10⁵–10⁶ nodes, carrying a heap `String` per label in every metrics
//! snapshot, trace reconstruction, or audit record dominates memory and
//! allocator traffic. Interning maps each distinct label to a small
//! [`Sym`] once; every later use is a 4-byte copy, and resolution returns
//! a `&'static str` that never moves, so snapshot code can build label
//! tables without cloning.
//!
//! The interner is process-global and append-only: interned strings are
//! leaked (a deliberate arena — labels live as long as the process, and a
//! world's label set is tiny next to its node state). Symbols are handed
//! out in first-intern order, so a deterministic build order yields
//! deterministic symbols; nothing observable depends on the numeric value.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned string: a dense index into the global symbol table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

struct Interner {
    /// string → symbol, keyed by the leaked `&'static str` so each
    /// distinct string is stored exactly once.
    map: HashMap<&'static str, u32>,
    /// symbol → string, in first-intern order.
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Intern `s`, returning its symbol. The first intern of a distinct
/// string leaks one copy of it; every subsequent call is a hash lookup.
pub fn intern(s: &str) -> Sym {
    let mut i = interner().lock().expect("interner poisoned");
    if let Some(&ix) = i.map.get(s) {
        return Sym(ix);
    }
    let ix = u32::try_from(i.strings.len()).expect("interner full");
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    i.strings.push(leaked);
    i.map.insert(leaked, ix);
    Sym(ix)
}

/// The string behind a symbol. Panics on a symbol that was never handed
/// out by [`intern`] (impossible through the public API).
pub fn resolve(sym: Sym) -> &'static str {
    interner().lock().expect("interner poisoned").strings[sym.0 as usize]
}

/// Resolve a batch of symbols in one lock acquisition — how snapshot
/// paths turn a world's `Vec<Sym>` into a label table.
pub fn resolve_all(syms: &[Sym]) -> Vec<&'static str> {
    let i = interner().lock().expect("interner poisoned");
    syms.iter().map(|s| i.strings[s.0 as usize]).collect()
}

/// Number of distinct strings interned so far (diagnostics).
pub fn len() -> usize {
    interner().lock().expect("interner poisoned").strings.len()
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(resolve(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let a = intern("arena-test-alpha");
        let b = intern("arena-test-beta");
        assert_ne!(a, b);
        assert_eq!(a, intern("arena-test-alpha"));
        assert_eq!(resolve(a), "arena-test-alpha");
        assert_eq!(resolve(b), "arena-test-beta");
        assert_eq!(
            resolve_all(&[b, a]),
            vec!["arena-test-beta", "arena-test-alpha"]
        );
    }

    #[test]
    fn display_goes_through_the_table() {
        let s = intern("arena-test-display");
        assert_eq!(s.to_string(), "arena-test-display");
    }
}
