//! Sharded (conservative parallel) execution of one world.
//!
//! A world can be partitioned into *shards* — groups of segments and the
//! nodes attached to them — each with its own timing wheel. Shards advance
//! in lock-stepped *windows* under the classic conservative (CMB-style)
//! protocol: a shard may dispatch every event strictly below its *horizon*,
//! the earliest instant at which traffic from another shard could still
//! reach it. Link latency on border segments supplies the lookahead, so
//! horizons always advance and the protocol cannot deadlock.
//!
//! Determinism is the design center, not an afterthought:
//!
//! * Every event carries a *lane key* derived from the entity that
//!   scheduled it (`(segment lane, per-segment seq)` for deliveries,
//!   `(node lane, per-node seq)` for timers — see [`crate::event::lane_key`]),
//!   so equal-timestamp ordering is a pure function of the topology and
//!   traffic, identical for any shard count including one.
//! * Order-sensitive observers (packet trace, invariant monitors, pcap)
//!   are never touched from worker dispatch. Workers append deferred
//!   [`Op`]s grouped per dispatched event; the coordinator replays all
//!   shards' groups in canonical `(time, round, key)` order into the
//!   world-level observers once the global progress frontier guarantees
//!   no shard can still contribute earlier work.
//! * A transmission on a *border* segment (one whose attachments span
//!   shards) is deferred as an [`Op::BorderTx`] intent. The shared
//!   medium's serialization state must evolve in global time order, and
//!   shards' clocks are allowed to drift past each other's *send* times
//!   (only *arrival* times are horizon-protected), so intents are buffered
//!   and applied per segment in canonical order once every adjacent
//!   shard's effective clock has passed the send time. Applying an intent
//!   schedules the delivery events into the receiving shards' wheels;
//!   its observer side (link metrics, pcap, conservation notes) replays
//!   later with the rest of the round's ops.
//!
//! The result is byte-identical reports, metrics, traces and pcaps for
//! `--shards N` versus serial execution — asserted over all of the repo's
//! experiments by `tests/shard_equivalence.rs`.
//!
//! Worlds whose topology defeats the protocol (fault injection or zero
//! latency on a border segment — post-partition mobility can create
//! either) and worlds with an armed metrics sketch (whose collapse is
//! order-sensitive) degrade to a single-threaded *merged* mode that
//! interleaves all shard wheels in the same canonical order — always
//! correct, never parallel, and reported once per world.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;

use crate::event::{EventQueue, IfaceNo, NodeId, SchedulerKind, SchedulerStats};
use crate::link::{FaultOutcome, LinkConfig};
use crate::metrics::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEventKind, TransformKind};
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};

// ---------------------------------------------------------------------------
// Process-wide default (mirrors `set_default_scheduler`)
// ---------------------------------------------------------------------------

static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Set the shard count newly created [`crate::world::World`]s use
/// (`--shards` / `NETSIM_SHARDS` plumb through here). `0` and `1` both
/// mean serial execution.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default shard count.
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed).max(1)
}

// ---------------------------------------------------------------------------
// Per-shard statistics
// ---------------------------------------------------------------------------

/// Per-shard execution counters, surfaced through
/// [`crate::world::World::shard_stats`] and (under profiling) the
/// run-report `shards` section — how utilization imbalance, horizon
/// stalls and cross-shard chatter are diagnosed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Events dispatched by this shard's worker.
    pub events: u64,
    /// Synchronization windows this shard actively dispatched in.
    pub windows: u64,
    /// Windows in which the shard had pending events but its horizon
    /// forbade dispatching any of them.
    pub stalls: u64,
    /// Cross-shard delivery events routed into this shard at barriers.
    pub msgs_in: u64,
    /// Border transmissions this shard's nodes originated.
    pub msgs_out: u64,
}

serde::impl_serialize!(ShardStats {
    events,
    windows,
    stalls,
    msgs_in,
    msgs_out
});

// ---------------------------------------------------------------------------
// Deferred operations
// ---------------------------------------------------------------------------

/// One observer side effect recorded during worker dispatch, replayed by
/// the coordinator in canonical order. Each variant mirrors exactly one
/// `NetCtx` observer call; metrics are *not* deferred (their counters are
/// commutative and recorded into per-shard registries that merge at the
/// end of the run).
#[derive(Debug)]
pub(crate) enum Op {
    /// `trace_packet`: a trace record plus its conservation-monitor echo.
    Trace {
        kind: TraceEventKind,
        pkt: Ipv4Packet,
    },
    /// `trace_transform`: a causal edge between parent and child packets.
    Transform {
        kind: TransformKind,
        parent: Option<Ipv4Packet>,
        child: Ipv4Packet,
    },
    /// `flag_anomaly`: promote a conversation under flow sampling.
    Promote {
        a: Ipv4Addr,
        b: Ipv4Addr,
        proto: IpProtocol,
    },
    /// A frame written to the wire of a non-border segment (pcap capture).
    Pcap {
        frame: Bytes,
    },
    /// Conservation-ledger notes (see `InvariantMonitor`).
    WireLoss,
    UnclaimedFrame,
    DetachedFrame,
    Parked,
    Unparked,
    Consumed {
        pkt: Ipv4Packet,
    },
    Rewrite {
        before: Ipv4Packet,
        after: Ipv4Packet,
    },
    /// A transmission on a border segment. Scheduling (medium occupancy,
    /// delivery events) is applied from the buffered [`PendingTx`] copy;
    /// this op marks where the transmission's observer effects — link
    /// metrics, pcap, conservation notes, scheduler-ledger pushes — land
    /// in canonical order, consuming the matching [`TxRecord`].
    BorderTx {
        seg: usize,
        iface: IfaceNo,
        frame: Bytes,
    },
}

/// Queue activity one dispatched event performed — the per-group delta
/// feeding the scheduler-stats reconstruction that keeps
/// `check_scheduler` byte-identical with serial runs.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PushCounts {
    pub pushed: u64,
    pub cancelled: u64,
}

/// Everything one dispatched event did, keyed for the canonical merge.
#[derive(Debug)]
pub(crate) struct Group {
    pub key: u64,
    pub node: NodeId,
    pub counts: PushCounts,
    pub ops: Vec<Op>,
}

/// One same-timestamp batch a shard dispatched.
///
/// Border latency is strictly positive, so same-timestamp causality never
/// crosses shards; shard-local round numbering at a time `t` therefore
/// coincides with the serial scheduler's batch numbering at `t`, and
/// merging rounds by `(t, round)` reconstructs the serial batches exactly.
#[derive(Debug)]
pub(crate) struct RoundLog {
    pub t: SimTime,
    pub round: u32,
    pub batch_len: u64,
    pub groups: Vec<Group>,
}

/// A buffered border transmission: the scheduling half of an
/// [`Op::BorderTx`], applied once every shard adjacent to the segment has
/// provably advanced past the send time.
#[derive(Debug)]
pub(crate) struct PendingTx {
    pub seg: usize,
    pub t: SimTime,
    pub round: u32,
    pub key: u64,
    pub op: u32,
    pub node: NodeId,
    pub iface: IfaceNo,
    pub frame: Bytes,
}

impl PendingTx {
    fn order(&self) -> (SimTime, u32, u64, u32) {
        (self.t, self.round, self.key, self.op)
    }
}

/// What applying a border transmission produced — consumed in the same
/// canonical order by the matching [`Op::BorderTx`] replay, which records
/// the link metrics / pcap / conservation effects the serial transmit
/// path would have produced inline.
#[derive(Debug)]
pub(crate) struct TxRecord {
    pub wire_len: usize,
    pub queue_wait: SimDuration,
    pub serialize: SimDuration,
    pub outcome: FaultOutcome,
    pub pushed: u64,
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// The sharded-execution state a [`crate::world::World`] carries once more
/// than one shard is configured and traffic starts.
pub(crate) struct Runtime {
    /// Shard count (≥ 1 after clamping to the segment count).
    pub nshards: usize,
    /// Sticky node → shard assignment. Never reassigned: lane keys make
    /// the simulation output independent of ownership, so stickiness costs
    /// nothing and keeps timer handles and in-flight events valid forever.
    pub owner_node: Vec<u32>,
    /// Node ids owned by each shard, in assignment order.
    pub members: Vec<Vec<usize>>,
    /// Global node id → index within its owner's `members` list.
    pub node_slot: Vec<u32>,
    /// Sticky segment → shard assignment from partitioning (the home for
    /// private segments and the BFS seed for locality).
    pub owner_seg: Vec<u32>,
    /// Segment ids whose state each shard carries during a window
    /// (private segments only; border states stay with the coordinator).
    pub seg_members: Vec<Vec<usize>>,
    /// Global segment id → index within its home shard's `seg_members`.
    pub seg_slot: Vec<u32>,
    /// Is this segment attached to nodes of more than one shard?
    pub border: Vec<bool>,
    /// Border segments: `(segment id, latency ticks, attached shards)`.
    /// The latency is the lookahead that segment contributes.
    pub border_adj: Vec<(usize, u64, Vec<u32>)>,
    /// One timing wheel per shard.
    pub queues: Vec<EventQueue>,
    /// One metrics registry per shard, merged into the world registry at
    /// the end of every run (counters are commutative).
    pub shard_metrics: Vec<MetricsRegistry>,
    /// Reconstructed global scheduler ledger, maintained in canonical
    /// order so `check_scheduler` and the run report see exactly what a
    /// serial run's single queue would have recorded.
    pub sim_stats: SchedulerStats,
    /// Per-shard execution counters.
    pub stats: Vec<ShardStats>,
    /// Dispatched-but-not-yet-replayed rounds, across windows. A round at
    /// time `t` replays once the global progress frontier passes `t`.
    pub pending_rounds: Vec<RoundLog>,
    /// Buffered border transmissions awaiting their segment's safety
    /// threshold.
    pub pending_txs: Vec<PendingTx>,
    /// Per-segment FIFO of applied-transmission records awaiting their
    /// observer replay.
    pub tx_records: Vec<VecDeque<TxRecord>>,
    /// Set when topology changed since borders were last derived.
    pub topo_dirty: bool,
    /// Why the world degrades to merged execution, if it must.
    pub degraded: Option<&'static str>,
    /// Whether the degradation warning has been printed.
    pub warned: bool,
    /// Cached `available_parallelism() > 1`; windows run inline otherwise.
    pub parallel: bool,
}

/// Does this segment's configuration disqualify it from being a shard
/// border? Fault outcomes draw from a private RNG whose stream must follow
/// global transmit order, and zero latency yields zero lookahead.
fn constrained(cfg: &LinkConfig) -> bool {
    cfg.fault.is_active() || cfg.latency.0 == 0
}

struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind((0..n).collect())
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.0[x] != x {
            self.0[x] = self.0[self.0[x]];
            x = self.0[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.0[hi] = lo;
        }
    }
}

impl Runtime {
    /// Partition the topology into `nshards` shards.
    ///
    /// * `seg_nodes[s]` — node ids attached to segment `s` (deduplicated).
    /// * `node_segs[n]` — segment ids node `n` is attached to.
    ///
    /// Segments that must not become borders (fault injection, zero
    /// latency) are union-found with every segment reachable through their
    /// attached nodes, forcing those clusters onto one shard. The
    /// resulting components are distributed by a deterministic
    /// weight-balanced multi-seed BFS over the component adjacency graph,
    /// so adjacent LANs tend to land on the same shard (fewer borders,
    /// longer windows). The choice only affects load balance: lane keys
    /// make the simulation output identical under *any* assignment.
    pub fn partition(
        nshards: usize,
        kind: SchedulerKind,
        metrics_enabled: bool,
        seg_cfgs: &[LinkConfig],
        seg_nodes: &[Vec<usize>],
        node_segs: &[Vec<usize>],
    ) -> Runtime {
        let seg_count = seg_cfgs.len();
        let nshards = nshards.clamp(1, seg_count.max(1));

        // 1. Constrained segments pull their whole neighbourhood together.
        let mut uf = UnionFind::new(seg_count);
        for (s, cfg) in seg_cfgs.iter().enumerate() {
            if !constrained(cfg) {
                continue;
            }
            for &n in &seg_nodes[s] {
                for &s2 in &node_segs[n] {
                    uf.union(s, s2);
                }
            }
        }

        // 2. Components, weighted by attachment count (a proxy for the
        //    traffic a segment generates).
        let mut comp_of = vec![0usize; seg_count];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut root_comp: Vec<Option<usize>> = vec![None; seg_count];
        for (s, slot) in comp_of.iter_mut().enumerate() {
            let r = uf.find(s);
            let c = *root_comp[r].get_or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            *slot = c;
            comps[c].push(s);
        }
        let weight: Vec<u64> = comps
            .iter()
            .map(|segs| {
                segs.iter()
                    .map(|&s| seg_nodes[s].len() as u64 + 1)
                    .sum::<u64>()
            })
            .collect();

        // Component adjacency via shared nodes.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); comps.len()];
        for segs in node_segs {
            for i in 0..segs.len() {
                for j in (i + 1)..segs.len() {
                    let (a, b) = (comp_of[segs[i]], comp_of[segs[j]]);
                    if a != b {
                        adj[a].push(b);
                        adj[b].push(a);
                    }
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }

        // 3. Weight-balanced multi-seed BFS. Repeatedly give the lightest
        //    shard the best next component: an unassigned neighbour of
        //    what it already owns if one exists, else the heaviest
        //    unassigned component (a fresh domain).
        let mut comp_shard: Vec<Option<u32>> = vec![None; comps.len()];
        let mut load = vec![0u64; nshards];
        let mut frontier: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_by_key(|&c| (std::cmp::Reverse(weight[c]), comps[c][0]));
        let mut remaining = comps.len();
        while remaining > 0 {
            let shard = (0..nshards).min_by_key(|&r| (load[r], r)).unwrap();
            let mut pick = None;
            'search: for &owned in &frontier[shard] {
                for &nb in &adj[owned] {
                    if comp_shard[nb].is_none() {
                        pick = Some(nb);
                        break 'search;
                    }
                }
            }
            let pick =
                pick.unwrap_or_else(|| *order.iter().find(|&&c| comp_shard[c].is_none()).unwrap());
            comp_shard[pick] = Some(shard as u32);
            load[shard] += weight[pick];
            frontier[shard].push(pick);
            remaining -= 1;
        }

        let mut owner_seg = vec![u32::MAX; seg_count];
        for s in 0..seg_count {
            owner_seg[s] = comp_shard[comp_of[s]].unwrap_or(0);
        }

        let mut rt = Runtime {
            nshards,
            owner_node: Vec::new(),
            members: vec![Vec::new(); nshards],
            node_slot: Vec::new(),
            owner_seg,
            seg_members: vec![Vec::new(); nshards],
            seg_slot: Vec::new(),
            border: Vec::new(),
            border_adj: Vec::new(),
            queues: (0..nshards).map(|_| EventQueue::with_kind(kind)).collect(),
            shard_metrics: (0..nshards)
                .map(|_| MetricsRegistry::new(metrics_enabled))
                .collect(),
            sim_stats: SchedulerStats::default(),
            stats: vec![ShardStats::default(); nshards],
            pending_rounds: Vec::new(),
            pending_txs: Vec::new(),
            tx_records: Vec::new(),
            topo_dirty: true,
            degraded: None,
            warned: false,
            parallel: std::thread::available_parallelism().is_ok_and(|n| n.get() > 1),
        };
        rt.refresh(seg_cfgs, seg_nodes, node_segs);
        rt
    }

    /// Bring ownership, borders and lookahead up to date with the current
    /// topology. New nodes get sticky owners (their first segment's owner);
    /// segments are re-classified as private or border from their
    /// attachments' owners. Called at run start and whenever topology
    /// changed (mobility happens between runs, never mid-run).
    pub fn refresh(
        &mut self,
        seg_cfgs: &[LinkConfig],
        seg_nodes: &[Vec<usize>],
        node_segs: &[Vec<usize>],
    ) {
        let node_count = node_segs.len();
        if !self.topo_dirty && self.owner_node.len() == node_count {
            return;
        }

        // Sticky owners for segments created after partitioning.
        for s in self.owner_seg.len()..seg_cfgs.len() {
            self.owner_seg.push((s % self.nshards) as u32);
        }

        // Sticky owners for new nodes.
        for (n, segs) in node_segs.iter().enumerate().skip(self.owner_node.len()) {
            let shard = segs
                .first()
                .map(|&s| self.owner_seg[s])
                .unwrap_or((n % self.nshards) as u32);
            self.owner_node.push(shard);
            self.node_slot
                .push(self.members[shard as usize].len() as u32);
            self.members[shard as usize].push(n);
        }

        // Re-derive segment classification from current attachments.
        for m in &mut self.seg_members {
            m.clear();
        }
        self.seg_slot = vec![u32::MAX; seg_cfgs.len()];
        self.border = vec![false; seg_cfgs.len()];
        self.border_adj.clear();
        self.tx_records.resize_with(seg_cfgs.len(), VecDeque::new);
        let mut violation = None;
        for s in 0..seg_cfgs.len() {
            let mut shards: Vec<u32> = seg_nodes[s].iter().map(|&n| self.owner_node[n]).collect();
            shards.sort_unstable();
            shards.dedup();
            match shards.len() {
                0 | 1 => {
                    // Unattached segments go to their partition owner so
                    // `segment_stats` keeps working; they carry no traffic.
                    let home = shards.first().copied().unwrap_or(self.owner_seg[s]) as usize;
                    self.seg_slot[s] = self.seg_members[home].len() as u32;
                    self.seg_members[home].push(s);
                }
                _ => {
                    self.border[s] = true;
                    if constrained(&seg_cfgs[s]) {
                        violation = Some("faulty or zero-latency segment on a shard border");
                    }
                    self.border_adj.push((s, seg_cfgs[s].latency.0, shards));
                }
            }
        }
        self.degraded = violation;
        self.topo_dirty = false;
    }

    /// Per-border minimum send time among *buffered, not yet applied*
    /// transmissions, indexed parallel to `border_adj`. These floors feed
    /// [`Runtime::effective`]: a buffered send at an old timestamp still
    /// produces deliveries (send + latency), so it caps what adjacent
    /// shards may be assumed to have passed.
    pub fn tx_floors(&self) -> Vec<u64> {
        let mut floors = vec![u64::MAX; self.border_adj.len()];
        for tx in &self.pending_txs {
            if let Some(i) = self.border_adj.iter().position(|(s, _, _)| *s == tx.seg) {
                floors[i] = floors[i].min(tx.t.0);
            }
        }
        floors
    }

    /// Effective next-activity times, one per shard: a lower bound on the
    /// time of anything shard `r` will dispatch (and hence transmit) in
    /// the future, given that every buffered border transmission will
    /// eventually be applied.
    ///
    /// Queue minima alone are not lower bounds — an idle shard can be
    /// woken by a border arrival and transmit again — so they are relaxed
    /// through the border graph to a fixpoint (Bellman-style; strictly
    /// positive border latency guarantees convergence). Each border's
    /// send floor is the minimum of its adjacent shards' effective times
    /// and the send times of transmissions already buffered on it
    /// (`floors`, from [`Runtime::tx_floors`]); deliveries land at floor +
    /// latency or later. Including the buffered sends is what makes the
    /// fixpoint self-consistent: an applied old send can wake a neighbour
    /// to transmit again *before* other already-buffered sends on the same
    /// medium, and the resulting thresholds hold those later sends back
    /// until the chain resolves.
    pub fn effective(&self, t_next: &[Option<SimTime>], floors: &[u64]) -> Vec<u64> {
        let inf = u64::MAX;
        let mut eff: Vec<u64> = t_next.iter().map(|t| t.map_or(inf, |t| t.0)).collect();
        loop {
            let mut changed = false;
            for (i, (_, lat, adj)) in self.border_adj.iter().enumerate() {
                let m = adj
                    .iter()
                    .map(|&s| eff[s as usize])
                    .min()
                    .unwrap_or(inf)
                    .min(floors[i]);
                let bound = m.saturating_add(*lat);
                for &r in adj {
                    if bound < eff[r as usize] {
                        eff[r as usize] = bound;
                        changed = true;
                    }
                }
            }
            if !changed {
                return eff;
            }
        }
    }

    /// Per-shard dispatch horizons for one window: shard `r` may dispatch
    /// every event strictly below `H[r]`, capped at `deadline + 1` so a
    /// window never overruns the caller's deadline. The global-minimum
    /// shard always gets `H > t_next` (border latency is positive), so
    /// windows always make progress.
    pub fn horizons(&self, eff: &[u64], deadline: SimTime) -> Vec<SimTime> {
        let cap = SimTime(deadline.0.saturating_add(1));
        let mut h: Vec<SimTime> = vec![cap; self.nshards];
        for (_, lat, adj) in &self.border_adj {
            let m = adj
                .iter()
                .map(|&s| eff[s as usize])
                .min()
                .unwrap_or(u64::MAX);
            let bound = SimTime(m.saturating_add(*lat));
            for &r in adj {
                if bound < h[r as usize] {
                    h[r as usize] = bound;
                }
            }
        }
        h
    }

    /// Per-border-segment application threshold: a buffered transmission
    /// on segment `B` at send time `t` may be applied once `t <
    /// threshold(B)` — no adjacent shard can still transmit on `B` at or
    /// before `t`.
    pub fn border_threshold(&self, eff: &[u64], seg: usize) -> u64 {
        self.border_adj
            .iter()
            .find(|(s, _, _)| *s == seg)
            .map(|(_, _, adj)| {
                adj.iter()
                    .map(|&s| eff[s as usize])
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .unwrap_or(u64::MAX)
    }

    /// Sort buffered border transmissions into canonical order. Per
    /// segment the safe set is always a time-prefix, so applying in this
    /// order under per-segment thresholds evolves each medium exactly as
    /// the serial run would.
    pub fn sort_pending_txs(&mut self) {
        self.pending_txs.sort_by_key(PendingTx::order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn cfg(lat_us: u64) -> LinkConfig {
        LinkConfig {
            latency: SimDuration::from_micros(lat_us),
            ..LinkConfig::lan()
        }
    }

    /// Two LANs joined by a router node 2: segment 0 {0,2}, segment 1 {1,2}.
    fn two_lan_views() -> (Vec<LinkConfig>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
        (
            vec![cfg(100), cfg(100)],
            vec![vec![0, 2], vec![1, 2]],
            vec![vec![0], vec![1], vec![0, 1]],
        )
    }

    #[test]
    fn partition_splits_two_lans_and_finds_the_border() {
        let (cfgs, seg_nodes, node_segs) = two_lan_views();
        let rt = Runtime::partition(
            2,
            SchedulerKind::Wheel,
            false,
            &cfgs,
            &seg_nodes,
            &node_segs,
        );
        assert_eq!(rt.nshards, 2);
        // Each segment on its own shard; the router's segment-ownership
        // makes one of them a border (the router's owner differs from one
        // LAN's other members).
        assert_eq!(rt.owner_node.len(), 3);
        let borders = rt.border.iter().filter(|&&b| b).count();
        assert!(borders >= 1, "a two-shard split must expose a border");
        for (_, lat, adj) in &rt.border_adj {
            assert!(*lat > 0);
            assert!(adj.len() >= 2);
        }
    }

    #[test]
    fn constrained_segments_collapse_onto_one_shard() {
        let (mut cfgs, seg_nodes, node_segs) = two_lan_views();
        // Faulty segment 0 must pull segment 1 (shared node 2) with it.
        cfgs[0].fault.drop_prob = 0.5;
        let rt = Runtime::partition(
            2,
            SchedulerKind::Wheel,
            false,
            &cfgs,
            &seg_nodes,
            &node_segs,
        );
        assert_eq!(rt.owner_seg[0], rt.owner_seg[1]);
        assert!(rt.border_adj.is_empty(), "no borders, no degradation");
        assert!(rt.degraded.is_none());
    }

    #[test]
    fn effective_times_relax_through_borders_and_horizons_progress() {
        let (cfgs, seg_nodes, node_segs) = two_lan_views();
        let rt = Runtime::partition(
            2,
            SchedulerKind::Wheel,
            false,
            &cfgs,
            &seg_nodes,
            &node_segs,
        );
        if rt.border_adj.is_empty() {
            return; // partition kept everything private; nothing to check
        }
        // Shard A at t=50, shard B idle: B's effective time is bounded by
        // A's next send + latency, not infinity.
        let floors = rt.tx_floors();
        let eff = rt.effective(&[Some(SimTime(50)), None], &floors);
        assert_eq!(eff[0], 50);
        assert_eq!(eff[1], 150);
        // The global-minimum shard's horizon strictly exceeds its own next
        // event: windows always dispatch something.
        let h = rt.horizons(&eff, SimTime(1_000_000));
        assert!(h[0] > SimTime(50), "horizon {:?} must pass t_next", h[0]);
        // A buffered tx on the border at t=50 is not yet safe (A itself
        // could still transmit at 50), but one at t=49 is.
        let seg = rt.border_adj[0].0;
        let thr = rt.border_threshold(&eff, seg);
        assert_eq!(thr, 50);
    }

    #[test]
    fn default_shards_round_trip() {
        assert_eq!(default_shards(), 1);
        set_default_shards(4);
        assert_eq!(default_shards(), 4);
        set_default_shards(0);
        assert_eq!(default_shards(), 1);
    }
}
