//! Longest-prefix-match route table with a per-destination lookup cache.
//!
//! Replaces the linear scan over `Vec<RouteEntry>` on the forwarding hot
//! path. Routes are bucketed by prefix length (a 33-level hash-on-network
//! structure — the classic "binary search on prefix lengths" layout
//! simplified to a descending scan, which is faster than tries at the
//! table sizes the simulator sees); a lookup probes populated lengths
//! from /32 down and stops at the first hit, which is by construction the
//! longest match. A small per-destination cache short-circuits repeat
//! lookups — exactly the locality a packet flow exhibits — and is
//! invalidated whenever the table changes or an interface moves
//! (reattach), since either can change the right answer.
//!
//! Semantics match [`lpm`](crate::device::router::lpm) exactly, including
//! the tie rule: when the same prefix is inserted twice, the
//! later entry wins (as `max_by_key` returns the last maximum).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::device::router::{lpm, RouteEntry};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Cidr};

/// Cache entries beyond this are assumed to indicate an unusual workload
/// (address sweeps); the cache resets rather than growing unboundedly.
const CACHE_CAP: usize = 1024;

/// A route table offering O(#prefix-lengths) longest-prefix-match lookups
/// and an O(1) hit path for repeated destinations.
///
/// Drop-in replacement for the `Vec<RouteEntry>` + [`lpm`] pair used by
/// routers and hosts: [`RouteTable::entries`] still exposes the routes in
/// insertion order for display and tests.
#[derive(Debug, Default)]
pub struct RouteTable {
    /// All routes in insertion order (what `routes()` accessors expose).
    entries: Vec<RouteEntry>,
    /// `buckets[p]` maps a network address (already masked to `p` bits) to
    /// the index in `entries` of the winning route for that exact prefix.
    buckets: Vec<HashMap<u32, usize>>,
    /// Bit `p` set ⇔ `buckets[p]` is non-empty; lets lookups skip empty
    /// prefix lengths without touching the hash maps.
    populated: u64,
    /// dst → route memo. Interior mutability so `&self` lookups (hosts
    /// route from `&self` contexts) can still fill it; a `World` lives on
    /// one thread so `RefCell` suffices.
    cache: RefCell<HashMap<u32, Option<RouteEntry>>>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> RouteTable {
        RouteTable {
            entries: Vec::new(),
            buckets: (0..=32).map(|_| HashMap::new()).collect(),
            populated: 0,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Append a route. Later insertions of the same prefix shadow earlier
    /// ones, matching [`lpm`] over the equivalent vector.
    pub fn add(&mut self, entry: RouteEntry) {
        let ix = self.entries.len();
        self.entries.push(entry);
        let p = usize::from(entry.prefix.prefix_len());
        self.buckets[p].insert(entry.prefix.network().0, ix);
        self.populated |= 1u64 << p;
        self.cache.borrow_mut().clear();
    }

    /// Remove every route.
    pub fn clear(&mut self) {
        self.entries.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.populated = 0;
        self.cache.borrow_mut().clear();
    }

    /// The routes, in insertion order.
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest-prefix match for `dst`, consulting the cache first.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<RouteEntry> {
        let _prof = crate::profile::scope("route/lookup");
        if let Some(hit) = self.cache.borrow().get(&dst.0) {
            crate::profile::add(crate::profile::Counter::RouteCacheHit, 1);
            return *hit;
        }
        crate::profile::add(crate::profile::Counter::RouteCacheMiss, 1);
        let found = self.lookup_uncached(dst);
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(dst.0, found);
        found
    }

    /// Longest-prefix match for `dst` against the buckets alone.
    fn lookup_uncached(&self, dst: Ipv4Addr) -> Option<RouteEntry> {
        let mut lens = self.populated;
        while lens != 0 {
            // Highest populated prefix length first: longest match wins.
            let p = 63 - lens.leading_zeros() as u8;
            let network = Ipv4Cidr::new(dst, p).network().0;
            if let Some(&ix) = self.buckets[usize::from(p)].get(&network) {
                return Some(self.entries[ix]);
            }
            lens &= !(1u64 << p);
        }
        None
    }

    /// Drop all memoized lookups. Called when the world around the table
    /// changes without the table itself changing — e.g. an interface is
    /// detached or reattached, which can invalidate which routes are
    /// usable even though the entries are identical.
    pub fn invalidate_cache(&self) {
        self.cache.borrow_mut().clear();
    }
}

impl Clone for RouteTable {
    /// Clones rebuild an empty cache: memos are per-instance.
    fn clone(&self) -> RouteTable {
        let mut t = RouteTable::new();
        for &e in &self.entries {
            t.add(e);
        }
        t
    }
}

/// Equality is over the installed routes (caches are memos, not state).
impl PartialEq for RouteTable {
    fn eq(&self, other: &RouteTable) -> bool {
        self.entries == other.entries
    }
}

/// Verifies [`RouteTable::lookup`] against the reference linear [`lpm`].
/// Exposed (hidden) for the parity property test and benches.
#[doc(hidden)]
pub fn lpm_reference(routes: &[RouteEntry], dst: Ipv4Addr) -> Option<RouteEntry> {
    lpm(routes, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn entry(cidr: &str, iface: usize) -> RouteEntry {
        let (a, p) = cidr.split_once('/').unwrap();
        RouteEntry {
            prefix: Ipv4Cidr::new(ip(a), p.parse().unwrap()),
            iface,
            gateway: None,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add(entry("0.0.0.0/0", 0));
        t.add(entry("10.0.0.0/8", 1));
        t.add(entry("10.1.0.0/16", 2));
        t.add(entry("10.1.2.0/24", 3));
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().iface, 3);
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().iface, 2);
        assert_eq!(t.lookup(ip("10.9.9.9")).unwrap().iface, 1);
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().iface, 0);
    }

    #[test]
    fn duplicate_prefix_last_wins_like_lpm() {
        let mut t = RouteTable::new();
        let routes = [entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)];
        for &r in &routes {
            t.add(r);
        }
        let dst = ip("10.5.5.5");
        assert_eq!(t.lookup(dst), lpm(&routes, dst));
        assert_eq!(t.lookup(dst).unwrap().iface, 2);
    }

    #[test]
    fn cache_serves_and_invalidates() {
        let mut t = RouteTable::new();
        t.add(entry("10.0.0.0/8", 1));
        let dst = ip("10.1.1.1");
        assert_eq!(t.lookup(dst).unwrap().iface, 1);
        // Cached now; adding a more specific route must invalidate it.
        t.add(entry("10.1.0.0/16", 2));
        assert_eq!(t.lookup(dst).unwrap().iface, 2);
        t.clear();
        assert_eq!(t.lookup(dst), None);
    }

    #[test]
    fn no_match_is_cached_too() {
        let mut t = RouteTable::new();
        t.add(entry("10.0.0.0/8", 1));
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
        t.invalidate_cache();
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
    }

    #[test]
    fn matches_linear_lpm_on_a_spread_of_destinations() {
        let mut routes = Vec::new();
        let mut t = RouteTable::new();
        for i in 0..64u32 {
            let e = RouteEntry {
                prefix: Ipv4Cidr::new(Ipv4Addr(i * 0x0101_0101), (i % 33) as u8),
                iface: i as usize,
                gateway: None,
            };
            routes.push(e);
            t.add(e);
        }
        for i in 0..512u32 {
            let dst = Ipv4Addr(i.wrapping_mul(0x9e37_79b9));
            assert_eq!(t.lookup(dst), lpm(&routes, dst), "dst {dst}");
        }
    }
}
