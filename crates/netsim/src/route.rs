//! Longest-prefix-match route table with a per-destination lookup cache.
//!
//! Replaces the linear scan over `Vec<RouteEntry>` on the forwarding hot
//! path. Storage is sized to the table: small tables (hosts with a
//! default route and an on-link prefix or two — the overwhelming
//! majority of nodes in a large world) are just the entry vector, looked
//! up by direct linear LPM with **zero** auxiliary allocations. Tables
//! past [`LINEAR_MAX`] entries build a single hash index keyed by
//! `(prefix length, network)` plus a populated-lengths bitmap — the
//! classic "binary search on prefix lengths" layout simplified to a
//! descending scan — and add a per-destination cache that
//! short-circuits repeat lookups, exactly the locality a packet flow
//! exhibits. The cache is invalidated whenever the table changes or an
//! interface moves (reattach), since either can change the right answer.
//!
//! The earlier layout (33 eagerly-created per-length hash maps) cost
//! ~1.6 KiB per node before a single route was installed; at 10⁵ nodes
//! that alone blew the per-host memory budget. The lazy index keeps
//! empty and small tables at one `Vec` while serving big backbone
//! tables at the same O(#prefix-lengths) bound as before.
//!
//! Semantics match [`lpm`](crate::device::router::lpm) exactly, including
//! the tie rule: when the same prefix is inserted twice, the
//! later entry wins (as `max_by_key` returns the last maximum).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::device::router::{lpm, RouteEntry};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Cidr};

/// Cache entries beyond this are assumed to indicate an unusual workload
/// (address sweeps); the cache resets rather than growing unboundedly.
const CACHE_CAP: usize = 1024;

/// Tables at or below this many entries stay index-free: a linear LPM
/// over a handful of entries beats hashing, and costs no heap beyond the
/// entries themselves.
const LINEAR_MAX: usize = 8;

/// The hash index built for large tables: one map over every installed
/// prefix plus the populated-lengths bitmap lookups scan.
#[derive(Debug, Default)]
struct LpmIndex {
    /// `(prefix_len << 32 | network)` → index in `entries` of the winning
    /// route for that exact prefix.
    buckets: HashMap<u64, usize>,
    /// Bit `p` set ⇔ some `/p` route is installed; lets lookups skip
    /// empty prefix lengths without probing the map.
    populated: u64,
}

impl LpmIndex {
    fn key(len: u8, network: u32) -> u64 {
        (u64::from(len) << 32) | u64::from(network)
    }

    fn insert(&mut self, entry: &RouteEntry, ix: usize) {
        let p = entry.prefix.prefix_len();
        self.buckets
            .insert(LpmIndex::key(p, entry.prefix.network().0), ix);
        self.populated |= 1u64 << p;
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.populated = 0;
    }
}

/// A route table offering O(#prefix-lengths) longest-prefix-match lookups
/// and an O(1) hit path for repeated destinations.
///
/// Drop-in replacement for the `Vec<RouteEntry>` + [`lpm`] pair used by
/// routers and hosts: [`RouteTable::entries`] still exposes the routes in
/// insertion order for display and tests.
#[derive(Debug, Default)]
pub struct RouteTable {
    /// All routes in insertion order (what `routes()` accessors expose).
    entries: Vec<RouteEntry>,
    /// The hash index; built lazily once the table outgrows [`LINEAR_MAX`].
    index: Option<Box<LpmIndex>>,
    /// dst → route memo. Interior mutability so `&self` lookups (hosts
    /// route from `&self` contexts) can still fill it; a `World` lives on
    /// one thread so `RefCell` suffices. Only engaged alongside the
    /// index — small tables answer faster than a hash probe anyway.
    cache: RefCell<HashMap<u32, Option<RouteEntry>>>,
}

impl RouteTable {
    /// An empty table. Allocation-free until routes are added.
    pub fn new() -> RouteTable {
        RouteTable {
            entries: Vec::new(),
            index: None,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// Append a route. Later insertions of the same prefix shadow earlier
    /// ones, matching [`lpm`] over the equivalent vector.
    pub fn add(&mut self, entry: RouteEntry) {
        let ix = self.entries.len();
        if self.entries.capacity() == 0 {
            // Hosts hold exactly two routes (on-link + default); Vec's
            // default first allocation of four would waste half of every
            // host's table in a large world.
            self.entries.reserve_exact(2);
        }
        self.entries.push(entry);
        match &mut self.index {
            Some(index) => index.insert(&entry, ix),
            None if self.entries.len() > LINEAR_MAX => {
                let mut index = Box::<LpmIndex>::default();
                for (i, e) in self.entries.iter().enumerate() {
                    index.insert(e, i);
                }
                self.index = Some(index);
            }
            None => {}
        }
        self.invalidate_cache();
    }

    /// Remove every route. A table that built an index keeps it (emptied,
    /// capacity intact): the only callers that clear big tables — route
    /// recomputation above all — refill them to the same size immediately,
    /// and re-growing every router's map from scratch on each pass costs
    /// more than the retained buckets ever hold.
    pub fn clear(&mut self) {
        self.entries.clear();
        if let Some(index) = &mut self.index {
            index.clear();
        }
        self.invalidate_cache();
    }

    /// The routes, in insertion order.
    pub fn entries(&self) -> &[RouteEntry] {
        &self.entries
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Longest-prefix match for `dst`, consulting the cache first.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<RouteEntry> {
        let _prof = crate::profile::scope("route/lookup");
        let Some(index) = &self.index else {
            // Small table: direct linear LPM, no cache traffic.
            return lpm(&self.entries, dst);
        };
        if let Some(hit) = self.cache.borrow().get(&dst.0) {
            crate::profile::add(crate::profile::Counter::RouteCacheHit, 1);
            return *hit;
        }
        crate::profile::add(crate::profile::Counter::RouteCacheMiss, 1);
        let found = self.lookup_indexed(index, dst);
        let mut cache = self.cache.borrow_mut();
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(dst.0, found);
        found
    }

    /// Longest-prefix match for `dst` against the index alone.
    fn lookup_indexed(&self, index: &LpmIndex, dst: Ipv4Addr) -> Option<RouteEntry> {
        let mut lens = index.populated;
        while lens != 0 {
            // Highest populated prefix length first: longest match wins.
            let p = 63 - lens.leading_zeros() as u8;
            let network = Ipv4Cidr::new(dst, p).network().0;
            if let Some(&ix) = index.buckets.get(&LpmIndex::key(p, network)) {
                return Some(self.entries[ix]);
            }
            lens &= !(1u64 << p);
        }
        None
    }

    /// Drop all memoized lookups. Called when the world around the table
    /// changes without the table itself changing — e.g. an interface is
    /// detached or reattached, which can invalidate which routes are
    /// usable even though the entries are identical.
    pub fn invalidate_cache(&self) {
        let mut cache = self.cache.borrow_mut();
        if !cache.is_empty() {
            cache.clear();
        }
    }
}

impl Clone for RouteTable {
    /// Clones rebuild an empty cache: memos are per-instance.
    fn clone(&self) -> RouteTable {
        let mut t = RouteTable::new();
        for &e in &self.entries {
            t.add(e);
        }
        t
    }
}

/// Equality is over the installed routes (caches are memos, not state).
impl PartialEq for RouteTable {
    fn eq(&self, other: &RouteTable) -> bool {
        self.entries == other.entries
    }
}

/// Verifies [`RouteTable::lookup`] against the reference linear [`lpm`].
/// Exposed (hidden) for the parity property test and benches.
#[doc(hidden)]
pub fn lpm_reference(routes: &[RouteEntry], dst: Ipv4Addr) -> Option<RouteEntry> {
    lpm(routes, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn entry(cidr: &str, iface: usize) -> RouteEntry {
        let (a, p) = cidr.split_once('/').unwrap();
        RouteEntry {
            prefix: Ipv4Cidr::new(ip(a), p.parse().unwrap()),
            iface,
            gateway: None,
        }
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = RouteTable::new();
        t.add(entry("0.0.0.0/0", 0));
        t.add(entry("10.0.0.0/8", 1));
        t.add(entry("10.1.0.0/16", 2));
        t.add(entry("10.1.2.0/24", 3));
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().iface, 3);
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().iface, 2);
        assert_eq!(t.lookup(ip("10.9.9.9")).unwrap().iface, 1);
        assert_eq!(t.lookup(ip("8.8.8.8")).unwrap().iface, 0);
    }

    #[test]
    fn duplicate_prefix_last_wins_like_lpm() {
        let mut t = RouteTable::new();
        let routes = [entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)];
        for &r in &routes {
            t.add(r);
        }
        let dst = ip("10.5.5.5");
        assert_eq!(t.lookup(dst), lpm(&routes, dst));
        assert_eq!(t.lookup(dst).unwrap().iface, 2);
    }

    #[test]
    fn cache_serves_and_invalidates() {
        let mut t = RouteTable::new();
        t.add(entry("10.0.0.0/8", 1));
        let dst = ip("10.1.1.1");
        assert_eq!(t.lookup(dst).unwrap().iface, 1);
        // Cached now; adding a more specific route must invalidate it.
        t.add(entry("10.1.0.0/16", 2));
        assert_eq!(t.lookup(dst).unwrap().iface, 2);
        t.clear();
        assert_eq!(t.lookup(dst), None);
    }

    #[test]
    fn no_match_is_cached_too() {
        let mut t = RouteTable::new();
        t.add(entry("10.0.0.0/8", 1));
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
        t.invalidate_cache();
        assert_eq!(t.lookup(ip("192.168.1.1")), None);
    }

    #[test]
    fn small_tables_build_no_index() {
        let mut t = RouteTable::new();
        for i in 0..LINEAR_MAX {
            t.add(entry("10.0.0.0/8", i));
        }
        assert!(t.index.is_none(), "≤ LINEAR_MAX entries stay index-free");
        t.add(entry("10.1.0.0/16", 99));
        assert!(t.index.is_some(), "crossing the threshold builds the index");
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().iface, 99);
        // Every pre-threshold entry is reachable through the index too.
        assert_eq!(t.lookup(ip("10.9.9.9")).unwrap().iface, LINEAR_MAX - 1);
        t.clear();
        let retained = t.index.as_ref().expect("clear keeps the index shell");
        assert!(
            retained.buckets.is_empty() && retained.populated == 0,
            "cleared index must be empty"
        );
        t.add(entry("172.16.0.0/12", 7));
        assert_eq!(
            t.lookup(ip("172.16.1.1")).unwrap().iface,
            7,
            "a retained index serves a refilled table"
        );
    }

    #[test]
    fn matches_linear_lpm_on_a_spread_of_destinations() {
        let mut routes = Vec::new();
        let mut t = RouteTable::new();
        for i in 0..64u32 {
            let e = RouteEntry {
                prefix: Ipv4Cidr::new(Ipv4Addr(i * 0x0101_0101), (i % 33) as u8),
                iface: i as usize,
                gateway: None,
            };
            routes.push(e);
            t.add(e);
        }
        for i in 0..512u32 {
            let dst = Ipv4Addr(i.wrapping_mul(0x9e37_79b9));
            assert_eq!(t.lookup(dst), lpm(&routes, dst), "dst {dst}");
        }
    }
}
