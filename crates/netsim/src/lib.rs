#![warn(missing_docs)]
//! # netsim — deterministic discrete-event IPv4 network simulator
//!
//! This crate is the substrate on which the Internet Mobility 4x4 stack
//! (crate `mip-core`) runs. It provides, from scratch:
//!
//! * **Wire formats** ([`wire`]): Ethernet II, ARP (including gratuitous and
//!   proxy ARP), IPv4 with header checksum and fragmentation/reassembly,
//!   ICMP, UDP and TCP segment formats, and the three encapsulation formats
//!   discussed in the paper (IP-in-IP, Minimal Encapsulation, GRE), plus a
//!   pcap trace writer.
//! * **Topology** ([`link`], [`world`]): point-to-point links and shared
//!   Ethernet segments with latency, bandwidth, MTU and fault injection.
//! * **Devices** ([`device`]): IP routers with longest-prefix-match
//!   forwarding and the policy filters the paper names (source-address
//!   ingress filtering, transit-traffic policy, firewalls), and host network
//!   stacks with ARP caches and a pluggable route-lookup override hook — the
//!   paper's key implementation mechanism ("We override the IP route lookup
//!   routine and replace it with a routine that consults a mobility policy
//!   table before the usual route table", §7).
//! * **Observation** ([`trace`], [`profile`]): per-hop packet traces with
//!   drop reasons, hop counts, path latency and byte accounting, so
//!   experiments can measure everything the paper's figures illustrate —
//!   plus a zero-cost-when-disabled flight recorder (hierarchical
//!   wall-clock scopes, allocation telemetry, scheduler gauges) measuring
//!   the simulator itself.
//!
//! The simulator is synchronous and deterministic: a seeded RNG drives fault
//! injection, and event ties are broken by insertion order, so every run with
//! the same seed produces byte-identical traces. This follows the design of
//! event-driven stacks like smoltcp rather than an async runtime, which keeps
//! tests reproducible.

pub mod arena;
pub mod device;
pub mod event;
pub mod lifecycle;
pub mod link;
pub mod metrics;
pub mod profile;
pub mod route;
pub mod shard;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod wire;
pub mod world;

pub use device::host::{
    App, EncapLayer, FeedbackEvent, Host, HostConfig, MobilityHook, ProtocolHandler, RouteDecision,
};
pub use device::nic::IfaceAddr;
pub use device::router::{FilterAction, FilterRule, FilterWhen, Router, RouterConfig};
pub use device::TxMeta;
pub use event::SchedulerTelemetry;
pub use event::{
    default_scheduler, set_default_scheduler, Event, EventKind, EventQueue, IfaceNo, NodeId,
    SchedulerKind, SchedulerStats, Timer, TimerHandle, TimerToken,
};
pub use lifecycle::{FlowSummary, Lifecycle, PacketLifecycle, PacketOutcome};
pub use link::{FaultInjector, LinkConfig, LinkId, SegmentId};
pub use metrics::{
    Histogram, MetricsRegistry, NodeMetrics, SegmentMetrics, SketchConfig, SketchedMetrics,
};
pub use route::RouteTable;
pub use shard::{default_shards, set_default_shards, ShardStats};
pub use telemetry::{
    InvariantMonitor, InvariantViolation, Reservoir, SketchEntry, SpaceSaving, TelemetryConfig,
};
pub use time::{SimDuration, SimTime};
pub use trace::{
    DropReason, FlowId, PacketId, PacketTrace, TraceEvent, TraceEventKind, TransformKind,
};
pub use wire::encap::EncapFormat;
pub use wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Cidr, Ipv4Packet};
pub use world::{NetCtx, World};
