//! Simulator-wide metrics registry.
//!
//! Where [`crate::trace`] records *every packet event* for forensic queries,
//! this module keeps cheap running *aggregates*: per-node packet and byte
//! counters (sent / forwarded / delivered, drops broken down by
//! [`DropReason`], tunnel bytes broken down by [`EncapFormat`]), per-segment
//! link utilization and queueing, and transport-layer counters (TCP RTT
//! samples and retransmissions, UDP datagram counts) that the transport
//! crate feeds in through [`crate::world::NetCtx::metrics`].
//!
//! The registry is owned by the [`crate::world::World`] and is **disabled by
//! default**: every record method starts with one branch on `enabled` and
//! returns immediately, so a simulation that never calls
//! [`crate::world::World::enable_metrics`] pays only that branch per event.
//! Experiments enable it and read the aggregates at the end of a run —
//! that is what the bench crate's structured `RunReport` JSON is built from.

use serde::Serialize;

use crate::event::NodeId;
use crate::link::{FaultOutcome, SegmentId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEventKind};
use crate::wire::encap::EncapFormat;
use crate::wire::ipv4::Ipv4Packet;

/// All encapsulation formats, in stable index order (see
/// [`encap_index`]).
pub const ENCAP_FORMATS: [EncapFormat; 3] =
    [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre];

/// Stable array index for an encapsulation format.
fn encap_index(f: EncapFormat) -> usize {
    match f {
        EncapFormat::IpInIp => 0,
        EncapFormat::Minimal => 1,
        EncapFormat::Gre => 2,
    }
}

/// The encapsulation format of a tunnel packet, judged by its outer
/// protocol number; `None` for plain (non-tunnel) packets.
fn encap_format_of(pkt: &Ipv4Packet) -> Option<EncapFormat> {
    ENCAP_FORMATS
        .into_iter()
        .find(|f| f.protocol() == pkt.protocol)
}

/// Sub-buckets per octave: each power-of-two range splits into 16 linear
/// sub-buckets, bounding relative quantile error at 1/16 (6.25%).
const HDR_SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const HDR_SUBS: usize = 1 << HDR_SUB_BITS;
/// Values below this are recorded exactly (one bucket per value).
const HDR_PRECISE: u64 = HDR_SUBS as u64;
/// Octaves above the precise range: msb positions 4..=63.
const HDR_OCTAVES: usize = 64 - HDR_SUB_BITS as usize;
/// Total bucket count (976).
const HDR_BUCKETS: usize = HDR_SUBS + HDR_OCTAVES * HDR_SUBS;

/// A fixed-size HDR-style histogram of `u64` samples (microseconds, in
/// every current use). Values below 16 get exact buckets; above that,
/// each power-of-two range splits into 16 linear sub-buckets keyed by the
/// value's top 4 bits below its msb, so quantiles carry at most 6.25%
/// relative error across the full `u64` range. Storage is one inline
/// array — **constant memory regardless of sample count** — and `record`
/// is O(1) with no allocation (a regression test records 10⁶ samples and
/// asserts zero allocator traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HDR_BUCKETS],
    sum: u64,
    n: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::EMPTY
    }
}

/// Bucket index for value `v`.
fn hdr_bucket(v: u64) -> usize {
    if v < HDR_PRECISE {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - HDR_SUB_BITS as usize)) & (HDR_SUBS as u64 - 1)) as usize;
        (msb - (HDR_SUB_BITS as usize - 1)) * HDR_SUBS + sub
    }
}

/// Inclusive upper bound of bucket `ix` — what quantiles report.
fn hdr_bucket_hi(ix: usize) -> u64 {
    if ix < HDR_SUBS {
        ix as u64
    } else {
        let msb = ix / HDR_SUBS + (HDR_SUB_BITS as usize - 1);
        let sub = (ix % HDR_SUBS) as u64;
        let step = 1u64 << (msb - HDR_SUB_BITS as usize);
        (1u64 << msb) + (sub + 1) * step - 1
    }
}

impl Histogram {
    /// A histogram with no samples.
    pub const EMPTY: Histogram = Histogram {
        counts: [0; HDR_BUCKETS],
        sum: 0,
        n: 0,
        min: u64::MAX,
        max: 0,
    };

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[hdr_bucket(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Approximate percentile (`p` in 0..=100): the upper bound of the
    /// sub-bucket containing the `p`-th sample (≤ 6.25% high). `None`
    /// when empty.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let rank = (self.n - 1) * u64::from(p.min(100)) / 100;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                // Upper bound of bucket i, clamped to the observed range.
                return Some(hdr_bucket_hi(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("count".into(), self.n.to_value()),
            ("sum".into(), self.sum.to_value()),
            ("mean".into(), self.mean().to_value()),
            ("min".into(), self.min().unwrap_or(0).to_value()),
            ("max".into(), self.max().unwrap_or(0).to_value()),
            ("p50".into(), self.percentile(50).unwrap_or(0).to_value()),
            ("p99".into(), self.percentile(99).unwrap_or(0).to_value()),
        ])
    }
}

/// TCP counters for one node (fed by the transport crate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TcpMetrics {
    /// Data/control segments handed to IP, including retransmissions.
    pub segments_sent: u64,
    /// Of those, how many were retransmissions.
    pub retransmissions: u64,
    /// Segments received and accepted by a connection.
    pub segments_received: u64,
    /// Smoothed-RTT inputs: one sample per measured round trip, in µs.
    pub rtt_us: Histogram,
}

/// UDP counters for one node (fed by the transport crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpMetrics {
    /// Datagrams sent.
    pub datagrams_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Datagrams delivered to a bound socket.
    pub datagrams_received: u64,
    /// Payload bytes delivered to a bound socket.
    pub bytes_received: u64,
}

/// Running counters for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// Packets originated here and handed to a link.
    pub packets_sent: u64,
    /// Packets transited (router forwarding or agent re-tunnelling).
    pub packets_forwarded: u64,
    /// Packets delivered to a local protocol here.
    pub packets_delivered: u64,
    /// Wire bytes of sent packets.
    pub bytes_sent: u64,
    /// Wire bytes of forwarded packets.
    pub bytes_forwarded: u64,
    /// Wire bytes of locally delivered packets.
    pub bytes_delivered: u64,
    /// Drops at this node, indexed by [`DropReason::index`].
    drops: [u64; DropReason::ALL.len()],
    /// Transform events at this node (encapsulations, decapsulations,
    /// source-route rewrites, relays, retransmission clones).
    pub transforms: u64,
    /// Wire bytes of sent/forwarded *tunnel* packets, by encap format
    /// (indexed per [`ENCAP_FORMATS`] order).
    encap_bytes: [u64; ENCAP_FORMATS.len()],
    /// TCP counters (zero unless the transport crate runs on this node).
    pub tcp: TcpMetrics,
    /// UDP counters (zero unless the transport crate runs on this node).
    pub udp: UdpMetrics,
}

const EMPTY_NODE: NodeMetrics = NodeMetrics {
    packets_sent: 0,
    packets_forwarded: 0,
    packets_delivered: 0,
    bytes_sent: 0,
    bytes_forwarded: 0,
    bytes_delivered: 0,
    drops: [0; DropReason::ALL.len()],
    transforms: 0,
    encap_bytes: [0; ENCAP_FORMATS.len()],
    tcp: TcpMetrics {
        segments_sent: 0,
        retransmissions: 0,
        segments_received: 0,
        rtt_us: Histogram::EMPTY,
    },
    udp: UdpMetrics {
        datagrams_sent: 0,
        bytes_sent: 0,
        datagrams_received: 0,
        bytes_received: 0,
    },
};

impl Default for NodeMetrics {
    fn default() -> Self {
        EMPTY_NODE
    }
}

impl NodeMetrics {
    /// Drops at this node for one reason.
    pub fn drop_count(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()]
    }

    /// Total drops at this node, all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Every (reason, count) pair with a nonzero count.
    pub fn drops_by_reason(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL
            .into_iter()
            .map(|r| (r, self.drops[r.index()]))
            .filter(|&(_, n)| n > 0)
    }

    /// Sent/forwarded tunnel-packet wire bytes for one encap format.
    pub fn encap_bytes(&self, format: EncapFormat) -> u64 {
        self.encap_bytes[encap_index(format)]
    }
}

impl serde::Serialize for NodeMetrics {
    fn to_value(&self) -> serde::Value {
        let drops: Vec<(String, serde::Value)> = self
            .drops_by_reason()
            .map(|(r, n)| (r.tag().to_string(), n.to_value()))
            .collect();
        let encap: Vec<(String, serde::Value)> = ENCAP_FORMATS
            .into_iter()
            .map(|f| (format!("{f:?}"), self.encap_bytes(f).to_value()))
            .filter(|(_, v)| *v != serde::Value::U64(0))
            .collect();
        serde::Value::Object(vec![
            ("packets_sent".into(), self.packets_sent.to_value()),
            (
                "packets_forwarded".into(),
                self.packets_forwarded.to_value(),
            ),
            (
                "packets_delivered".into(),
                self.packets_delivered.to_value(),
            ),
            ("bytes_sent".into(), self.bytes_sent.to_value()),
            ("bytes_forwarded".into(), self.bytes_forwarded.to_value()),
            ("bytes_delivered".into(), self.bytes_delivered.to_value()),
            ("drops".into(), serde::Value::Object(drops)),
            ("transforms".into(), self.transforms.to_value()),
            ("encap_bytes".into(), serde::Value::Object(encap)),
            (
                "tcp".into(),
                serde::Value::Object(vec![
                    ("segments_sent".into(), self.tcp.segments_sent.to_value()),
                    (
                        "retransmissions".into(),
                        self.tcp.retransmissions.to_value(),
                    ),
                    (
                        "segments_received".into(),
                        self.tcp.segments_received.to_value(),
                    ),
                    ("rtt_us".into(), self.tcp.rtt_us.to_value()),
                ]),
            ),
            (
                "udp".into(),
                serde::Value::Object(vec![
                    ("datagrams_sent".into(), self.udp.datagrams_sent.to_value()),
                    ("bytes_sent".into(), self.udp.bytes_sent.to_value()),
                    (
                        "datagrams_received".into(),
                        self.udp.datagrams_received.to_value(),
                    ),
                    ("bytes_received".into(), self.udp.bytes_received.to_value()),
                ]),
            ),
        ])
    }
}

/// Running counters for one segment (link).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentMetrics {
    /// Frames that occupied the wire (including corrupted ones).
    pub frames: u64,
    /// Bytes that occupied the wire.
    pub bytes: u64,
    /// Frames that never made it onto the wire (fault drop or oversize).
    pub wire_drops: u64,
    /// Frames corrupted in flight and rejected by the receivers' FCS.
    pub crc_drops: u64,
    /// Cumulative time the medium spent serializing frames — divide by
    /// elapsed simulated time for utilization.
    pub busy: SimDuration,
    /// Sender-side queueing delay seen by each frame (µs): how long the
    /// medium was already committed when the frame was offered.
    pub queue_wait_us: Histogram,
}

impl SegmentMetrics {
    /// Fraction of `elapsed` the medium spent busy (0 when `elapsed` is 0).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_micros() == 0 {
            0.0
        } else {
            self.busy.as_micros() as f64 / elapsed.as_micros() as f64
        }
    }
}

impl serde::Serialize for SegmentMetrics {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("frames".into(), self.frames.to_value()),
            ("bytes".into(), self.bytes.to_value()),
            ("wire_drops".into(), self.wire_drops.to_value()),
            ("crc_drops".into(), self.crc_drops.to_value()),
            ("busy_us".into(), self.busy.as_micros().to_value()),
            ("queue_wait_us".into(), self.queue_wait_us.to_value()),
        ])
    }
}

/// The registry: one [`NodeMetrics`] per node and one [`SegmentMetrics`]
/// per segment, lazily grown as ids are first seen.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    nodes: Vec<NodeMetrics>,
    segments: Vec<SegmentMetrics>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            nodes: Vec::new(),
            segments: Vec::new(),
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off (already-recorded counts are kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Zero every counter.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.segments.clear();
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeMetrics {
        if self.nodes.len() <= id.0 {
            self.nodes.resize(id.0 + 1, NodeMetrics::default());
        }
        &mut self.nodes[id.0]
    }

    fn segment_mut(&mut self, id: SegmentId) -> &mut SegmentMetrics {
        if self.segments.len() <= id.0 {
            self.segments.resize(id.0 + 1, SegmentMetrics::default());
        }
        &mut self.segments[id.0]
    }

    /// Counters for one node (zeros if it never recorded anything).
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        self.nodes.get(id.0).unwrap_or(&EMPTY_NODE)
    }

    /// Counters for one segment (zeros if it never recorded anything).
    pub fn segment(&self, id: SegmentId) -> &SegmentMetrics {
        static EMPTY_SEGMENT: SegmentMetrics = SegmentMetrics {
            frames: 0,
            bytes: 0,
            wire_drops: 0,
            crc_drops: 0,
            busy: SimDuration::ZERO,
            queue_wait_us: Histogram::EMPTY,
        };
        self.segments.get(id.0).unwrap_or(&EMPTY_SEGMENT)
    }

    /// Node ids that have recorded at least one event, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Segment ids that have recorded at least one event, in id order.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len()).map(SegmentId)
    }

    /// Drops across all nodes, summed by reason (nonzero reasons only).
    pub fn total_drops_by_reason(&self) -> Vec<(DropReason, u64)> {
        let mut totals = [0u64; DropReason::ALL.len()];
        for n in &self.nodes {
            for r in DropReason::ALL {
                totals[r.index()] += n.drop_count(r);
            }
        }
        DropReason::ALL
            .into_iter()
            .map(|r| (r, totals[r.index()]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    // ---- recording (each entry point starts with the enabled check) -------

    /// Record one packet event at `node`. Called from
    /// [`crate::world::NetCtx::trace_packet`], the choke point every
    /// send / forward / delivery / drop already flows through.
    #[inline]
    pub fn record_packet(&mut self, node: NodeId, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        let wire_len = pkt.wire_len() as u64;
        let tunnel = encap_format_of(pkt);
        let m = self.node_mut(node);
        match kind {
            TraceEventKind::Sent => {
                m.packets_sent += 1;
                m.bytes_sent += wire_len;
            }
            TraceEventKind::Forwarded => {
                m.packets_forwarded += 1;
                m.bytes_forwarded += wire_len;
            }
            TraceEventKind::DeliveredLocal => {
                m.packets_delivered += 1;
                m.bytes_delivered += wire_len;
            }
            TraceEventKind::Dropped(reason) => {
                m.drops[reason.index()] += 1;
            }
            // Not a wire event: the packet changed shape inside the node.
            TraceEventKind::Transformed(_) => {
                m.transforms += 1;
            }
        }
        if matches!(kind, TraceEventKind::Sent | TraceEventKind::Forwarded) {
            if let Some(f) = tunnel {
                m.encap_bytes[encap_index(f)] += wire_len;
            }
        }
    }

    /// Record one frame offered to `seg`. Called from
    /// [`crate::world::NetCtx::transmit`]; `queue_wait` is how long the
    /// medium was already committed when the frame arrived, and
    /// `serialize` the time the frame will hold it.
    #[inline]
    pub fn record_transmit(
        &mut self,
        seg: SegmentId,
        wire_len: usize,
        queue_wait: SimDuration,
        serialize: SimDuration,
        outcome: FaultOutcome,
    ) {
        if !self.enabled {
            return;
        }
        let m = self.segment_mut(seg);
        match outcome {
            FaultOutcome::Drop => {
                m.wire_drops += 1;
                return;
            }
            FaultOutcome::Corrupt => m.crc_drops += 1,
            FaultOutcome::Deliver | FaultOutcome::Duplicate => {}
        }
        m.frames += 1;
        m.bytes += wire_len as u64;
        m.busy = m.busy + serialize;
        m.queue_wait_us.record(queue_wait.as_micros());
    }

    /// Record a TCP segment transmission at `node`.
    #[inline]
    pub fn record_tcp_segment_sent(&mut self, node: NodeId, retransmission: bool) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_mut(node).tcp;
        m.segments_sent += 1;
        if retransmission {
            m.retransmissions += 1;
        }
    }

    /// Record a TCP segment accepted by a connection at `node`.
    #[inline]
    pub fn record_tcp_segment_received(&mut self, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.node_mut(node).tcp.segments_received += 1;
    }

    /// Record one measured TCP round-trip time at `node`.
    #[inline]
    pub fn record_tcp_rtt(&mut self, node: NodeId, rtt: SimDuration) {
        if !self.enabled {
            return;
        }
        self.node_mut(node).tcp.rtt_us.record(rtt.as_micros());
    }

    /// Record a UDP datagram sent from `node`.
    #[inline]
    pub fn record_udp_sent(&mut self, node: NodeId, payload_bytes: usize) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_mut(node).udp;
        m.datagrams_sent += 1;
        m.bytes_sent += payload_bytes as u64;
    }

    /// Record a UDP datagram delivered to a bound socket at `node`.
    #[inline]
    pub fn record_udp_received(&mut self, node: NodeId, payload_bytes: usize) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_mut(node).udp;
        m.datagrams_received += 1;
        m.bytes_received += payload_bytes as u64;
    }

    /// A serializable snapshot of every counter, labelling nodes with
    /// `names` (by `NodeId` index) where provided and taking `now` so
    /// segment utilization can be derived by consumers.
    pub fn snapshot(&self, names: &[String], now: SimTime) -> serde::Value {
        let nodes: Vec<(String, serde::Value)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let label = names.get(i).cloned().unwrap_or_else(|| format!("node{i}"));
                (label, m.to_value())
            })
            .collect();
        let segments: Vec<(String, serde::Value)> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut v = match m.to_value() {
                    serde::Value::Object(fields) => fields,
                    _ => unreachable!("segment snapshot is an object"),
                };
                v.push((
                    "utilization".into(),
                    m.utilization(now.since(SimTime::ZERO)).to_value(),
                ));
                (format!("segment{i}"), serde::Value::Object(v))
            })
            .collect();
        let drops: Vec<(String, serde::Value)> = self
            .total_drops_by_reason()
            .into_iter()
            .map(|(r, n)| (r.to_string(), n.to_value()))
            .collect();
        serde::Value::Object(vec![
            ("sim_time_us".into(), now.as_micros().to_value()),
            ("nodes".into(), serde::Value::Object(nodes)),
            ("segments".into(), serde::Value::Object(segments)),
            ("total_drops".into(), serde::Value::Object(drops)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encap::encapsulate;
    use crate::wire::ipv4::IpProtocol;
    use bytes::Bytes;

    fn ip(s: &str) -> crate::wire::ipv4::Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt() -> Ipv4Packet {
        Ipv4Packet::new(
            ip("1.1.1.1"),
            ip("2.2.2.2"),
            IpProtocol::Udp,
            Bytes::from_static(b"hi"),
        )
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricsRegistry::new(false);
        reg.record_packet(NodeId(3), TraceEventKind::Sent, &pkt());
        reg.record_udp_sent(NodeId(3), 100);
        assert_eq!(reg.node(NodeId(3)).packets_sent, 0);
        assert_eq!(reg.node(NodeId(3)).udp.datagrams_sent, 0);
        assert_eq!(reg.node_ids().count(), 0, "no allocation while disabled");
    }

    #[test]
    fn packet_counters_by_kind_and_reason() {
        let mut reg = MetricsRegistry::new(true);
        let p = pkt();
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &p);
        reg.record_packet(NodeId(1), TraceEventKind::Forwarded, &p);
        reg.record_packet(NodeId(2), TraceEventKind::DeliveredLocal, &p);
        reg.record_packet(NodeId(1), TraceEventKind::Dropped(DropReason::NoRoute), &p);
        reg.record_packet(NodeId(1), TraceEventKind::Dropped(DropReason::NoRoute), &p);
        assert_eq!(reg.node(NodeId(0)).packets_sent, 1);
        assert_eq!(reg.node(NodeId(0)).bytes_sent, p.wire_len() as u64);
        assert_eq!(reg.node(NodeId(1)).packets_forwarded, 1);
        assert_eq!(reg.node(NodeId(2)).packets_delivered, 1);
        assert_eq!(reg.node(NodeId(1)).drop_count(DropReason::NoRoute), 2);
        assert_eq!(reg.node(NodeId(1)).total_drops(), 2);
        assert_eq!(reg.total_drops_by_reason(), vec![(DropReason::NoRoute, 2)]);
    }

    #[test]
    fn tunnel_bytes_split_by_format() {
        let mut reg = MetricsRegistry::new(true);
        let inner = pkt();
        for f in ENCAP_FORMATS {
            let outer = encapsulate(f, ip("9.9.9.9"), ip("8.8.8.8"), &inner, 0).unwrap();
            reg.record_packet(NodeId(0), TraceEventKind::Sent, &outer);
            assert_eq!(reg.node(NodeId(0)).encap_bytes(f), outer.wire_len() as u64);
        }
        // Plain packets count toward no format.
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &inner);
        let total: u64 = ENCAP_FORMATS
            .iter()
            .map(|&f| reg.node(NodeId(0)).encap_bytes(f))
            .sum();
        assert!(total < reg.node(NodeId(0)).bytes_sent);
    }

    #[test]
    fn transmit_counters_follow_outcomes() {
        let mut reg = MetricsRegistry::new(true);
        let seg = SegmentId(0);
        let us = SimDuration::from_micros;
        reg.record_transmit(seg, 100, us(0), us(80), FaultOutcome::Deliver);
        reg.record_transmit(seg, 100, us(80), us(80), FaultOutcome::Corrupt);
        reg.record_transmit(seg, 100, us(0), us(80), FaultOutcome::Drop);
        let m = reg.segment(seg);
        assert_eq!(m.frames, 2, "dropped frame never occupied the wire");
        assert_eq!(m.bytes, 200);
        assert_eq!(m.crc_drops, 1);
        assert_eq!(m.wire_drops, 1);
        assert_eq!(m.busy, us(160));
        assert_eq!(m.queue_wait_us.count(), 2);
        assert_eq!(m.queue_wait_us.max(), Some(80));
        assert!((m.utilization(us(1600)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn transport_counters() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_tcp_segment_sent(NodeId(0), false);
        reg.record_tcp_segment_sent(NodeId(0), true);
        reg.record_tcp_segment_received(NodeId(0));
        reg.record_tcp_rtt(NodeId(0), SimDuration::from_millis(30));
        reg.record_udp_sent(NodeId(1), 512);
        reg.record_udp_received(NodeId(2), 512);
        let t = &reg.node(NodeId(0)).tcp;
        assert_eq!(
            (t.segments_sent, t.retransmissions, t.segments_received),
            (2, 1, 1)
        );
        assert_eq!(t.rtt_us.count(), 1);
        assert_eq!(t.rtt_us.mean(), 30_000.0);
        assert_eq!(reg.node(NodeId(1)).udp.datagrams_sent, 1);
        assert_eq!(reg.node(NodeId(2)).udp.bytes_received, 512);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(50), None);
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.percentile(50).unwrap();
        assert!(p50 <= 100, "p50 was {p50}");
        assert!(h.percentile(100).unwrap() >= 512);
        // Degenerate distribution: every percentile is the single value.
        let mut one = Histogram::default();
        one.record(42);
        assert_eq!(one.percentile(0), Some(42));
        assert_eq!(one.percentile(100), Some(42));
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &pkt());
        reg.record_transmit(
            SegmentId(0),
            64,
            SimDuration::ZERO,
            SimDuration::from_micros(51),
            FaultOutcome::Deliver,
        );
        let v = reg.snapshot(&["alice".to_string()], SimTime(1_000));
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"alice\""));
        assert!(json.contains("\"packets_sent\":1"));
        assert!(json.contains("\"segment0\""));
        assert!(json.contains("\"utilization\""));
        assert!(json.contains("\"sim_time_us\":1000"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &pkt());
        reg.clear();
        assert_eq!(reg.node(NodeId(0)).packets_sent, 0);
        assert!(reg.enabled(), "clear keeps the enabled flag");
    }
}
