//! Simulator-wide metrics registry.
//!
//! Where [`crate::trace`] records *every packet event* for forensic queries,
//! this module keeps cheap running *aggregates*: per-node packet and byte
//! counters (sent / forwarded / delivered, drops broken down by
//! [`DropReason`], tunnel bytes broken down by [`EncapFormat`]), per-segment
//! link utilization and queueing, and transport-layer counters (TCP RTT
//! samples and retransmissions, UDP datagram counts) that the transport
//! crate feeds in through [`crate::world::NetCtx::metrics`].
//!
//! The registry is owned by the [`crate::world::World`] and is **disabled by
//! default**: every record method starts with one branch on `enabled` and
//! returns immediately, so a simulation that never calls
//! [`crate::world::World::enable_metrics`] pays only that branch per event.
//! Experiments enable it and read the aggregates at the end of a run —
//! that is what the bench crate's structured `RunReport` JSON is built from.

use serde::Serialize;

use crate::event::NodeId;
use crate::link::{FaultOutcome, SegmentId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, TraceEventKind};
use crate::wire::encap::EncapFormat;
use crate::wire::ipv4::Ipv4Packet;

/// All encapsulation formats, in stable index order (see
/// [`encap_index`]).
pub const ENCAP_FORMATS: [EncapFormat; 3] =
    [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre];

/// Stable array index for an encapsulation format.
fn encap_index(f: EncapFormat) -> usize {
    match f {
        EncapFormat::IpInIp => 0,
        EncapFormat::Minimal => 1,
        EncapFormat::Gre => 2,
    }
}

/// The encapsulation format of a tunnel packet, judged by its outer
/// protocol number; `None` for plain (non-tunnel) packets.
fn encap_format_of(pkt: &Ipv4Packet) -> Option<EncapFormat> {
    ENCAP_FORMATS
        .into_iter()
        .find(|f| f.protocol() == pkt.protocol)
}

/// Apply one packet event to a counter block — shared by the dense
/// per-node path and the sketched global-totals path so both count
/// identically (the exact/sketched agreement tests depend on this).
#[inline]
fn apply_packet(
    m: &mut NodeMetrics,
    kind: TraceEventKind,
    wire_len: u64,
    tunnel: Option<EncapFormat>,
) {
    match kind {
        TraceEventKind::Sent => {
            m.packets_sent += 1;
            m.bytes_sent += wire_len;
        }
        TraceEventKind::Forwarded => {
            m.packets_forwarded += 1;
            m.bytes_forwarded += wire_len;
        }
        TraceEventKind::DeliveredLocal => {
            m.packets_delivered += 1;
            m.bytes_delivered += wire_len;
        }
        TraceEventKind::Dropped(reason) => {
            m.drops[reason.index()] += 1;
        }
        // Not a wire event: the packet changed shape inside the node.
        TraceEventKind::Transformed(_) => {
            m.transforms += 1;
        }
    }
    if matches!(kind, TraceEventKind::Sent | TraceEventKind::Forwarded) {
        if let Some(f) = tunnel {
            m.encap_bytes[encap_index(f)] += wire_len;
        }
    }
}

/// Sub-buckets per octave: each power-of-two range splits into 16 linear
/// sub-buckets, bounding relative quantile error at 1/16 (6.25%).
const HDR_SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const HDR_SUBS: usize = 1 << HDR_SUB_BITS;
/// Values below this are recorded exactly (one bucket per value).
const HDR_PRECISE: u64 = HDR_SUBS as u64;
/// Octaves above the precise range: msb positions 4..=63.
const HDR_OCTAVES: usize = 64 - HDR_SUB_BITS as usize;
/// Total bucket count (976).
const HDR_BUCKETS: usize = HDR_SUBS + HDR_OCTAVES * HDR_SUBS;

/// A fixed-size HDR-style histogram of `u64` samples (microseconds, in
/// every current use). Values below 16 get exact buckets; above that,
/// each power-of-two range splits into 16 linear sub-buckets keyed by the
/// value's top 4 bits below its msb, so quantiles carry at most 6.25%
/// relative error across the full `u64` range. Storage is one inline
/// array — **constant memory regardless of sample count** — and `record`
/// is O(1) with no allocation (a regression test records 10⁶ samples and
/// asserts zero allocator traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HDR_BUCKETS],
    sum: u64,
    n: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::EMPTY
    }
}

/// Bucket index for value `v`.
fn hdr_bucket(v: u64) -> usize {
    if v < HDR_PRECISE {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - HDR_SUB_BITS as usize)) & (HDR_SUBS as u64 - 1)) as usize;
        (msb - (HDR_SUB_BITS as usize - 1)) * HDR_SUBS + sub
    }
}

/// Inclusive upper bound of bucket `ix` — what quantiles report.
fn hdr_bucket_hi(ix: usize) -> u64 {
    if ix < HDR_SUBS {
        ix as u64
    } else {
        let msb = ix / HDR_SUBS + (HDR_SUB_BITS as usize - 1);
        let sub = (ix % HDR_SUBS) as u64;
        let step = 1u64 << (msb - HDR_SUB_BITS as usize);
        (1u64 << msb) + (sub + 1) * step - 1
    }
}

impl Histogram {
    /// A histogram with no samples.
    pub const EMPTY: Histogram = Histogram {
        counts: [0; HDR_BUCKETS],
        sum: 0,
        n: 0,
        min: u64::MAX,
        max: 0,
    };

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[hdr_bucket(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.n += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.n > 0).then_some(self.max)
    }

    /// Fold another histogram into this one. Bucket layouts are
    /// identical by construction, so the merge is elementwise and the
    /// result is exactly the histogram that would have recorded both
    /// sample streams — sharded/parallel worlds combine telemetry
    /// without re-recording.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Approximate percentile (`p` in 0..=100): the upper bound of the
    /// sub-bucket containing the `p`-th sample (≤ 6.25% high). `None`
    /// when empty.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let rank = (self.n - 1) * u64::from(p.min(100)) / 100;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                // Upper bound of bucket i, clamped to the observed range.
                return Some(hdr_bucket_hi(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("count".into(), self.n.to_value()),
            ("sum".into(), self.sum.to_value()),
            ("mean".into(), self.mean().to_value()),
            ("min".into(), self.min().unwrap_or(0).to_value()),
            ("max".into(), self.max().unwrap_or(0).to_value()),
            ("p50".into(), self.percentile(50).unwrap_or(0).to_value()),
            ("p99".into(), self.percentile(99).unwrap_or(0).to_value()),
        ])
    }
}

/// TCP counters for one node (fed by the transport crate).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TcpMetrics {
    /// Data/control segments handed to IP, including retransmissions.
    pub segments_sent: u64,
    /// Of those, how many were retransmissions.
    pub retransmissions: u64,
    /// Segments received and accepted by a connection.
    pub segments_received: u64,
    /// Smoothed-RTT inputs: one sample per measured round trip, in µs.
    pub rtt_us: Histogram,
}

/// UDP counters for one node (fed by the transport crate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpMetrics {
    /// Datagrams sent.
    pub datagrams_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Datagrams delivered to a bound socket.
    pub datagrams_received: u64,
    /// Payload bytes delivered to a bound socket.
    pub bytes_received: u64,
}

/// Running counters for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// Packets originated here and handed to a link.
    pub packets_sent: u64,
    /// Packets transited (router forwarding or agent re-tunnelling).
    pub packets_forwarded: u64,
    /// Packets delivered to a local protocol here.
    pub packets_delivered: u64,
    /// Wire bytes of sent packets.
    pub bytes_sent: u64,
    /// Wire bytes of forwarded packets.
    pub bytes_forwarded: u64,
    /// Wire bytes of locally delivered packets.
    pub bytes_delivered: u64,
    /// Drops at this node, indexed by [`DropReason::index`].
    drops: [u64; DropReason::ALL.len()],
    /// Transform events at this node (encapsulations, decapsulations,
    /// source-route rewrites, relays, retransmission clones).
    pub transforms: u64,
    /// Wire bytes of sent/forwarded *tunnel* packets, by encap format
    /// (indexed per [`ENCAP_FORMATS`] order).
    encap_bytes: [u64; ENCAP_FORMATS.len()],
    /// TCP counters (zero unless the transport crate runs on this node).
    pub tcp: TcpMetrics,
    /// UDP counters (zero unless the transport crate runs on this node).
    pub udp: UdpMetrics,
}

const EMPTY_NODE: NodeMetrics = NodeMetrics {
    packets_sent: 0,
    packets_forwarded: 0,
    packets_delivered: 0,
    bytes_sent: 0,
    bytes_forwarded: 0,
    bytes_delivered: 0,
    drops: [0; DropReason::ALL.len()],
    transforms: 0,
    encap_bytes: [0; ENCAP_FORMATS.len()],
    tcp: TcpMetrics {
        segments_sent: 0,
        retransmissions: 0,
        segments_received: 0,
        rtt_us: Histogram::EMPTY,
    },
    udp: UdpMetrics {
        datagrams_sent: 0,
        bytes_sent: 0,
        datagrams_received: 0,
        bytes_received: 0,
    },
};

impl Default for NodeMetrics {
    fn default() -> Self {
        EMPTY_NODE
    }
}

impl NodeMetrics {
    /// Drops at this node for one reason.
    pub fn drop_count(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()]
    }

    /// Total drops at this node, all reasons.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Every (reason, count) pair with a nonzero count.
    pub fn drops_by_reason(&self) -> impl Iterator<Item = (DropReason, u64)> + '_ {
        DropReason::ALL
            .into_iter()
            .map(|r| (r, self.drops[r.index()]))
            .filter(|&(_, n)| n > 0)
    }

    /// Sent/forwarded tunnel-packet wire bytes for one encap format.
    pub fn encap_bytes(&self, format: EncapFormat) -> u64 {
        self.encap_bytes[encap_index(format)]
    }

    /// Fold another node's counters into this one (all counters add;
    /// histograms merge elementwise).
    pub fn merge(&mut self, other: &NodeMetrics) {
        self.packets_sent += other.packets_sent;
        self.packets_forwarded += other.packets_forwarded;
        self.packets_delivered += other.packets_delivered;
        self.bytes_sent += other.bytes_sent;
        self.bytes_forwarded += other.bytes_forwarded;
        self.bytes_delivered += other.bytes_delivered;
        for (d, o) in self.drops.iter_mut().zip(other.drops.iter()) {
            *d += o;
        }
        self.transforms += other.transforms;
        for (e, o) in self.encap_bytes.iter_mut().zip(other.encap_bytes.iter()) {
            *e += o;
        }
        self.tcp.segments_sent += other.tcp.segments_sent;
        self.tcp.retransmissions += other.tcp.retransmissions;
        self.tcp.segments_received += other.tcp.segments_received;
        self.tcp.rtt_us.merge(&other.tcp.rtt_us);
        self.udp.datagrams_sent += other.udp.datagrams_sent;
        self.udp.bytes_sent += other.udp.bytes_sent;
        self.udp.datagrams_received += other.udp.datagrams_received;
        self.udp.bytes_received += other.udp.bytes_received;
    }
}

impl serde::Serialize for NodeMetrics {
    fn to_value(&self) -> serde::Value {
        let drops: Vec<(String, serde::Value)> = self
            .drops_by_reason()
            .map(|(r, n)| (r.tag().to_string(), n.to_value()))
            .collect();
        let encap: Vec<(String, serde::Value)> = ENCAP_FORMATS
            .into_iter()
            .map(|f| (format!("{f:?}"), self.encap_bytes(f).to_value()))
            .filter(|(_, v)| *v != serde::Value::U64(0))
            .collect();
        serde::Value::Object(vec![
            ("packets_sent".into(), self.packets_sent.to_value()),
            (
                "packets_forwarded".into(),
                self.packets_forwarded.to_value(),
            ),
            (
                "packets_delivered".into(),
                self.packets_delivered.to_value(),
            ),
            ("bytes_sent".into(), self.bytes_sent.to_value()),
            ("bytes_forwarded".into(), self.bytes_forwarded.to_value()),
            ("bytes_delivered".into(), self.bytes_delivered.to_value()),
            ("drops".into(), serde::Value::Object(drops)),
            ("transforms".into(), self.transforms.to_value()),
            ("encap_bytes".into(), serde::Value::Object(encap)),
            (
                "tcp".into(),
                serde::Value::Object(vec![
                    ("segments_sent".into(), self.tcp.segments_sent.to_value()),
                    (
                        "retransmissions".into(),
                        self.tcp.retransmissions.to_value(),
                    ),
                    (
                        "segments_received".into(),
                        self.tcp.segments_received.to_value(),
                    ),
                    ("rtt_us".into(), self.tcp.rtt_us.to_value()),
                ]),
            ),
            (
                "udp".into(),
                serde::Value::Object(vec![
                    ("datagrams_sent".into(), self.udp.datagrams_sent.to_value()),
                    ("bytes_sent".into(), self.udp.bytes_sent.to_value()),
                    (
                        "datagrams_received".into(),
                        self.udp.datagrams_received.to_value(),
                    ),
                    ("bytes_received".into(), self.udp.bytes_received.to_value()),
                ]),
            ),
        ])
    }
}

/// Running counters for one segment (link).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentMetrics {
    /// Frames that occupied the wire (including corrupted ones).
    pub frames: u64,
    /// Bytes that occupied the wire.
    pub bytes: u64,
    /// Frames that never made it onto the wire (fault drop or oversize).
    pub wire_drops: u64,
    /// Frames corrupted in flight and rejected by the receivers' FCS.
    pub crc_drops: u64,
    /// Cumulative time the medium spent serializing frames — divide by
    /// elapsed simulated time for utilization.
    pub busy: SimDuration,
    /// Sender-side queueing delay seen by each frame (µs): how long the
    /// medium was already committed when the frame was offered.
    pub queue_wait_us: Histogram,
}

impl SegmentMetrics {
    /// Fraction of `elapsed` the medium spent busy (0 when `elapsed` is 0).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_micros() == 0 {
            0.0
        } else {
            self.busy.as_micros() as f64 / elapsed.as_micros() as f64
        }
    }

    /// Fold another segment's counters into this one.
    pub fn merge(&mut self, other: &SegmentMetrics) {
        self.frames += other.frames;
        self.bytes += other.bytes;
        self.wire_drops += other.wire_drops;
        self.crc_drops += other.crc_drops;
        self.busy = self.busy + other.busy;
        self.queue_wait_us.merge(&other.queue_wait_us);
    }
}

impl serde::Serialize for SegmentMetrics {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("frames".into(), self.frames.to_value()),
            ("bytes".into(), self.bytes.to_value()),
            ("wire_drops".into(), self.wire_drops.to_value()),
            ("crc_drops".into(), self.crc_drops.to_value()),
            ("busy_us".into(), self.busy.as_micros().to_value()),
            ("queue_wait_us".into(), self.queue_wait_us.to_value()),
        ])
    }
}

/// Parameters for the registry's sketched (collapsed) mode — see
/// [`MetricsRegistry::arm_sketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// Distinct-node count above which dense per-node storage collapses.
    pub node_threshold: usize,
    /// Slots in each heavy-hitter sketch.
    pub topk: usize,
    /// RTT exemplar reservoir capacity.
    pub reservoir: usize,
    /// Seed for the exemplar reservoir.
    pub seed: u64,
}

impl Default for SketchConfig {
    fn default() -> SketchConfig {
        let t = crate::telemetry::TelemetryConfig::default();
        SketchConfig {
            node_threshold: t.sketch_node_threshold,
            topk: t.topk,
            reservoir: t.reservoir,
            seed: t.seed,
        }
    }
}

/// Collapsed storage: global totals plus fixed-size sketches. Memory is
/// O(topk + reservoir) regardless of node, segment or flow count.
#[derive(Debug)]
pub struct SketchedMetrics {
    /// The parameters this collapse was armed with.
    pub cfg: SketchConfig,
    /// Aggregate of every node's counters (what dense mode would sum to).
    pub totals: NodeMetrics,
    /// Aggregate of every segment's counters.
    pub seg_totals: SegmentMetrics,
    /// Heavy-hitter nodes, weighted by packet events (sent + forwarded +
    /// delivered + dropped + transformed).
    pub node_hitters: crate::telemetry::SpaceSaving<NodeId>,
    /// Heavy-hitter flows by normalized outer header (wire events only),
    /// see [`crate::telemetry::flow_label`].
    pub flow_hitters: crate::telemetry::SpaceSaving<crate::telemetry::FlowLabel>,
    /// Seeded uniform sample of measured TCP RTTs (µs) — exact exemplars
    /// that survive even though per-node histograms are gone.
    pub rtt_exemplars: crate::telemetry::Reservoir<u64>,
}

impl SketchedMetrics {
    fn new(cfg: SketchConfig) -> SketchedMetrics {
        SketchedMetrics {
            cfg,
            totals: NodeMetrics::default(),
            seg_totals: SegmentMetrics::default(),
            node_hitters: crate::telemetry::SpaceSaving::new(cfg.topk),
            flow_hitters: crate::telemetry::SpaceSaving::new(cfg.topk),
            rtt_exemplars: crate::telemetry::Reservoir::new(cfg.reservoir, cfg.seed),
        }
    }
}

/// The registry: one [`NodeMetrics`] per node and one [`SegmentMetrics`]
/// per segment, lazily grown as ids are first seen.
///
/// **Sketched mode.** Dense per-node/per-segment vectors are exact but
/// O(nodes) — unaffordable at the 10⁵⁺-node scale on the ROADMAP. When a
/// [`SketchConfig`] is armed (see [`MetricsRegistry::arm_sketch`]) and
/// the distinct-node count crosses its threshold, the registry collapses:
/// dense vectors fold into global totals plus Space-Saving top-k sketches
/// (per node and per flow) and a seeded RTT exemplar reservoir, and all
/// further recording goes to those fixed-size structures. Aggregate
/// totals are preserved exactly across the collapse; only per-node
/// attribution degrades (to top-k with explicit error bounds). Below the
/// threshold nothing changes — exact and sketched-armed registries agree
/// bit-for-bit, which the tests assert.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    nodes: Vec<NodeMetrics>,
    segments: Vec<SegmentMetrics>,
    sketch: Option<SketchConfig>,
    sketched: Option<Box<SketchedMetrics>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            nodes: Vec::new(),
            segments: Vec::new(),
            sketch: None,
            sketched: None,
        }
    }

    /// Is recording on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn recording on or off (already-recorded counts are kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Zero every counter (sketches reset too; the armed config is kept).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.segments.clear();
        self.sketched = None;
    }

    /// Arm sketched mode: once more than `cfg.node_threshold` distinct
    /// nodes have recorded, the registry collapses (see type docs). If
    /// the threshold is already exceeded the collapse happens now.
    pub fn arm_sketch(&mut self, cfg: SketchConfig) {
        self.sketch = Some(cfg);
        if self.nodes.len() > cfg.node_threshold {
            self.collapse_now();
        }
    }

    /// Is sketched mode armed (whether or not the collapse has fired)?
    /// Sketch collapse is order-sensitive, so armed registries force the
    /// sharded scheduler into merged (serial-order) execution.
    pub fn sketch_armed(&self) -> bool {
        self.sketch.is_some()
    }

    /// Is the registry currently collapsed?
    pub fn is_sketched(&self) -> bool {
        self.sketched.is_some()
    }

    /// The collapsed storage, when in sketched mode.
    pub fn sketched(&self) -> Option<&SketchedMetrics> {
        self.sketched.as_deref()
    }

    /// Collapse dense storage into sketches immediately (normally driven
    /// by the armed threshold; public for tests and merges).
    pub fn collapse_now(&mut self) {
        if self.sketched.is_some() {
            return;
        }
        let cfg = self.sketch.unwrap_or_default();
        let mut sk = Box::new(SketchedMetrics::new(cfg));
        for (i, n) in self.nodes.iter().enumerate() {
            sk.totals.merge(n);
            let events = n.packets_sent
                + n.packets_forwarded
                + n.packets_delivered
                + n.total_drops()
                + n.transforms;
            if events > 0 {
                sk.node_hitters.offer(NodeId(i), events);
            }
        }
        for s in &self.segments {
            sk.seg_totals.merge(s);
        }
        // Per-flow history and raw RTT exemplars cannot be reconstructed
        // from dense counters; their sketches fill from here on.
        self.nodes = Vec::new();
        self.segments = Vec::new();
        self.sketched = Some(sk);
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeMetrics {
        if self.nodes.len() <= id.0 {
            self.nodes.resize(id.0 + 1, NodeMetrics::default());
        }
        &mut self.nodes[id.0]
    }

    fn segment_mut(&mut self, id: SegmentId) -> &mut SegmentMetrics {
        if self.segments.len() <= id.0 {
            self.segments.resize(id.0 + 1, SegmentMetrics::default());
        }
        &mut self.segments[id.0]
    }

    /// Counters for one node (zeros if it never recorded anything).
    pub fn node(&self, id: NodeId) -> &NodeMetrics {
        self.nodes.get(id.0).unwrap_or(&EMPTY_NODE)
    }

    /// Counters for one segment (zeros if it never recorded anything).
    pub fn segment(&self, id: SegmentId) -> &SegmentMetrics {
        static EMPTY_SEGMENT: SegmentMetrics = SegmentMetrics {
            frames: 0,
            bytes: 0,
            wire_drops: 0,
            crc_drops: 0,
            busy: SimDuration::ZERO,
            queue_wait_us: Histogram::EMPTY,
        };
        self.segments.get(id.0).unwrap_or(&EMPTY_SEGMENT)
    }

    /// Node ids that have recorded at least one event, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Segment ids that have recorded at least one event, in id order.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> + '_ {
        (0..self.segments.len()).map(SegmentId)
    }

    /// Drops across all nodes, summed by reason (nonzero reasons only).
    pub fn total_drops_by_reason(&self) -> Vec<(DropReason, u64)> {
        if let Some(sk) = &self.sketched {
            return sk.totals.drops_by_reason().collect();
        }
        let mut totals = [0u64; DropReason::ALL.len()];
        for n in &self.nodes {
            for r in DropReason::ALL {
                totals[r.index()] += n.drop_count(r);
            }
        }
        DropReason::ALL
            .into_iter()
            .map(|r| (r, totals[r.index()]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Aggregate of every node's counters — identical whether the
    /// registry is dense or sketched (the collapse preserves totals
    /// exactly), which is what the invariant monitor reconciles against.
    pub fn totals(&self) -> NodeMetrics {
        if let Some(sk) = &self.sketched {
            return sk.totals.clone();
        }
        let mut t = NodeMetrics::default();
        for n in &self.nodes {
            t.merge(n);
        }
        t
    }

    /// Aggregate of every segment's counters (dense or sketched).
    pub fn segment_totals(&self) -> SegmentMetrics {
        if let Some(sk) = &self.sketched {
            return sk.seg_totals.clone();
        }
        let mut t = SegmentMetrics::default();
        for s in &self.segments {
            t.merge(s);
        }
        t
    }

    /// Fold another registry into this one without re-recording —
    /// sharded/parallel worlds combine telemetry by merging. Dense +
    /// dense merges stay dense (elementwise by id); if either side is
    /// sketched the result is sketched (totals add exactly, sketches
    /// union-merge with error bounds intact).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if self.sketched.is_none() && other.sketched.is_none() {
            if self.nodes.len() < other.nodes.len() {
                self.nodes.resize(other.nodes.len(), NodeMetrics::default());
            }
            for (m, o) in self.nodes.iter_mut().zip(other.nodes.iter()) {
                m.merge(o);
            }
            if self.segments.len() < other.segments.len() {
                self.segments
                    .resize(other.segments.len(), SegmentMetrics::default());
            }
            for (m, o) in self.segments.iter_mut().zip(other.segments.iter()) {
                m.merge(o);
            }
            if let Some(cfg) = self.sketch {
                if self.nodes.len() > cfg.node_threshold {
                    self.collapse_now();
                }
            }
            return;
        }
        if self.sketched.is_none() {
            // Adopt the other side's parameters so both halves sketch alike.
            if self.sketch.is_none() {
                self.sketch = other.sketched.as_ref().map(|sk| sk.cfg);
            }
            self.collapse_now();
        }
        let sk = self.sketched.as_deref_mut().expect("collapsed above");
        if let Some(o) = other.sketched.as_deref() {
            sk.totals.merge(&o.totals);
            sk.seg_totals.merge(&o.seg_totals);
            sk.node_hitters.merge(&o.node_hitters);
            sk.flow_hitters.merge(&o.flow_hitters);
            sk.rtt_exemplars.merge(&o.rtt_exemplars);
        } else {
            for (i, n) in other.nodes.iter().enumerate() {
                sk.totals.merge(n);
                let events = n.packets_sent
                    + n.packets_forwarded
                    + n.packets_delivered
                    + n.total_drops()
                    + n.transforms;
                if events > 0 {
                    sk.node_hitters.offer(NodeId(i), events);
                }
            }
            for s in &other.segments {
                sk.seg_totals.merge(s);
            }
        }
    }

    // ---- recording (each entry point starts with the enabled check) -------

    /// Record one packet event at `node`. Called from
    /// [`crate::world::NetCtx::trace_packet`], the choke point every
    /// send / forward / delivery / drop already flows through.
    #[inline]
    pub fn record_packet(&mut self, node: NodeId, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        let wire_len = pkt.wire_len() as u64;
        let tunnel = encap_format_of(pkt);
        if let Some(sk) = self.sketched.as_deref_mut() {
            apply_packet(&mut sk.totals, kind, wire_len, tunnel);
            sk.node_hitters.offer(node, 1);
            if matches!(
                kind,
                TraceEventKind::Sent | TraceEventKind::Forwarded | TraceEventKind::DeliveredLocal
            ) {
                sk.flow_hitters.offer(crate::telemetry::flow_label(pkt), 1);
            }
            return;
        }
        apply_packet(self.node_mut(node), kind, wire_len, tunnel);
        if let Some(cfg) = self.sketch {
            if self.nodes.len() > cfg.node_threshold {
                self.collapse_now();
            }
        }
    }

    /// Record one frame offered to `seg`. Called from
    /// [`crate::world::NetCtx::transmit`]; `queue_wait` is how long the
    /// medium was already committed when the frame arrived, and
    /// `serialize` the time the frame will hold it.
    #[inline]
    pub fn record_transmit(
        &mut self,
        seg: SegmentId,
        wire_len: usize,
        queue_wait: SimDuration,
        serialize: SimDuration,
        outcome: FaultOutcome,
    ) {
        if !self.enabled {
            return;
        }
        let m = if self.sketched.is_some() {
            &mut self.sketched.as_deref_mut().expect("checked").seg_totals
        } else {
            self.segment_mut(seg)
        };
        match outcome {
            FaultOutcome::Drop => {
                m.wire_drops += 1;
                return;
            }
            FaultOutcome::Corrupt => m.crc_drops += 1,
            FaultOutcome::Deliver | FaultOutcome::Duplicate => {}
        }
        m.frames += 1;
        m.bytes += wire_len as u64;
        m.busy = m.busy + serialize;
        m.queue_wait_us.record(queue_wait.as_micros());
    }

    /// The block transport counters land in: the node's own in dense
    /// mode, the global totals once sketched.
    fn node_or_totals(&mut self, node: NodeId) -> &mut NodeMetrics {
        if self.sketched.is_some() {
            &mut self.sketched.as_deref_mut().expect("checked").totals
        } else {
            self.node_mut(node)
        }
    }

    /// Record a TCP segment transmission at `node`.
    #[inline]
    pub fn record_tcp_segment_sent(&mut self, node: NodeId, retransmission: bool) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_or_totals(node).tcp;
        m.segments_sent += 1;
        if retransmission {
            m.retransmissions += 1;
        }
    }

    /// Record a TCP segment accepted by a connection at `node`.
    #[inline]
    pub fn record_tcp_segment_received(&mut self, node: NodeId) {
        if !self.enabled {
            return;
        }
        self.node_or_totals(node).tcp.segments_received += 1;
    }

    /// Record one measured TCP round-trip time at `node`.
    #[inline]
    pub fn record_tcp_rtt(&mut self, node: NodeId, rtt: SimDuration) {
        if !self.enabled {
            return;
        }
        let us = rtt.as_micros();
        if let Some(sk) = self.sketched.as_deref_mut() {
            sk.totals.tcp.rtt_us.record(us);
            sk.rtt_exemplars.offer(us);
            return;
        }
        self.node_mut(node).tcp.rtt_us.record(us);
    }

    /// Record a UDP datagram sent from `node`.
    #[inline]
    pub fn record_udp_sent(&mut self, node: NodeId, payload_bytes: usize) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_or_totals(node).udp;
        m.datagrams_sent += 1;
        m.bytes_sent += payload_bytes as u64;
    }

    /// Record a UDP datagram delivered to a bound socket at `node`.
    #[inline]
    pub fn record_udp_received(&mut self, node: NodeId, payload_bytes: usize) {
        if !self.enabled {
            return;
        }
        let m = &mut self.node_or_totals(node).udp;
        m.datagrams_received += 1;
        m.bytes_received += payload_bytes as u64;
    }

    /// A serializable snapshot of every counter, labelling nodes with
    /// `names` (by `NodeId` index) where provided and taking `now` so
    /// segment utilization can be derived by consumers.
    ///
    /// Dense (exact) snapshots keep their historical shape byte-for-byte;
    /// sketched snapshots emit totals + heavy hitters + exemplars instead
    /// of per-node sections.
    pub fn snapshot(&self, names: &[&str], now: SimTime) -> serde::Value {
        if let Some(sk) = &self.sketched {
            return self.sketched_snapshot(sk, names, now);
        }
        let nodes: Vec<(String, serde::Value)> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let label = names
                    .get(i)
                    .map(|s| (*s).to_string())
                    .unwrap_or_else(|| format!("node{i}"));
                (label, m.to_value())
            })
            .collect();
        let segments: Vec<(String, serde::Value)> = self
            .segments
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut v = match m.to_value() {
                    serde::Value::Object(fields) => fields,
                    _ => unreachable!("segment snapshot is an object"),
                };
                v.push((
                    "utilization".into(),
                    m.utilization(now.since(SimTime::ZERO)).to_value(),
                ));
                (format!("segment{i}"), serde::Value::Object(v))
            })
            .collect();
        let drops: Vec<(String, serde::Value)> = self
            .total_drops_by_reason()
            .into_iter()
            .map(|(r, n)| (r.to_string(), n.to_value()))
            .collect();
        serde::Value::Object(vec![
            ("sim_time_us".into(), now.as_micros().to_value()),
            ("nodes".into(), serde::Value::Object(nodes)),
            ("segments".into(), serde::Value::Object(segments)),
            ("total_drops".into(), serde::Value::Object(drops)),
        ])
    }

    /// Snapshot shape for the collapsed registry: exact global totals,
    /// top-k heavy hitters with their error bounds, and RTT exemplars.
    fn sketched_snapshot(
        &self,
        sk: &SketchedMetrics,
        names: &[&str],
        now: SimTime,
    ) -> serde::Value {
        let node_top: Vec<serde::Value> = sk
            .node_hitters
            .top()
            .into_iter()
            .map(|e| {
                let label = names
                    .get(e.key.0)
                    .map(|s| (*s).to_string())
                    .unwrap_or_else(|| format!("node{}", e.key.0));
                serde::Value::Object(vec![
                    ("node".into(), serde::Value::Str(label)),
                    ("events".into(), e.count.to_value()),
                    ("error".into(), e.error.to_value()),
                ])
            })
            .collect();
        let flow_top: Vec<serde::Value> = sk
            .flow_hitters
            .top()
            .into_iter()
            .map(|e| {
                let (a, b, proto) = e.key;
                serde::Value::Object(vec![
                    (
                        "flow".into(),
                        serde::Value::Str(format!("{a}<->{b}/{proto}")),
                    ),
                    ("wire_events".into(), e.count.to_value()),
                    ("error".into(), e.error.to_value()),
                ])
            })
            .collect();
        let mut seg_totals = match sk.seg_totals.to_value() {
            serde::Value::Object(fields) => fields,
            _ => unreachable!("segment snapshot is an object"),
        };
        seg_totals.push((
            "utilization".into(),
            sk.seg_totals
                .utilization(now.since(SimTime::ZERO))
                .to_value(),
        ));
        let drops: Vec<(String, serde::Value)> = self
            .total_drops_by_reason()
            .into_iter()
            .map(|(r, n)| (r.to_string(), n.to_value()))
            .collect();
        serde::Value::Object(vec![
            ("sim_time_us".into(), now.as_micros().to_value()),
            ("mode".into(), serde::Value::Str("sketched".into())),
            ("totals".into(), sk.totals.to_value()),
            ("segments_total".into(), serde::Value::Object(seg_totals)),
            (
                "node_hitters".into(),
                serde::Value::Object(vec![
                    ("k".into(), sk.node_hitters.capacity().to_value()),
                    ("exact".into(), sk.node_hitters.is_exact().to_value()),
                    ("top".into(), serde::Value::Array(node_top)),
                ]),
            ),
            (
                "flow_hitters".into(),
                serde::Value::Object(vec![
                    ("k".into(), sk.flow_hitters.capacity().to_value()),
                    ("exact".into(), sk.flow_hitters.is_exact().to_value()),
                    ("top".into(), serde::Value::Array(flow_top)),
                ]),
            ),
            (
                "rtt_exemplars_us".into(),
                serde::Value::Object(vec![
                    ("seen".into(), sk.rtt_exemplars.seen().to_value()),
                    (
                        "samples".into(),
                        sk.rtt_exemplars.items().to_vec().to_value(),
                    ),
                ]),
            ),
            ("total_drops".into(), serde::Value::Object(drops)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encap::encapsulate;
    use crate::wire::ipv4::IpProtocol;
    use bytes::Bytes;

    fn ip(s: &str) -> crate::wire::ipv4::Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt() -> Ipv4Packet {
        Ipv4Packet::new(
            ip("1.1.1.1"),
            ip("2.2.2.2"),
            IpProtocol::Udp,
            Bytes::from_static(b"hi"),
        )
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut reg = MetricsRegistry::new(false);
        reg.record_packet(NodeId(3), TraceEventKind::Sent, &pkt());
        reg.record_udp_sent(NodeId(3), 100);
        assert_eq!(reg.node(NodeId(3)).packets_sent, 0);
        assert_eq!(reg.node(NodeId(3)).udp.datagrams_sent, 0);
        assert_eq!(reg.node_ids().count(), 0, "no allocation while disabled");
    }

    #[test]
    fn packet_counters_by_kind_and_reason() {
        let mut reg = MetricsRegistry::new(true);
        let p = pkt();
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &p);
        reg.record_packet(NodeId(1), TraceEventKind::Forwarded, &p);
        reg.record_packet(NodeId(2), TraceEventKind::DeliveredLocal, &p);
        reg.record_packet(NodeId(1), TraceEventKind::Dropped(DropReason::NoRoute), &p);
        reg.record_packet(NodeId(1), TraceEventKind::Dropped(DropReason::NoRoute), &p);
        assert_eq!(reg.node(NodeId(0)).packets_sent, 1);
        assert_eq!(reg.node(NodeId(0)).bytes_sent, p.wire_len() as u64);
        assert_eq!(reg.node(NodeId(1)).packets_forwarded, 1);
        assert_eq!(reg.node(NodeId(2)).packets_delivered, 1);
        assert_eq!(reg.node(NodeId(1)).drop_count(DropReason::NoRoute), 2);
        assert_eq!(reg.node(NodeId(1)).total_drops(), 2);
        assert_eq!(reg.total_drops_by_reason(), vec![(DropReason::NoRoute, 2)]);
    }

    #[test]
    fn tunnel_bytes_split_by_format() {
        let mut reg = MetricsRegistry::new(true);
        let inner = pkt();
        for f in ENCAP_FORMATS {
            let outer = encapsulate(f, ip("9.9.9.9"), ip("8.8.8.8"), &inner, 0).unwrap();
            reg.record_packet(NodeId(0), TraceEventKind::Sent, &outer);
            assert_eq!(reg.node(NodeId(0)).encap_bytes(f), outer.wire_len() as u64);
        }
        // Plain packets count toward no format.
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &inner);
        let total: u64 = ENCAP_FORMATS
            .iter()
            .map(|&f| reg.node(NodeId(0)).encap_bytes(f))
            .sum();
        assert!(total < reg.node(NodeId(0)).bytes_sent);
    }

    #[test]
    fn transmit_counters_follow_outcomes() {
        let mut reg = MetricsRegistry::new(true);
        let seg = SegmentId(0);
        let us = SimDuration::from_micros;
        reg.record_transmit(seg, 100, us(0), us(80), FaultOutcome::Deliver);
        reg.record_transmit(seg, 100, us(80), us(80), FaultOutcome::Corrupt);
        reg.record_transmit(seg, 100, us(0), us(80), FaultOutcome::Drop);
        let m = reg.segment(seg);
        assert_eq!(m.frames, 2, "dropped frame never occupied the wire");
        assert_eq!(m.bytes, 200);
        assert_eq!(m.crc_drops, 1);
        assert_eq!(m.wire_drops, 1);
        assert_eq!(m.busy, us(160));
        assert_eq!(m.queue_wait_us.count(), 2);
        assert_eq!(m.queue_wait_us.max(), Some(80));
        assert!((m.utilization(us(1600)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn transport_counters() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_tcp_segment_sent(NodeId(0), false);
        reg.record_tcp_segment_sent(NodeId(0), true);
        reg.record_tcp_segment_received(NodeId(0));
        reg.record_tcp_rtt(NodeId(0), SimDuration::from_millis(30));
        reg.record_udp_sent(NodeId(1), 512);
        reg.record_udp_received(NodeId(2), 512);
        let t = &reg.node(NodeId(0)).tcp;
        assert_eq!(
            (t.segments_sent, t.retransmissions, t.segments_received),
            (2, 1, 1)
        );
        assert_eq!(t.rtt_us.count(), 1);
        assert_eq!(t.rtt_us.mean(), 30_000.0);
        assert_eq!(reg.node(NodeId(1)).udp.datagrams_sent, 1);
        assert_eq!(reg.node(NodeId(2)).udp.bytes_received, 512);
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(50), None);
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let p50 = h.percentile(50).unwrap();
        assert!(p50 <= 100, "p50 was {p50}");
        assert!(h.percentile(100).unwrap() >= 512);
        // Degenerate distribution: every percentile is the single value.
        let mut one = Histogram::default();
        one.record(42);
        assert_eq!(one.percentile(0), Some(42));
        assert_eq!(one.percentile(100), Some(42));
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &pkt());
        reg.record_transmit(
            SegmentId(0),
            64,
            SimDuration::ZERO,
            SimDuration::from_micros(51),
            FaultOutcome::Deliver,
        );
        let v = reg.snapshot(&["alice"], SimTime(1_000));
        let json = serde_json::to_string(&v).unwrap();
        assert!(json.contains("\"alice\""));
        assert!(json.contains("\"packets_sent\":1"));
        assert!(json.contains("\"segment0\""));
        assert!(json.contains("\"utilization\""));
        assert!(json.contains("\"sim_time_us\":1000"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut reg = MetricsRegistry::new(true);
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &pkt());
        reg.clear();
        assert_eq!(reg.node(NodeId(0)).packets_sent, 0);
        assert!(reg.enabled(), "clear keeps the enabled flag");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [1u64, 7, 300, 90_000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 12, 4_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both, "merge equals recording the union stream");
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_merge_dense_is_elementwise() {
        let mut a = MetricsRegistry::new(true);
        let mut b = MetricsRegistry::new(true);
        let p = pkt();
        a.record_packet(NodeId(0), TraceEventKind::Sent, &p);
        b.record_packet(NodeId(0), TraceEventKind::Sent, &p);
        b.record_packet(NodeId(2), TraceEventKind::DeliveredLocal, &p);
        b.record_tcp_rtt(NodeId(2), SimDuration::from_millis(5));
        b.record_transmit(
            SegmentId(1),
            64,
            SimDuration::ZERO,
            SimDuration::from_micros(10),
            FaultOutcome::Deliver,
        );
        a.merge(&b);
        assert_eq!(a.node(NodeId(0)).packets_sent, 2);
        assert_eq!(a.node(NodeId(2)).packets_delivered, 1);
        assert_eq!(a.node(NodeId(2)).tcp.rtt_us.count(), 1);
        assert_eq!(a.segment(SegmentId(1)).frames, 1);
        assert!(!a.is_sketched());
    }

    #[test]
    fn armed_registry_below_threshold_is_bit_identical_to_exact() {
        let build = |arm: bool| {
            let mut reg = MetricsRegistry::new(true);
            if arm {
                reg.arm_sketch(SketchConfig {
                    node_threshold: 100,
                    ..SketchConfig::default()
                });
            }
            let p = pkt();
            for i in 0..10 {
                reg.record_packet(NodeId(i), TraceEventKind::Sent, &p);
                reg.record_packet(NodeId(i), TraceEventKind::DeliveredLocal, &p);
            }
            reg.record_tcp_rtt(NodeId(3), SimDuration::from_millis(20));
            serde_json::to_string(&reg.snapshot(&[], SimTime(1_000))).unwrap()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn collapse_preserves_totals_and_caps_memory() {
        let mut exact = MetricsRegistry::new(true);
        let mut armed = MetricsRegistry::new(true);
        armed.arm_sketch(SketchConfig {
            node_threshold: 16,
            topk: 8,
            reservoir: 4,
            seed: 1,
        });
        let p = pkt();
        for i in 0..1000 {
            for reg in [&mut exact, &mut armed] {
                reg.record_packet(NodeId(i), TraceEventKind::Sent, &p);
                if i % 3 == 0 {
                    reg.record_packet(NodeId(i), TraceEventKind::Dropped(DropReason::NoRoute), &p);
                }
            }
        }
        assert!(armed.is_sketched());
        let sk = armed.sketched().unwrap();
        assert_eq!(sk.node_hitters.len(), 8, "sketch memory capped at k");
        // Aggregate totals survive the collapse exactly.
        let (e, s) = (exact.totals(), armed.totals());
        assert_eq!(e.packets_sent, s.packets_sent);
        assert_eq!(e.bytes_sent, s.bytes_sent);
        assert_eq!(e.total_drops(), s.total_drops());
        assert_eq!(exact.total_drops_by_reason(), armed.total_drops_by_reason());
    }

    #[test]
    fn sketched_merge_combines_totals_and_hitters() {
        let mk = || {
            let mut reg = MetricsRegistry::new(true);
            reg.arm_sketch(SketchConfig {
                node_threshold: 0,
                topk: 8,
                reservoir: 4,
                seed: 9,
            });
            reg
        };
        let (mut a, mut b) = (mk(), mk());
        let p = pkt();
        a.record_packet(NodeId(1), TraceEventKind::Sent, &p);
        a.record_packet(NodeId(1), TraceEventKind::Sent, &p);
        b.record_packet(NodeId(1), TraceEventKind::Sent, &p);
        b.record_packet(NodeId(2), TraceEventKind::DeliveredLocal, &p);
        b.record_tcp_rtt(NodeId(2), SimDuration::from_millis(7));
        a.merge(&b);
        let sk = a.sketched().unwrap();
        assert_eq!(a.totals().packets_sent, 3);
        assert_eq!(a.totals().packets_delivered, 1);
        assert_eq!(sk.node_hitters.count(&NodeId(1)), Some(3));
        assert_eq!(sk.node_hitters.count(&NodeId(2)), Some(1));
        assert_eq!(sk.rtt_exemplars.items(), &[7_000]);
        // Dense + sketched: the dense side collapses on merge.
        let mut dense = MetricsRegistry::new(true);
        dense.record_packet(NodeId(5), TraceEventKind::Sent, &p);
        dense.merge(&b);
        assert!(dense.is_sketched());
        assert_eq!(dense.totals().packets_sent, 2);
    }

    #[test]
    fn sketched_snapshot_shape() {
        let mut reg = MetricsRegistry::new(true);
        reg.arm_sketch(SketchConfig {
            node_threshold: 0,
            topk: 4,
            reservoir: 4,
            seed: 3,
        });
        reg.record_packet(NodeId(0), TraceEventKind::Sent, &pkt());
        reg.record_tcp_rtt(NodeId(0), SimDuration::from_millis(1));
        let json = serde_json::to_string(&reg.snapshot(&["alice"], SimTime(1_000))).unwrap();
        assert!(json.contains("\"mode\":\"sketched\""));
        assert!(json.contains("\"totals\""));
        assert!(json.contains("\"node_hitters\""));
        assert!(json.contains("\"flow_hitters\""));
        assert!(json.contains("\"alice\""));
        assert!(json.contains("\"rtt_exemplars_us\""));
    }
}
