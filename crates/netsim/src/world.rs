//! The simulation world: nodes, segments, the event loop, automatic
//! shortest-path route computation for static topologies, and the
//! deterministic sharded runtime (conservative parallel discrete-event
//! simulation whose output is byte-identical to serial runs).

use std::collections::{BinaryHeap, HashSet};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::device::host::{Host, HostConfig};
use crate::device::nic::IfaceAddr;
use crate::device::router::{Router, RouterConfig};
use crate::device::{token, NS_APPS};
use crate::event::{
    lane_key, node_lane, Event, EventKind, EventQueue, EventSink, IfaceNo, NodeId, SchedulerKind,
    SchedulerStats, SchedulerTelemetry, Timer, TimerHandle, TimerToken,
};
use crate::link::{FaultOutcome, LinkConfig, LinkStats, SegState, Segment, SegmentId};
use crate::metrics::{MetricsRegistry, SketchConfig};
use crate::shard::{Group, Op, PendingTx, PushCounts, RoundLog, Runtime, ShardStats, TxRecord};
use crate::telemetry::{hash64, InvariantMonitor, TelemetryConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{PacketTrace, TraceEventKind, TransformKind};
use crate::wire::ethernet::{EthernetFrame, MacAddr};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Cidr, Ipv4Packet};

/// A node is either an end system or a router.
#[allow(clippy::large_enum_variant)] // hosts dominate and are not copied
pub enum Node {
    /// An end system.
    Host(Host),
    /// A packet forwarder.
    Router(Router),
}

impl Node {
    fn on_frame(&mut self, ctx: &mut NetCtx, iface: IfaceNo, frame: &Bytes) {
        match self {
            Node::Host(h) => h.on_frame(ctx, iface, frame),
            Node::Router(r) => r.on_frame(ctx, iface, frame),
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx, t: TimerToken) {
        match self {
            Node::Host(h) => h.on_timer(ctx, t),
            Node::Router(r) => r.on_timer(ctx, t),
        }
    }

    fn nic(&self) -> &crate::device::nic::Nic {
        match self {
            Node::Host(h) => h.nic(),
            Node::Router(r) => r.nic(),
        }
    }

    fn nic_mut(&mut self) -> &mut crate::device::nic::Nic {
        match self {
            Node::Host(h) => h.nic_mut(),
            Node::Router(r) => r.nic_mut(),
        }
    }

    fn is_router(&self) -> bool {
        matches!(self, Node::Router(_))
    }

    /// Drop the node's memoized route lookups — called whenever an
    /// interface moves between segments, since the usable routes change
    /// even though the table entries do not.
    fn invalidate_route_cache(&self) {
        match self {
            Node::Host(h) => h.invalidate_route_cache(),
            Node::Router(r) => r.invalidate_route_cache(),
        }
    }

    fn add_route(&mut self, prefix: Ipv4Cidr, iface: IfaceNo, gateway: Option<Ipv4Addr>) {
        match self {
            Node::Host(h) => h.add_route(prefix, iface, gateway),
            Node::Router(r) => r.add_route(prefix, iface, gateway),
        }
    }

    fn clear_routes(&mut self) {
        match self {
            Node::Host(h) => h.clear_routes(),
            Node::Router(r) => r.clear_routes(),
        }
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host(h) => &h.name,
            Node::Router(r) => &r.name,
        }
    }
}

// ---------------------------------------------------------------------------
// Event routing plumbing
// ---------------------------------------------------------------------------

/// The node an event is addressed to — the routing function of the sharded
/// runtime (every event is dispatched on its target node's shard).
fn event_node(kind: &EventKind) -> NodeId {
    match kind {
        EventKind::Deliver { node, .. } => *node,
        EventKind::Timer(t) => t.node,
    }
}

/// Deterministic per-node RNG seed: a hash of the world seed and the node
/// id, so every node's stream is independent of dispatch interleaving.
fn node_seed(world_seed: u64, n: usize) -> u64 {
    hash64(world_seed ^ (0x4e4f_4445u64 << 32) ^ n as u64)
}

/// Deterministic per-segment fault-RNG seed.
fn segment_seed(world_seed: u64, s: usize) -> u64 {
    hash64(world_seed ^ (0x5345_474du64 << 32) ^ s as u64)
}

/// A coordinator-side event sink: either the serial queue, or the shard
/// queues with events routed by target node. Routed pushes and cancels are
/// counted into the runtime's global scheduler ledger (`sim_stats`) so the
/// ledger reproduces the serial queue's counters exactly.
enum QueueRef<'a> {
    Single(&'a mut EventQueue),
    Routed {
        queues: &'a mut [EventQueue],
        owner_node: &'a [u32],
        stats: &'a mut SchedulerStats,
    },
}

impl QueueRef<'_> {
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        match self {
            QueueRef::Single(q) => q.push_keyed(at, key, kind),
            QueueRef::Routed {
                queues,
                owner_node,
                stats,
            } => {
                let shard = owner_node[event_node(&kind).0] as usize;
                queues[shard].push_keyed(at, key, kind);
                stats.pushed += 1;
            }
        }
    }

    fn push_cancellable_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) -> TimerHandle {
        match self {
            QueueRef::Single(q) => q.push_cancellable_keyed(at, key, kind),
            QueueRef::Routed {
                queues,
                owner_node,
                stats,
            } => {
                let shard = owner_node[event_node(&kind).0] as usize;
                stats.pushed += 1;
                queues[shard].push_cancellable_keyed(at, key, kind)
            }
        }
    }

    /// Cancel a timer owned by `node`. Ownership is sticky, so the handle
    /// always refers to the same shard queue's slab it was allocated from.
    fn cancel(&mut self, node: NodeId, h: TimerHandle) -> bool {
        match self {
            QueueRef::Single(q) => q.cancel(h),
            QueueRef::Routed {
                queues,
                owner_node,
                stats,
            } => {
                let ok = queues[owner_node[node.0] as usize].cancel(h);
                if ok {
                    stats.cancelled += 1;
                }
                ok
            }
        }
    }
}

impl EventSink for QueueRef<'_> {
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        QueueRef::push_keyed(self, at, key, kind);
    }
}

/// Sink used by worker-side private-segment transmits: pushes land on the
/// shard's own queue and are tallied into the dispatching event's
/// [`PushCounts`] for the canonical scheduler-ledger replay.
struct CountingSink<'a> {
    q: &'a mut EventQueue,
    pushed: &'a mut u64,
}

impl EventSink for CountingSink<'_> {
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        self.q.push_keyed(at, key, kind);
        *self.pushed += 1;
    }
}

/// Sink used when the coordinator applies a buffered border transmission:
/// deliveries route to each receiver's shard, `msgs_in` counts the crossing
/// per receiving shard, and the push total is recorded for the matching
/// [`TxRecord`] (ledger pushes land at the `Op::BorderTx` replay point).
struct BorderApplySink<'a> {
    queues: &'a mut [EventQueue],
    owner_node: &'a [u32],
    stats: &'a mut [ShardStats],
    pushed: u64,
}

impl EventSink for BorderApplySink<'_> {
    fn push_keyed(&mut self, at: SimTime, key: u64, kind: EventKind) {
        let shard = self.owner_node[event_node(&kind).0] as usize;
        self.queues[shard].push_keyed(at, key, kind);
        self.stats[shard].msgs_in += 1;
        self.pushed += 1;
    }
}

// ---------------------------------------------------------------------------
// NetCtx
// ---------------------------------------------------------------------------

/// The two execution modes behind [`NetCtx`]. `Direct` is the serial /
/// coordinator path: observers (trace, invariants, pcap) run inline.
/// `Worker` is the sharded path: pushes go to the shard's own queue,
/// metrics go to the shard's registry (commutative, merged at run end),
/// and every non-commutative observer effect is recorded as an [`Op`] for
/// the coordinator to replay in canonical `(time, round, key)` order.
enum CtxInner<'a, 'w> {
    Direct {
        queue: QueueRef<'a>,
        segments: &'a [Segment],
        seg_states: &'a mut [SegState],
        rng: &'a mut StdRng,
        seq: &'a mut u64,
        trace: &'a mut PacketTrace,
        metrics: &'a mut MetricsRegistry,
        invariants: &'a mut InvariantMonitor,
        pcap: &'a mut Option<crate::wire::pcap::PcapWriter<Box<dyn std::io::Write>>>,
    },
    Worker {
        queue: &'a mut EventQueue,
        counts: &'a mut PushCounts,
        ops: &'a mut Vec<Op>,
        segments: &'w [Segment],
        seg_states: &'a mut Vec<&'w mut SegState>,
        seg_slot: &'w [u32],
        border: &'w [bool],
        rng: &'a mut StdRng,
        seq: &'a mut u64,
        metrics: &'a mut MetricsRegistry,
        inv_enabled: bool,
        trace_on: bool,
        pcap_on: bool,
    },
}

/// The per-event context handed to devices: the only way they can touch the
/// world (transmit frames, set timers, draw randomness, write traces).
pub struct NetCtx<'a, 'w> {
    /// Current simulated time.
    pub now: SimTime,
    /// The node being dispatched.
    pub node: NodeId,
    inner: CtxInner<'a, 'w>,
}

impl NetCtx<'_, '_> {
    /// Put a frame on a segment from this node's `iface`.
    pub fn transmit(
        &mut self,
        seg: SegmentId,
        iface: IfaceNo,
        frame: &EthernetFrame,
    ) -> FaultOutcome {
        let bytes = {
            let _prof = crate::profile::scope("frame/emit");
            frame.emit()
        };
        self.transmit_raw(seg, iface, bytes)
    }

    /// Put already-serialized wire bytes on a segment from this node's
    /// `iface`. The single emitted buffer is shared — `Bytes` clones are
    /// O(1) — between the segment's delivery events and the pcap capture;
    /// nothing on this path copies the frame.
    pub fn transmit_raw(&mut self, seg: SegmentId, iface: IfaceNo, frame: Bytes) -> FaultOutcome {
        let _prof = crate::profile::scope("link/transmit");
        let now = self.now;
        let node = self.node;
        match &mut self.inner {
            CtxInner::Direct {
                queue,
                segments,
                seg_states,
                metrics,
                invariants,
                pcap,
                ..
            } => {
                // Snapshot link-metric inputs before the transmit mutates
                // the segment's committed-until time.
                let (queue_wait, serialize) = if metrics.enabled() {
                    let st = &seg_states[seg.0];
                    (
                        st.backlog(now),
                        segments[seg.0].config.serialize_time(frame.len()),
                    )
                } else {
                    (SimDuration::ZERO, SimDuration::ZERO)
                };
                let wire_len = frame.len();
                let outcome = segments[seg.0].transmit(
                    &mut seg_states[seg.0],
                    (node, iface),
                    frame.clone(),
                    now,
                    queue,
                );
                metrics.record_transmit(seg, wire_len, queue_wait, serialize, outcome);
                if matches!(outcome, FaultOutcome::Drop | FaultOutcome::Corrupt) {
                    // Whatever packet the frame carried is attributably lost
                    // on the wire, not leaked — the conservation monitor's
                    // ledger.
                    invariants.note_wire_loss();
                } else if invariants.enabled() && frame.len() >= 6 {
                    // A frame unicast to a MAC no longer on this wire (stale
                    // ARP after a handoff, a vanished care-of address) is
                    // ignored by every NIC and dies here — attributable, not
                    // leaked.
                    let dst = MacAddr([frame[0], frame[1], frame[2], frame[3], frame[4], frame[5]]);
                    if !dst.is_broadcast()
                        && !dst.is_multicast()
                        && !segments[seg.0].mac_attached(dst)
                    {
                        invariants.note_unclaimed_frame();
                    }
                }
                if outcome != FaultOutcome::Drop {
                    if let Some(pcap) = pcap.as_mut() {
                        // Capture what was put on the wire (post fault
                        // injection is not observable here; the sender's view
                        // is what tcpdump on the sender would show).
                        let _ = pcap.write_frame(now, &frame);
                    }
                }
                outcome
            }
            CtxInner::Worker {
                queue,
                counts,
                ops,
                segments,
                seg_states,
                seg_slot,
                border,
                metrics,
                inv_enabled,
                pcap_on,
                ..
            } => {
                if border[seg.0] {
                    // Cross-shard wire: buffer the transmission for the
                    // coordinator. The outcome is predictable without
                    // touching the medium — border segments are fault-free
                    // by construction (the partitioner collapses faulty
                    // segments into one shard), so only oversize frames
                    // drop.
                    let max_frame =
                        segments[seg.0].config.mtu + crate::wire::ethernet::ETHERNET_HEADER_LEN;
                    let outcome = if frame.len() > max_frame {
                        FaultOutcome::Drop
                    } else {
                        FaultOutcome::Deliver
                    };
                    ops.push(Op::BorderTx {
                        seg: seg.0,
                        iface,
                        frame,
                    });
                    return outcome;
                }
                let st = &mut *seg_states[seg_slot[seg.0] as usize];
                let (queue_wait, serialize) = if metrics.enabled() {
                    (
                        st.backlog(now),
                        segments[seg.0].config.serialize_time(frame.len()),
                    )
                } else {
                    (SimDuration::ZERO, SimDuration::ZERO)
                };
                let wire_len = frame.len();
                let outcome = segments[seg.0].transmit(
                    st,
                    (node, iface),
                    frame.clone(),
                    now,
                    &mut CountingSink {
                        q: queue,
                        pushed: &mut counts.pushed,
                    },
                );
                metrics.record_transmit(seg, wire_len, queue_wait, serialize, outcome);
                if matches!(outcome, FaultOutcome::Drop | FaultOutcome::Corrupt) {
                    if *inv_enabled {
                        ops.push(Op::WireLoss);
                    }
                } else if *inv_enabled && frame.len() >= 6 {
                    let dst = MacAddr([frame[0], frame[1], frame[2], frame[3], frame[4], frame[5]]);
                    if !dst.is_broadcast()
                        && !dst.is_multicast()
                        && !segments[seg.0].mac_attached(dst)
                    {
                        ops.push(Op::UnclaimedFrame);
                    }
                }
                if outcome != FaultOutcome::Drop && *pcap_on {
                    ops.push(Op::Pcap { frame });
                }
                outcome
            }
        }
    }

    /// Schedule a timer for this node. The returned handle cancels it in
    /// O(1) via [`NetCtx::cancel_timer`]; callers that never cancel can
    /// drop the handle freely. Timer events carry `(node lane, seq)` keys,
    /// so equal-timestamp ordering is identical however the world is
    /// sharded.
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerHandle {
        let node = self.node;
        let at = self.now + after;
        let kind = EventKind::Timer(Timer { node, token });
        match &mut self.inner {
            CtxInner::Direct { queue, seq, .. } => {
                let key = lane_key(node_lane(node), **seq);
                **seq += 1;
                queue.push_cancellable_keyed(at, key, kind)
            }
            CtxInner::Worker {
                queue, counts, seq, ..
            } => {
                let key = lane_key(node_lane(node), **seq);
                **seq += 1;
                counts.pushed += 1;
                queue.push_cancellable_keyed(at, key, kind)
            }
        }
    }

    /// Cancel a timer set with [`NetCtx::set_timer`]. Returns `false`
    /// (harmlessly) if it already fired or was already cancelled. A timer
    /// scheduled for the *current* instant may already sit in the event
    /// loop's in-flight batch, in which case it still fires — so handlers
    /// keep their stale-timer guards as a second line of defence.
    pub fn cancel_timer(&mut self, h: TimerHandle) -> bool {
        let node = self.node;
        match &mut self.inner {
            CtxInner::Direct { queue, .. } => queue.cancel(node, h),
            CtxInner::Worker { queue, counts, .. } => {
                let ok = queue.cancel(h);
                if ok {
                    counts.cancelled += 1;
                }
                ok
            }
        }
    }

    /// MTU of a segment (IP bytes per frame).
    pub fn segment_mtu(&self, seg: SegmentId) -> usize {
        match &self.inner {
            CtxInner::Direct { segments, .. } => segments[seg.0].config.mtu,
            CtxInner::Worker { segments, .. } => segments[seg.0].config.mtu,
        }
    }

    /// This node's deterministic RNG (fault injection, workloads). Streams
    /// are per-node, so draws are independent of dispatch interleaving.
    pub fn rng(&mut self) -> &mut StdRng {
        match &mut self.inner {
            CtxInner::Direct { rng, .. } => rng,
            CtxInner::Worker { rng, .. } => rng,
        }
    }

    /// Record a trace event for `pkt` at this node. Also feeds the metrics
    /// registry: this is the one choke point every send / forward /
    /// delivery / drop flows through.
    pub fn trace_packet(&mut self, kind: TraceEventKind, pkt: &Ipv4Packet) {
        let (now, node) = (self.now, self.node);
        match &mut self.inner {
            CtxInner::Direct {
                trace,
                metrics,
                invariants,
                ..
            } => {
                trace.record(now, node, kind, pkt);
                metrics.record_packet(node, kind, pkt);
                invariants.record_packet(kind, pkt);
            }
            CtxInner::Worker {
                ops,
                metrics,
                inv_enabled,
                trace_on,
                ..
            } => {
                metrics.record_packet(node, kind, pkt);
                if *trace_on || *inv_enabled {
                    ops.push(Op::Trace {
                        kind,
                        pkt: pkt.clone(),
                    });
                }
            }
        }
    }

    /// Record that `child` was produced from `parent` by `kind` at this
    /// node — called by every transform site (encapsulation, decapsulation,
    /// source-route rewrite, agent relay, retransmission) so the trace can
    /// link the derived packet to its origin. `parent` is `None` only for
    /// retransmissions, where the trace infers the predecessor from the
    /// flow. The single choke point for causal edges, as
    /// [`NetCtx::trace_packet`] is for observations.
    pub fn trace_transform(
        &mut self,
        kind: TransformKind,
        parent: Option<&Ipv4Packet>,
        child: &Ipv4Packet,
    ) {
        let (now, node) = (self.now, self.node);
        match &mut self.inner {
            CtxInner::Direct {
                trace,
                metrics,
                invariants,
                ..
            } => {
                trace.record_transform(now, node, kind, parent, child);
                metrics.record_packet(node, TraceEventKind::Transformed(kind), child);
                invariants.record_transform(parent, child);
            }
            CtxInner::Worker {
                ops,
                metrics,
                inv_enabled,
                trace_on,
                ..
            } => {
                metrics.record_packet(node, TraceEventKind::Transformed(kind), child);
                if *trace_on || *inv_enabled {
                    ops.push(Op::Transform {
                        kind,
                        parent: parent.cloned(),
                        child: child.clone(),
                    });
                }
            }
        }
    }

    /// The metrics registry — how the transport layer records TCP and UDP
    /// counters against the node being dispatched. On a worker this is the
    /// shard's registry; counters are commutative and merge at run end.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        match &mut self.inner {
            CtxInner::Direct { metrics, .. } => metrics,
            CtxInner::Worker { metrics, .. } => metrics,
        }
    }

    /// Flag an anomaly on the conversation between `a` and `b` over
    /// `proto` — protocol layers call this for failures the trace cannot
    /// see in the packet stream itself (e.g. a mobile host's registration
    /// denial or retry exhaustion), promoting the flow to full capture
    /// under flow sampling. No-op when sampling is off.
    pub fn flag_anomaly(&mut self, a: Ipv4Addr, b: Ipv4Addr, proto: crate::wire::ipv4::IpProtocol) {
        match &mut self.inner {
            CtxInner::Direct { trace, .. } => trace.promote_endpoints(a, b, proto),
            CtxInner::Worker { ops, trace_on, .. } => {
                if *trace_on {
                    ops.push(Op::Promote { a, b, proto });
                }
            }
        }
    }

    /// Tell the conservation monitor a packet was parked in a link-layer
    /// pending queue (awaiting ARP); see [`InvariantMonitor::note_parked`].
    #[inline]
    pub fn note_parked(&mut self) {
        match &mut self.inner {
            CtxInner::Direct { invariants, .. } => invariants.note_parked(),
            CtxInner::Worker {
                ops, inv_enabled, ..
            } => {
                if *inv_enabled {
                    ops.push(Op::Parked);
                }
            }
        }
    }

    /// Tell the conservation monitor a parked packet left its pending
    /// queue (flushed or evicted).
    #[inline]
    pub fn note_unparked(&mut self) {
        match &mut self.inner {
            CtxInner::Direct { invariants, .. } => invariants.note_unparked(),
            CtxInner::Worker {
                ops, inv_enabled, ..
            } => {
                if *inv_enabled {
                    ops.push(Op::Unparked);
                }
            }
        }
    }

    /// Whether the invariant monitors are on — lets hot paths skip the
    /// bookkeeping (e.g. a packet clone) feeding them.
    #[inline]
    pub fn invariants_enabled(&self) -> bool {
        match &self.inner {
            CtxInner::Direct { invariants, .. } => invariants.enabled(),
            CtxInner::Worker { inv_enabled, .. } => *inv_enabled,
        }
    }

    /// Tell the conservation monitor a packet was consumed by a mobility
    /// hook before local delivery (no trace event fires for it).
    #[inline]
    pub fn note_consumed(&mut self, pkt: &Ipv4Packet) {
        match &mut self.inner {
            CtxInner::Direct { invariants, .. } => invariants.note_consumed(pkt),
            CtxInner::Worker {
                ops, inv_enabled, ..
            } => {
                if *inv_enabled {
                    ops.push(Op::Consumed { pkt: pkt.clone() });
                }
            }
        }
    }

    /// Tell the conservation monitor a hook rewrote a packet's identity.
    #[inline]
    pub fn note_rewrite(&mut self, before: &Ipv4Packet, after: &Ipv4Packet) {
        match &mut self.inner {
            CtxInner::Direct { invariants, .. } => invariants.note_rewrite(before, after),
            CtxInner::Worker {
                ops, inv_enabled, ..
            } => {
                if *inv_enabled {
                    ops.push(Op::Rewrite {
                        before: before.clone(),
                        after: after.clone(),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

/// The simulated internetwork.
pub struct World {
    nodes: Vec<Option<Node>>,
    /// Interned node labels, following `nodes` index-for-index: metrics,
    /// trace and report labelling read these 4-byte symbols instead of
    /// cloning each node's heap `String` per snapshot.
    node_syms: Vec<crate::arena::Sym>,
    /// Per-node lane sequence counters: the seq half of every timer's
    /// `(node lane, seq)` key. Follows `nodes` index-for-index.
    node_seq: Vec<u64>,
    /// Per-node deterministic RNGs, seeded from the world seed and the node
    /// id — streams are independent of dispatch interleaving, so sharded
    /// and serial runs draw identically.
    node_rng: Vec<StdRng>,
    segments: Vec<Segment>,
    /// Mutable link state (medium occupancy, stats, fault RNG), parallel
    /// to `segments`; split out so shards can own their private media.
    seg_states: Vec<SegState>,
    queue: EventQueue,
    now: SimTime,
    seed: u64,
    sched_kind: SchedulerKind,
    /// The packet trace; enabled by default.
    pub trace: PacketTrace,
    /// Aggregate counters; disabled by default (near-zero cost), enabled
    /// with [`World::enable_metrics`].
    pub metrics: MetricsRegistry,
    /// Online invariant monitors; disabled by default (one branch per
    /// event), enabled with [`World::enable_invariants`] or
    /// [`World::apply_telemetry`].
    pub invariants: InvariantMonitor,
    next_mac: u32,
    pcap: Option<crate::wire::pcap::PcapWriter<Box<dyn std::io::Write>>>,
    /// Reusable same-timestamp batch buffer for the serial run loops —
    /// drained every batch, so the allocation is made once per world.
    batch: Vec<Event>,
    /// Periodic gauge sampler; absent (one branch per batch) until
    /// [`World::enable_sampling`].
    sampler: Option<Box<crate::profile::TimeSeries>>,
    /// How many shards the caller asked for; the runtime clamps to the
    /// segment count. 1 = serial.
    shards_requested: usize,
    /// Permanently degraded to serial: set when the sharded runtime would
    /// have to be created while cancellable timer handles minted by the
    /// serial queue are still live (their slab identity cannot survive the
    /// migration).
    serial_locked: bool,
    /// The sharded runtime; `None` until first needed (or never, when
    /// `shards_requested <= 1`).
    rt: Option<Runtime>,
    /// Same-timestamp batch being served one event at a time by
    /// [`World::step`] in sharded mode: the canonical global round, loaded
    /// whole so round precedence matches the serial scheduler.
    step_batch: std::collections::VecDeque<Event>,
}

impl World {
    /// Create a world with a deterministic RNG seed, using the process-wide
    /// default scheduler (see [`crate::event::set_default_scheduler`]) and
    /// the process-wide default shard count (see
    /// [`crate::shard::set_default_shards`]).
    pub fn new(seed: u64) -> World {
        World::with_shards(seed, crate::shard::default_shards())
    }

    /// Create a world that runs its event loop on `shards` shards
    /// (clamped to the segment count; 1 = serial). Sharded runs are
    /// byte-identical to serial runs — reports, metrics, traces and pcaps
    /// included — so the only observable difference is wall-clock time.
    pub fn with_shards(seed: u64, shards: usize) -> World {
        let kind = crate::event::default_scheduler();
        World {
            nodes: Vec::new(),
            node_syms: Vec::new(),
            node_seq: Vec::new(),
            node_rng: Vec::new(),
            segments: Vec::new(),
            seg_states: Vec::new(),
            queue: EventQueue::with_kind(kind),
            now: SimTime::ZERO,
            seed,
            sched_kind: kind,
            trace: PacketTrace::new(true),
            metrics: MetricsRegistry::new(false),
            invariants: InvariantMonitor::new(),
            next_mac: 1,
            pcap: None,
            batch: Vec::new(),
            sampler: None,
            shards_requested: shards.max(1),
            serial_locked: false,
            rt: None,
            step_batch: std::collections::VecDeque::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Start recording aggregate metrics (packet/byte counters per node,
    /// drops by reason, link utilization, transport counters). Reading them
    /// back goes through [`World::metrics`].
    pub fn enable_metrics(&mut self) {
        self.metrics.set_enabled(true);
        if let Some(rt) = &mut self.rt {
            for m in &mut rt.shard_metrics {
                m.set_enabled(true);
            }
        }
    }

    /// Start the online invariant monitors (packet conservation,
    /// metrics/scheduler reconciliation). Violations are reported through
    /// [`World::invariant_report`], never panicked on.
    pub fn enable_invariants(&mut self) {
        self.invariants.set_enabled(true);
    }

    /// Fan a [`TelemetryConfig`] out to every observability layer: arm
    /// the metrics registry's sketched mode, enable head-based flow
    /// sampling on the trace (when configured), and turn the invariant
    /// monitors on. The scale-ready telemetry entry point.
    pub fn apply_telemetry(&mut self, cfg: &TelemetryConfig) {
        if let Some(n) = cfg.sample_flows {
            self.trace.enable_flow_sampling(n, cfg.seed);
        }
        self.metrics.arm_sketch(SketchConfig {
            node_threshold: cfg.sketch_node_threshold,
            topk: cfg.topk,
            reservoir: cfg.reservoir,
            seed: cfg.seed,
        });
        self.invariants.set_enabled(true);
    }

    /// The scheduler ledger the invariant monitors reconcile against: in
    /// serial mode the queue's own counters; in sharded mode the global
    /// ledger the coordinator reconstructs in canonical replay order.
    fn sched_ledger(&self) -> (SchedulerStats, u64) {
        match &self.rt {
            Some(rt) => {
                let s = rt.sim_stats;
                (s, s.pushed - s.dispatched - s.cancelled)
            }
            None => (self.queue.stats(), self.queue.len() as u64),
        }
    }

    /// The invariant monitors' run-report section: counters plus every
    /// violation (incrementally recorded and final-check). Conservation
    /// is only judged when the world is quiescent — mid-run, in-flight
    /// packets are legitimate.
    pub fn invariant_report(&self) -> serde::Value {
        let (stats, pending) = self.sched_ledger();
        let totals = self.metrics.enabled().then(|| self.metrics.totals());
        self.invariants
            .report_value(self.now, &stats, pending, pending == 0, totals.as_ref())
    }

    /// Whether any invariant violation has been detected (incremental or
    /// final-check) — what CI smoke jobs assert on.
    pub fn has_invariant_violations(&self) -> bool {
        if self.invariants.violated() {
            return true;
        }
        let (stats, pending) = self.sched_ledger();
        let totals = self.metrics.enabled().then(|| self.metrics.totals());
        !self
            .invariants
            .final_violations(self.now, &stats, pending, pending == 0, totals.as_ref())
            .is_empty()
    }

    /// Human-readable node names indexed by `NodeId`, for labelling
    /// metrics snapshots and reports. Resolved from the interned symbols
    /// recorded at node creation — no per-snapshot `String` cloning, and
    /// the returned `&'static str`s are valid for the process lifetime.
    pub fn node_names(&self) -> Vec<&'static str> {
        crate::arena::resolve_all(&self.node_syms)
    }

    /// The interned label symbols, indexed by `NodeId`.
    pub fn node_syms(&self) -> &[crate::arena::Sym] {
        &self.node_syms
    }

    /// Capture every transmitted frame into a pcap stream (e.g. a
    /// `std::fs::File`) readable by Wireshark/tcpdump. Frames from all
    /// segments are interleaved in time order, like a tap on every wire.
    pub fn capture_pcap(&mut self, out: Box<dyn std::io::Write>) -> std::io::Result<()> {
        self.pcap = Some(crate::wire::pcap::PcapWriter::new(out)?);
        Ok(())
    }

    /// Stop capturing and flush; returns the number of frames written.
    pub fn finish_pcap(&mut self) -> std::io::Result<u64> {
        match self.pcap.take() {
            Some(w) => {
                let n = w.frames_written();
                w.finish()?;
                Ok(n)
            }
            None => Ok(0),
        }
    }

    // ---- construction -----------------------------------------------------

    /// Reserve capacity for `nodes` further nodes and `segments` further
    /// segments, exactly. Bulk builders (the hierarchical topology
    /// generator) call this so the node vectors are sized once instead of
    /// doubling their way up — at 10⁵ hosts, growth-doubling overshoot
    /// alone is worth hundreds of bytes per host.
    pub fn reserve(&mut self, nodes: usize, segments: usize) {
        self.nodes.reserve_exact(nodes);
        self.node_syms.reserve_exact(nodes);
        self.node_seq.reserve_exact(nodes);
        self.node_rng.reserve_exact(nodes);
        self.segments.reserve_exact(segments);
        self.seg_states.reserve_exact(segments);
    }

    /// Create a broadcast segment; attach nodes with [`World::attach`].
    pub fn add_segment(&mut self, config: LinkConfig) -> SegmentId {
        let s = self.segments.len();
        let mut seg = Segment::new(config);
        seg.lane = crate::event::segment_lane(s);
        seg.rng_seed = segment_seed(self.seed, s);
        self.segments.push(seg);
        self.seg_states.push(SegState::default());
        if let Some(rt) = &mut self.rt {
            rt.topo_dirty = true;
        }
        SegmentId(s)
    }

    /// Create a host node.
    pub fn add_host(&mut self, config: HostConfig) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.node_syms.push(crate::arena::intern(&config.name));
        self.nodes.push(Some(Node::Host(Host::new(id, config))));
        self.node_seq.push(0);
        self.node_rng
            .push(StdRng::seed_from_u64(node_seed(self.seed, id.0)));
        id
    }

    /// Create a router node.
    pub fn add_router(&mut self, config: RouterConfig) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.node_syms.push(crate::arena::intern(&config.name));
        self.nodes.push(Some(Node::Router(Router::new(id, config))));
        self.node_seq.push(0);
        self.node_rng
            .push(StdRng::seed_from_u64(node_seed(self.seed, id.0)));
        id
    }

    fn fresh_mac(&mut self) -> MacAddr {
        let m = MacAddr::from_index(self.next_mac);
        self.next_mac += 1;
        m
    }

    fn mark_topo_dirty(&mut self) {
        if let Some(rt) = &mut self.rt {
            rt.topo_dirty = true;
        }
    }

    /// Create a new interface on `node`, attach it to `seg`, and optionally
    /// configure an address ("171.64.15.9/24"-style).
    pub fn attach(&mut self, node: NodeId, seg: SegmentId, addr: Option<&str>) -> IfaceNo {
        let mac = self.fresh_mac();
        let mtu = self.segments[seg.0].config.mtu;
        let n = self.nodes[node.0].as_mut().expect("node exists");
        let iface = n.nic_mut().add_iface(mac);
        n.nic_mut().set_segment(iface, Some(seg), mtu);
        if let Some(a) = addr {
            n.nic_mut().set_addr(iface, Some(IfaceAddr::parse(a)));
        }
        n.invalidate_route_cache();
        self.segments[seg.0].attach(node, iface);
        self.segments[seg.0].register_mac(node, iface, mac);
        self.mark_topo_dirty();
        iface
    }

    /// Re-plug an existing interface into a different segment (mobility!).
    /// The address is left unchanged; callers configure it for the new net.
    pub fn reattach(&mut self, node: NodeId, iface: IfaceNo, seg: SegmentId) {
        self.detach(node, iface);
        let mtu = self.segments[seg.0].config.mtu;
        let n = self.nodes[node.0].as_mut().expect("node exists");
        n.nic_mut().set_segment(iface, Some(seg), mtu);
        let mac = n.nic().mac(iface);
        n.invalidate_route_cache();
        self.segments[seg.0].attach(node, iface);
        self.segments[seg.0].register_mac(node, iface, mac);
        self.mark_topo_dirty();
    }

    /// Unplug an interface from whatever segment it is on.
    pub fn detach(&mut self, node: NodeId, iface: IfaceNo) {
        let n = self.nodes[node.0].as_mut().expect("node exists");
        if let Some(old) = n.nic().segment(iface) {
            self.segments[old.0].detach(node, iface);
            n.nic_mut().set_segment(iface, None, 1500);
            n.invalidate_route_cache();
            self.mark_topo_dirty();
        }
    }

    // ---- access -------------------------------------------------------------

    /// Number of nodes ever created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a host (panics if `id` is a router).
    pub fn host(&self, id: NodeId) -> &Host {
        match self.nodes[id.0].as_ref().expect("node present") {
            Node::Host(h) => h,
            Node::Router(_) => panic!("node {} is a router", id.0),
        }
    }

    /// Mutably borrow a host (panics if `id` is a router).
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match self.nodes[id.0].as_mut().expect("node present") {
            Node::Host(h) => h,
            Node::Router(_) => panic!("node {} is a router", id.0),
        }
    }

    /// Mutably borrow a router (panics if `id` is a host).
    pub fn router_mut(&mut self, id: NodeId) -> &mut Router {
        match self.nodes[id.0].as_mut().expect("node present") {
            Node::Router(r) => r,
            Node::Host(_) => panic!("node {} is a host", id.0),
        }
    }

    /// A segment's traffic counters.
    pub fn segment_stats(&self, seg: SegmentId) -> LinkStats {
        self.seg_states[seg.0].stats
    }

    /// Mutably borrow a segment's parameters (tests change fault rates).
    /// Marks the shard topology dirty: a fault config can legalize or
    /// outlaw a shard border.
    pub fn segment_config_mut(&mut self, seg: SegmentId) -> &mut LinkConfig {
        self.mark_topo_dirty();
        &mut self.segments[seg.0].config
    }

    /// Run `f` against a host with a live [`NetCtx`] — how tests, examples
    /// and the mobility layer inject work into the simulation.
    pub fn host_do<R>(&mut self, id: NodeId, f: impl FnOnce(&mut Host, &mut NetCtx) -> R) -> R {
        self.ensure_runtime();
        let mut node = self.nodes[id.0].take().expect("node present");
        let queue = match &mut self.rt {
            Some(rt) => QueueRef::Routed {
                queues: &mut rt.queues,
                owner_node: &rt.owner_node,
                stats: &mut rt.sim_stats,
            },
            None => QueueRef::Single(&mut self.queue),
        };
        let r = {
            let mut ctx = NetCtx {
                now: self.now,
                node: id,
                inner: CtxInner::Direct {
                    queue,
                    segments: &self.segments,
                    seg_states: &mut self.seg_states,
                    rng: &mut self.node_rng[id.0],
                    seq: &mut self.node_seq[id.0],
                    trace: &mut self.trace,
                    metrics: &mut self.metrics,
                    invariants: &mut self.invariants,
                    pcap: &mut self.pcap,
                },
            };
            match &mut node {
                Node::Host(h) => f(h, &mut ctx),
                Node::Router(_) => panic!("node {} is a router", id.0),
            }
        };
        self.nodes[id.0] = Some(node);
        r
    }

    /// Schedule an immediate application poll on `node` (bootstraps apps).
    pub fn poll_soon(&mut self, node: NodeId) {
        self.ensure_runtime();
        let key = lane_key(node_lane(node), self.node_seq[node.0]);
        self.node_seq[node.0] += 1;
        let kind = EventKind::Timer(Timer {
            node,
            token: token(NS_APPS, 0),
        });
        match &mut self.rt {
            Some(rt) => {
                rt.queues[rt.owner_node[node.0] as usize].push_keyed(self.now, key, kind);
                rt.sim_stats.pushed += 1;
            }
            None => self.queue.push_keyed(self.now, key, kind),
        }
    }

    // ---- sharded runtime --------------------------------------------------

    /// Topology views the shard partitioner consumes: per-segment configs,
    /// per-segment attached node ids (deduplicated, ascending), and the
    /// inverse per-node segment lists.
    fn topo_views(&self) -> (Vec<LinkConfig>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let seg_cfgs: Vec<LinkConfig> = self.segments.iter().map(|s| s.config).collect();
        let seg_nodes: Vec<Vec<usize>> = self
            .segments
            .iter()
            .map(|s| {
                let mut v: Vec<usize> = s.attachments().iter().map(|&(n, _)| n.0).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let mut node_segs: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (s, nodes) in seg_nodes.iter().enumerate() {
            for &n in nodes {
                node_segs[n].push(s);
            }
        }
        (seg_cfgs, seg_nodes, node_segs)
    }

    /// Create or refresh the sharded runtime. A no-op when sharding is off
    /// (one shard requested, fewer than two segments, or permanently
    /// locked serial). On creation the serial queue's contents migrate to
    /// the shard queues — refused (with a warning, once) if cancellable
    /// timer handles are still live, since their slab identity cannot
    /// survive the migration.
    fn ensure_runtime(&mut self) {
        if self.shards_requested <= 1 || self.serial_locked {
            return;
        }
        if let Some(rt) = &mut self.rt {
            if rt.topo_dirty || rt.owner_node.len() != self.nodes.len() {
                let (cfgs, seg_nodes, node_segs) = {
                    let s = &*self;
                    s.topo_views()
                };
                self.rt
                    .as_mut()
                    .expect("runtime present")
                    .refresh(&cfgs, &seg_nodes, &node_segs);
            }
            return;
        }
        if self.segments.len() < 2 {
            return;
        }
        if self.queue.live_cancellable() > 0 {
            self.serial_locked = true;
            eprintln!(
                "netsim: sharding disabled for this world: cancellable timers \
                 predate the sharded runtime; running serial"
            );
            return;
        }
        let (cfgs, seg_nodes, node_segs) = self.topo_views();
        let mut rt = Runtime::partition(
            self.shards_requested,
            self.sched_kind,
            self.metrics.enabled(),
            &cfgs,
            &seg_nodes,
            &node_segs,
        );
        // Seed the global scheduler ledger from the serial queue *before*
        // draining it (popping counts into `dispatched`).
        rt.sim_stats = self.queue.stats();
        while let Some(ev) = self.queue.pop() {
            let shard = rt.owner_node[event_node(&ev.kind).0] as usize;
            rt.queues[shard].push_keyed(ev.at, ev.seq, ev.kind);
        }
        self.rt = Some(rt);
    }

    // ---- event loop -----------------------------------------------------------

    /// Fire one already-popped event: route it to the owning node with a
    /// fresh [`NetCtx`] view over the world. Events route to the serial
    /// queue or the shard queues depending on whether the sharded runtime
    /// exists. Shared by every coordinator-side dispatch path (serial run
    /// loops, merged mode, single-step).
    fn dispatch(&mut self, kind: EventKind) {
        let (node, iface_frame, token) = match kind {
            EventKind::Deliver { node, iface, frame } => (node, Some((iface, frame)), None),
            EventKind::Timer(t) => (t.node, None, Some(t.token)),
        };
        let kind_was_frame = iface_frame.is_some();
        // A node may have been detached between scheduling and delivery
        // (mid-flight frames to a departed mobile host are lost, as in
        // reality).
        let Some(mut n) = self.nodes.get_mut(node.0).and_then(Option::take) else {
            if kind_was_frame {
                self.invariants.note_detached_frame();
            }
            return;
        };
        if let Some((iface, _)) = &iface_frame {
            if n.nic().segment(*iface).is_none() {
                self.nodes[node.0] = Some(n);
                self.invariants.note_detached_frame();
                return;
            }
        }
        let queue = match &mut self.rt {
            Some(rt) => QueueRef::Routed {
                queues: &mut rt.queues,
                owner_node: &rt.owner_node,
                stats: &mut rt.sim_stats,
            },
            None => QueueRef::Single(&mut self.queue),
        };
        let mut ctx = NetCtx {
            now: self.now,
            node,
            inner: CtxInner::Direct {
                queue,
                segments: &self.segments,
                seg_states: &mut self.seg_states,
                rng: &mut self.node_rng[node.0],
                seq: &mut self.node_seq[node.0],
                trace: &mut self.trace,
                metrics: &mut self.metrics,
                invariants: &mut self.invariants,
                pcap: &mut self.pcap,
            },
        };
        match (iface_frame, token) {
            (Some((iface, frame)), _) => n.on_frame(&mut ctx, iface, &frame),
            (None, Some(token)) => n.on_timer(&mut ctx, token),
            (None, None) => unreachable!(),
        }
        self.nodes[node.0] = Some(n);
    }

    /// Load the next canonical global round into `step_batch`: the merged,
    /// seq-sorted union of every shard queue's batch at the globally
    /// minimal timestamp. Returns `false` when all queues are empty.
    fn load_step_batch(&mut self) -> bool {
        let rt = self.rt.as_mut().expect("runtime present");
        let mut buf: Vec<Event> = Vec::new();
        loop {
            let Some(tmin) = rt.queues.iter().filter_map(|q| q.min_time()).min() else {
                return false;
            };
            for q in &mut rt.queues {
                let _ = q.pop_batch_until(tmin, &mut buf);
            }
            if !buf.is_empty() {
                break;
            }
            // `tmin` was a tombstone-only bound; the probe reaped it, retry.
        }
        buf.sort_by_key(|e| e.seq);
        self.step_batch.extend(buf);
        true
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let _prof = crate::profile::scope("world/step");
        self.ensure_runtime();
        if self.rt.is_none() {
            let Some(Event { at, kind, .. }) = self.queue.pop() else {
                return false;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            if self.sampler.is_some() {
                self.maybe_sample();
            }
            if self.invariants.enabled() {
                let stats = self.queue.stats();
                let pending = self.queue.len() as u64;
                self.invariants.check_scheduler(self.now, &stats, pending);
            }
            self.dispatch(kind);
            return true;
        }
        if self.step_batch.is_empty() && !self.load_step_batch() {
            return false;
        }
        let Event { at, kind, .. } = self.step_batch.pop_front().expect("non-empty batch");
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        if self.sampler.is_some() {
            self.maybe_sample_sharded();
        }
        // Count the served event into the ledger first: unserved batch
        // leftovers then still count as pending, exactly like the serial
        // queue which pops one event at a time.
        self.rt
            .as_mut()
            .expect("runtime present")
            .sim_stats
            .dispatched += 1;
        if self.invariants.enabled() {
            let (stats, pending) = self.sched_ledger();
            self.invariants.check_scheduler(self.now, &stats, pending);
        }
        self.dispatch(kind);
        true
    }

    /// Dispatch whatever remains of an in-flight [`World::step`] round
    /// before a batch run starts, merged with any same-timestamp events the
    /// served steps already pushed — reconstructing exactly the batch the
    /// serial scheduler would pop next.
    fn flush_step_batch(&mut self) {
        if self.step_batch.is_empty() {
            return;
        }
        let t0 = self.step_batch.front().expect("non-empty").at;
        let mut buf: Vec<Event> = self.step_batch.drain(..).collect();
        {
            let rt = self.rt.as_mut().expect("step batch implies runtime");
            for q in &mut rt.queues {
                let _ = q.pop_batch_until(t0, &mut buf);
            }
        }
        buf.sort_by_key(|e| e.seq);
        let n = buf.len() as u64;
        self.now = t0;
        if self.sampler.is_some() {
            self.maybe_sample_sharded();
        }
        self.rt
            .as_mut()
            .expect("runtime present")
            .sim_stats
            .dispatched += n;
        if self.invariants.enabled() {
            let (stats, pending) = self.sched_ledger();
            self.invariants.check_scheduler(self.now, &stats, pending);
        }
        for Event { kind, .. } in buf {
            self.dispatch(kind);
        }
    }

    /// Run until the queue is empty or simulated time reaches `deadline`.
    ///
    /// Events are drained in same-timestamp batches: one queue probe pulls
    /// everything scheduled for the next instant (and decides the deadline
    /// check), instead of a peek *and* a pop per event. Events a batch
    /// schedules at the same instant get sequence numbers after the batch
    /// and are picked up by the next probe, so dispatch order is exactly
    /// the (time, seq) order of the one-at-a-time path — and, with more
    /// than one shard, exactly the serial order (see [`World::with_shards`]).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run_driven(deadline, None);
        self.now = self.now.max(deadline);
    }

    /// Run for a further `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Run until no events remain (bounded by `limit` events as a runaway
    /// guard). Panics if the limit is hit — a quiescing network should
    /// always drain.
    pub fn run_until_idle(&mut self, limit: usize) {
        self.run_driven(SimTime(u64::MAX), Some(limit as u64));
    }

    /// The shared driver behind [`World::run_until`] and
    /// [`World::run_until_idle`]: serial when sharding is off; otherwise
    /// the conservative parallel protocol, or — when a topology constraint
    /// or order-sensitive telemetry rules out deferred replay — the merged
    /// fallback that still uses the shard queues but dispatches every
    /// global batch inline in canonical order.
    fn run_driven(&mut self, deadline: SimTime, limit: Option<u64>) {
        let _prof = crate::profile::scope("world/run");
        self.ensure_runtime();
        if self.rt.is_none() {
            self.run_serial(deadline, limit);
            self.shrink_after_run();
            return;
        }
        self.flush_step_batch();
        let merged = {
            let rt = self.rt.as_ref().expect("runtime present");
            rt.degraded.is_some() || self.metrics.sketch_armed()
        };
        if merged {
            let rt = self.rt.as_mut().expect("runtime present");
            if !rt.warned {
                rt.warned = true;
                let why = rt
                    .degraded
                    .unwrap_or("sketched metrics are dispatch-order-sensitive");
                eprintln!("netsim: sharded run degraded to merged in-order dispatch: {why}");
            }
            self.run_merged(deadline, limit);
        } else {
            self.run_sharded(deadline, limit);
        }
        // Fold the shards' commutative counters into the world registry so
        // readers see one coherent view between runs.
        if let Some(rt) = &mut self.rt {
            let enabled = self.metrics.enabled();
            for m in &mut rt.shard_metrics {
                self.metrics.merge(m);
                *m = MetricsRegistry::new(enabled);
            }
        }
        self.shrink_after_run();
    }

    /// Give back burst capacity once a run has drained: scheduler bucket
    /// vectors (and the dispatch batch buffer) grow to the largest
    /// same-instant fan-out they ever carried — a broadcast storm on one
    /// big LAN — and would otherwise hold that high-water mark forever.
    fn shrink_after_run(&mut self) {
        self.queue.shrink();
        if let Some(rt) = &mut self.rt {
            for q in &mut rt.queues {
                q.shrink();
            }
        }
        if self.batch.is_empty() && self.batch.capacity() > 32 {
            self.batch = Vec::new();
        }
    }

    /// The serial event loop (exactly the pre-sharding hot path).
    fn run_serial(&mut self, deadline: SimTime, limit: Option<u64>) {
        let mut batch = std::mem::take(&mut self.batch);
        let mut dispatched = 0u64;
        loop {
            let t = {
                let _prof = crate::profile::scope("sched/pop_batch");
                self.queue.pop_batch_until(deadline, &mut batch)
            };
            let Some(t) = t else { break };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if self.sampler.is_some() {
                self.maybe_sample();
            }
            if self.invariants.enabled() {
                let stats = self.queue.stats();
                // The just-popped batch is dispatched-but-not-yet-run;
                // it is already counted in `dispatched`, and `len` no
                // longer includes it, so the ledger balances here.
                let pending = self.queue.len() as u64;
                self.invariants.check_scheduler(self.now, &stats, pending);
            }
            let _prof = crate::profile::scope("world/dispatch");
            for Event { kind, .. } in batch.drain(..) {
                if let Some(limit) = limit {
                    if dispatched >= limit {
                        panic!(
                            "run_until_idle: event limit {limit} exceeded at t={}",
                            self.now
                        );
                    }
                }
                dispatched += 1;
                self.dispatch(kind);
            }
        }
        self.batch = batch;
    }

    /// Merged fallback: events live in the shard queues, but every global
    /// same-timestamp batch is popped, seq-merged and dispatched inline by
    /// the coordinator — the exact serial order, with observers running
    /// inline. Used when deferred replay is unsound (faulty or zero-latency
    /// border, order-sensitive sketched metrics).
    fn run_merged(&mut self, deadline: SimTime, limit: Option<u64>) {
        let mut dispatched = 0u64;
        let mut buf: Vec<Event> = Vec::new();
        loop {
            let tmin = {
                let rt = self.rt.as_ref().expect("runtime present");
                rt.queues.iter().filter_map(|q| q.min_time()).min()
            };
            let Some(tmin) = tmin else { break };
            if tmin > deadline {
                break;
            }
            {
                let _prof = crate::profile::scope("sched/pop_batch");
                let rt = self.rt.as_mut().expect("runtime present");
                for q in &mut rt.queues {
                    let _ = q.pop_batch_until(tmin, &mut buf);
                }
            }
            if buf.is_empty() {
                // `tmin` was a tombstone-only bound; the probes reaped it.
                continue;
            }
            buf.sort_by_key(|e| e.seq);
            debug_assert!(tmin >= self.now, "time went backwards");
            self.now = tmin;
            if self.sampler.is_some() {
                self.maybe_sample_sharded();
            }
            self.rt
                .as_mut()
                .expect("runtime present")
                .sim_stats
                .dispatched += buf.len() as u64;
            if self.invariants.enabled() {
                let (stats, pending) = self.sched_ledger();
                self.invariants.check_scheduler(self.now, &stats, pending);
            }
            let _prof = crate::profile::scope("world/dispatch");
            for Event { kind, .. } in buf.drain(..) {
                if let Some(limit) = limit {
                    if dispatched >= limit {
                        panic!(
                            "run_until_idle: event limit {limit} exceeded at t={}",
                            self.now
                        );
                    }
                }
                dispatched += 1;
                self.dispatch(kind);
            }
        }
    }

    /// The conservative parallel protocol. Repeats a barrier loop:
    ///
    /// 1. probe every shard's next-activity time;
    /// 2. relax the probes through the border graph (link latency is the
    ///    lookahead) into per-shard *effective* lower bounds;
    /// 3. apply buffered cross-shard transmissions whose send time every
    ///    adjacent shard has provably passed;
    /// 4. replay finished rounds below the global frontier in canonical
    ///    `(time, round, key)` order — trace, pcap, invariants and the
    ///    scheduler ledger observe exactly the serial history;
    /// 5. run every shard that can advance for one window, dispatching
    ///    only events strictly below its horizon.
    ///
    /// Exits when every queue is drained past `deadline` with nothing left
    /// to apply or replay.
    fn run_sharded(&mut self, deadline: SimTime, limit: Option<u64>) {
        let mut rt = self.rt.take().expect("runtime present");
        let nshards = rt.nshards;
        let mut run_events: Vec<u64> = vec![0; nshards];
        let mut replayed_events: u64 = 0;
        loop {
            let mut t_next: Vec<Option<SimTime>> = rt.queues.iter().map(|q| q.min_time()).collect();
            let floors = rt.tx_floors();
            let mut eff = rt.effective(&t_next, &floors);
            let applied = self.apply_border_txs(&mut rt, &eff);
            if applied > 0 {
                t_next = rt.queues.iter().map(|q| q.min_time()).collect();
                let floors = rt.tx_floors();
                eff = rt.effective(&t_next, &floors);
            }
            let frontier = eff.iter().copied().min().unwrap_or(u64::MAX);
            let replayed = self.replay_rounds(&mut rt, frontier, limit, &mut replayed_events);
            let horizons = rt.horizons(&eff, deadline);
            let mut participants: Vec<usize> = Vec::new();
            for r in 0..nshards {
                let Some(t) = t_next[r] else { continue };
                if t > deadline {
                    continue;
                }
                if limit.is_some_and(|l| run_events[r] > l) {
                    // Locally over the event limit: excluded so the forced
                    // replay below fires the canonical limit panic.
                    continue;
                }
                if t < horizons[r] {
                    participants.push(r);
                } else {
                    rt.stats[r].stalls += 1;
                }
            }
            if participants.is_empty() {
                if applied > 0 || replayed > 0 {
                    continue;
                }
                if limit.is_some() && run_events.iter().any(|&e| e > limit.unwrap_or(u64::MAX)) {
                    self.replay_rounds(&mut rt, u64::MAX, limit, &mut replayed_events);
                    unreachable!("forced replay past the event limit must panic");
                }
                let all_idle = t_next.iter().all(|t| t.is_none_or(|t| t > deadline));
                if all_idle {
                    break;
                }
                panic!("netsim: sharded scheduler stalled with runnable events");
            }
            self.run_window(&mut rt, &participants, &horizons, limit, &mut run_events);
        }
        debug_assert!(
            rt.pending_txs.is_empty(),
            "undelivered border transmissions"
        );
        debug_assert!(rt.pending_rounds.is_empty(), "unreplayed rounds");
        self.rt = Some(rt);
    }

    /// Run one window on every participant shard (in parallel when the
    /// machine has more than one core), then collect the logged rounds and
    /// scatter their cross-shard transmissions into the pending buffer.
    fn run_window(
        &mut self,
        rt: &mut Runtime,
        participants: &[usize],
        horizons: &[SimTime],
        limit: Option<u64>,
        run_events: &mut [u64],
    ) {
        let _prof = crate::profile::scope("world/shard_window");
        let nshards = rt.nshards;
        // Partition `&mut` views of the node and segment state by owner:
        // zero-copy, and each shard sees its members indexed by slot.
        let mut nodes_p: Vec<Vec<&mut Option<Node>>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, slot) in self.nodes.iter_mut().enumerate() {
            nodes_p[rt.owner_node[i] as usize].push(slot);
        }
        let mut seqs_p: Vec<Vec<&mut u64>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, s) in self.node_seq.iter_mut().enumerate() {
            seqs_p[rt.owner_node[i] as usize].push(s);
        }
        let mut rngs_p: Vec<Vec<&mut StdRng>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, r) in self.node_rng.iter_mut().enumerate() {
            rngs_p[rt.owner_node[i] as usize].push(r);
        }
        // Border segment state stays with the coordinator (only
        // `apply_border_txs` touches it).
        let mut segst_p: Vec<Vec<&mut SegState>> = (0..nshards).map(|_| Vec::new()).collect();
        for (s, st) in self.seg_states.iter_mut().enumerate() {
            if !rt.border[s] {
                segst_p[rt.owner_seg[s] as usize].push(st);
            }
        }
        let shared = ShardShared {
            segments: &self.segments,
            node_slot: &rt.node_slot,
            seg_slot: &rt.seg_slot,
            border: &rt.border,
            inv_enabled: self.invariants.enabled(),
            trace_on: self.trace.is_enabled(),
            pcap_on: self.pcap.is_some(),
        };
        let mut runs: Vec<ShardRun> = Vec::with_capacity(participants.len());
        {
            let mut queues: Vec<Option<&mut EventQueue>> = rt.queues.iter_mut().map(Some).collect();
            let mut metrics: Vec<Option<&mut MetricsRegistry>> =
                rt.shard_metrics.iter_mut().map(Some).collect();
            let mut stats: Vec<Option<&mut ShardStats>> = rt.stats.iter_mut().map(Some).collect();
            for &r in participants {
                runs.push(ShardRun {
                    shard: r,
                    horizon: horizons[r],
                    budget: match limit {
                        Some(l) => l.saturating_add(1).saturating_sub(run_events[r]),
                        None => u64::MAX,
                    },
                    queue: queues[r].take().expect("participant queue"),
                    metrics: metrics[r].take().expect("participant metrics"),
                    stats: stats[r].take().expect("participant stats"),
                    nodes: std::mem::take(&mut nodes_p[r]),
                    seqs: std::mem::take(&mut seqs_p[r]),
                    rngs: std::mem::take(&mut rngs_p[r]),
                    seg_states: std::mem::take(&mut segst_p[r]),
                    rounds: Vec::new(),
                    events: 0,
                });
            }
        }
        if rt.parallel && runs.len() > 1 {
            let sh = &shared;
            let (first, rest) = runs.split_first_mut().expect("non-empty runs");
            std::thread::scope(|scope| {
                for run in rest.iter_mut() {
                    scope.spawn(move || run_shard_window(sh, run));
                }
                run_shard_window(sh, first);
            });
        } else {
            for run in &mut runs {
                run_shard_window(&shared, run);
            }
        }
        let mut collected: Vec<Vec<RoundLog>> = Vec::with_capacity(runs.len());
        for run in runs {
            let ShardRun {
                shard,
                events,
                rounds,
                stats,
                ..
            } = run;
            run_events[shard] += events;
            let crossed = rounds
                .iter()
                .flat_map(|rd| rd.groups.iter())
                .flat_map(|g| g.ops.iter())
                .filter(|op| matches!(op, Op::BorderTx { .. }))
                .count() as u64;
            stats.msgs_out += crossed;
            collected.push(rounds);
        }
        for rounds in collected {
            for round in &rounds {
                for g in &round.groups {
                    for (i, op) in g.ops.iter().enumerate() {
                        if let Op::BorderTx { seg, iface, frame } = op {
                            rt.pending_txs.push(PendingTx {
                                seg: *seg,
                                t: round.t,
                                round: round.round,
                                key: g.key,
                                op: i as u32,
                                node: g.node,
                                iface: *iface,
                                frame: frame.clone(),
                            });
                        }
                    }
                }
            }
            rt.pending_rounds.extend(rounds);
        }
    }

    /// Apply every buffered cross-shard transmission whose send time is
    /// provably in every adjacent shard's past, in canonical order. The
    /// medium (occupancy, stats, delivery scheduling) evolves exactly as
    /// under serial dispatch; the observer half is recorded as a
    /// [`TxRecord`] consumed by the matching `Op::BorderTx` replay.
    fn apply_border_txs(&mut self, rt: &mut Runtime, eff: &[u64]) -> usize {
        if rt.pending_txs.is_empty() {
            return 0;
        }
        rt.sort_pending_txs();
        let mut applied = 0usize;
        let txs = std::mem::take(&mut rt.pending_txs);
        let mut remaining: Vec<PendingTx> = Vec::with_capacity(txs.len());
        for tx in txs {
            if tx.t.0 >= rt.border_threshold(eff, tx.seg) {
                remaining.push(tx);
                continue;
            }
            let st = &mut self.seg_states[tx.seg];
            let (queue_wait, serialize) = if self.metrics.enabled() {
                (
                    st.backlog(tx.t),
                    self.segments[tx.seg].config.serialize_time(tx.frame.len()),
                )
            } else {
                (SimDuration::ZERO, SimDuration::ZERO)
            };
            let wire_len = tx.frame.len();
            let mut sink = BorderApplySink {
                queues: &mut rt.queues,
                owner_node: &rt.owner_node,
                stats: &mut rt.stats,
                pushed: 0,
            };
            let outcome =
                self.segments[tx.seg].transmit(st, (tx.node, tx.iface), tx.frame, tx.t, &mut sink);
            let pushed = sink.pushed;
            rt.tx_records[tx.seg].push_back(TxRecord {
                wire_len,
                queue_wait,
                serialize,
                outcome,
                pushed,
            });
            applied += 1;
        }
        rt.pending_txs = remaining;
        applied
    }

    /// Replay every logged round strictly below `frontier`: merge rounds
    /// with equal `(time, round)` across shards, order their event groups
    /// by lane key, and run each group's deferred observer effects. This
    /// is where the trace, the pcap stream, the conservation monitors and
    /// the scheduler ledger observe the run — in exactly the serial order.
    fn replay_rounds(
        &mut self,
        rt: &mut Runtime,
        frontier: u64,
        limit: Option<u64>,
        replayed_events: &mut u64,
    ) -> usize {
        if rt.pending_rounds.is_empty() {
            return 0;
        }
        let all = std::mem::take(&mut rt.pending_rounds);
        let mut ready: Vec<RoundLog> = Vec::new();
        for r in all {
            if r.t.0 < frontier {
                ready.push(r);
            } else {
                rt.pending_rounds.push(r);
            }
        }
        if ready.is_empty() {
            return 0;
        }
        let _prof = crate::profile::scope("world/replay");
        ready.sort_by_key(|r| (r.t, r.round));
        let mut count = 0usize;
        let mut i = 0usize;
        while i < ready.len() {
            let (t, round) = (ready[i].t, ready[i].round);
            let mut batch_total = 0u64;
            let mut groups: Vec<Group> = Vec::new();
            while i < ready.len() && ready[i].t == t && ready[i].round == round {
                batch_total += ready[i].batch_len;
                groups.append(&mut ready[i].groups);
                i += 1;
            }
            groups.sort_by_key(|g| g.key);
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if self.sampler.is_some() {
                self.maybe_sample_rt(rt);
            }
            rt.sim_stats.dispatched += batch_total;
            if self.invariants.enabled() {
                let s = rt.sim_stats;
                let pending = s.pushed - s.dispatched - s.cancelled;
                self.invariants.check_scheduler(self.now, &s, pending);
            }
            for g in groups {
                if let Some(lim) = limit {
                    if *replayed_events >= lim {
                        panic!(
                            "run_until_idle: event limit {lim} exceeded at t={}",
                            self.now
                        );
                    }
                }
                *replayed_events += 1;
                count += 1;
                rt.sim_stats.pushed += g.counts.pushed;
                rt.sim_stats.cancelled += g.counts.cancelled;
                for op in g.ops {
                    self.replay_op(rt, g.node, op);
                }
            }
        }
        count
    }

    /// Replay one deferred observer effect at the current (replayed) time.
    fn replay_op(&mut self, rt: &mut Runtime, node: NodeId, op: Op) {
        match op {
            Op::Trace { kind, pkt } => {
                self.trace.record(self.now, node, kind, &pkt);
                self.invariants.record_packet(kind, &pkt);
            }
            Op::Transform {
                kind,
                parent,
                child,
            } => {
                self.trace
                    .record_transform(self.now, node, kind, parent.as_ref(), &child);
                self.invariants.record_transform(parent.as_ref(), &child);
            }
            Op::Promote { a, b, proto } => self.trace.promote_endpoints(a, b, proto),
            Op::Pcap { frame } => {
                if let Some(p) = self.pcap.as_mut() {
                    let _ = p.write_frame(self.now, &frame);
                }
            }
            Op::WireLoss => self.invariants.note_wire_loss(),
            Op::UnclaimedFrame => self.invariants.note_unclaimed_frame(),
            Op::DetachedFrame => self.invariants.note_detached_frame(),
            Op::Parked => self.invariants.note_parked(),
            Op::Unparked => self.invariants.note_unparked(),
            Op::Consumed { pkt } => self.invariants.note_consumed(&pkt),
            Op::Rewrite { before, after } => self.invariants.note_rewrite(&before, &after),
            Op::BorderTx {
                seg,
                iface: _,
                frame,
            } => {
                let rec = rt.tx_records[seg]
                    .pop_front()
                    .expect("border tx applied before replay");
                self.metrics.record_transmit(
                    SegmentId(seg),
                    rec.wire_len,
                    rec.queue_wait,
                    rec.serialize,
                    rec.outcome,
                );
                if matches!(rec.outcome, FaultOutcome::Drop | FaultOutcome::Corrupt) {
                    self.invariants.note_wire_loss();
                } else if self.invariants.enabled() && frame.len() >= 6 {
                    let dst = MacAddr([frame[0], frame[1], frame[2], frame[3], frame[4], frame[5]]);
                    if !dst.is_broadcast()
                        && !dst.is_multicast()
                        && !self.segments[seg].mac_attached(dst)
                    {
                        self.invariants.note_unclaimed_frame();
                    }
                }
                if rec.outcome != FaultOutcome::Drop {
                    if let Some(p) = self.pcap.as_mut() {
                        let _ = p.write_frame(self.now, &frame);
                    }
                }
                rt.sim_stats.pushed += rec.pushed;
            }
        }
    }

    // ---- scheduler introspection -------------------------------------------

    /// Events currently queued (cancelled timers excluded).
    pub fn pending_events(&self) -> usize {
        match &self.rt {
            Some(_) => {
                let (_, pending) = self.sched_ledger();
                pending as usize + self.step_batch.len()
            }
            None => self.queue.len(),
        }
    }

    /// Scheduler activity counters: events pushed, dispatched, and
    /// cancelled before firing. Cancelled events are never dispatched and
    /// therefore never reach the trace or metrics. In sharded mode this is
    /// the global ledger, byte-identical with the serial counters.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        match &self.rt {
            Some(rt) => rt.sim_stats,
            None => self.queue.stats(),
        }
    }

    /// Timing-wheel gauges (cascades, occupancy, overflow pressure)
    /// recorded while the flight recorder was enabled; all zeros
    /// otherwise and on the reference-heap backend. In sharded mode the
    /// per-shard wheels' gauges are merged (counters summed, peaks maxed).
    pub fn scheduler_telemetry(&self) -> SchedulerTelemetry {
        match &self.rt {
            None => self.queue.telemetry(),
            Some(rt) => {
                let mut out = SchedulerTelemetry::default();
                for q in &rt.queues {
                    let t = q.telemetry();
                    out.cascades += t.cascades;
                    out.cascade_entries += t.cascade_entries;
                    out.overflow_promotions += t.overflow_promotions;
                    out.overflow_peak = out.overflow_peak.max(t.overflow_peak);
                    out.samples += t.samples;
                    for (a, b) in out.occupancy_sum.iter_mut().zip(t.occupancy_sum) {
                        *a += b;
                    }
                    for (a, b) in out.occupancy_peak.iter_mut().zip(t.occupancy_peak) {
                        *a = (*a).max(b);
                    }
                }
                out
            }
        }
    }

    /// Per-shard utilization counters (events dispatched, windows run,
    /// horizon stalls, border messages in/out); `None` until the sharded
    /// runtime exists (serial worlds never create one).
    pub fn shard_stats(&self) -> Option<&[ShardStats]> {
        self.rt.as_ref().map(|rt| rt.stats.as_slice())
    }

    /// How many shards the event loop actually runs on (1 = serial).
    pub fn shard_count(&self) -> usize {
        self.rt.as_ref().map_or(1, |rt| rt.nshards)
    }

    // ---- gauge sampling --------------------------------------------------------

    /// Start sampling runtime gauges (dispatch rates, live timers, wheel
    /// occupancy, route-cache counters, a heap-footprint estimate) every
    /// `interval` of *simulated* time, keeping at most `cap` samples: when
    /// the buffer fills, every other sample is dropped and the interval
    /// doubles, so arbitrarily long runs stay bounded and evenly covered.
    pub fn enable_sampling(&mut self, interval: SimDuration, cap: usize) {
        self.sampler = Some(Box::new(crate::profile::TimeSeries::new(interval.0, cap)));
    }

    /// Gauge samples recorded so far, oldest first; `None` until
    /// [`World::enable_sampling`].
    pub fn samples(&self) -> Option<&[crate::profile::Sample]> {
        self.sampler
            .as_deref()
            .map(crate::profile::TimeSeries::samples)
    }

    /// The sample set as a run-report value; `None` until
    /// [`World::enable_sampling`].
    pub fn samples_value(&self) -> Option<serde::Value> {
        self.sampler
            .as_deref()
            .map(crate::profile::TimeSeries::to_value)
    }

    /// Crude heap-footprint estimate: node, trace-event, and queued-event
    /// counts times representative per-entry sizes. Gauge-grade only.
    fn mem_estimate(&self) -> u64 {
        self.nodes.len() as u64 * 768
            + self.trace.events().len() as u64 * 160
            + self.queue.len() as u64 * 112
    }

    /// Record a sample if one is due at the current sim time. Callers
    /// gate on `self.sampler.is_some()` so the run loops pay one branch.
    fn maybe_sample(&mut self) {
        let due = self.sampler.as_deref().is_some_and(|s| s.due(self.now.0));
        if !due {
            return;
        }
        let (occ, overflow) = self.queue.wheel_occupancy();
        let raw = crate::profile::RawGauges {
            sim_us: self.now.0,
            dispatched: self.queue.stats().dispatched,
            live_timers: self.queue.len() as u64,
            wheel_occupancy: occ.iter().sum(),
            overflow_len: overflow as u64,
            mem_est_bytes: self.mem_estimate(),
        };
        if let Some(s) = self.sampler.as_deref_mut() {
            s.push(raw);
        }
    }

    /// Sharded-mode sampler entry points used where the runtime still sits
    /// in `self` (step / merged paths).
    fn maybe_sample_sharded(&mut self) {
        if let Some(rt) = self.rt.take() {
            self.maybe_sample_rt(&rt);
            self.rt = Some(rt);
        }
    }

    /// Record a sample against the sharded runtime's global ledger and the
    /// instantaneous union of the shard wheels. Profile-gauge-grade: the
    /// gauges are an instantaneous parallel snapshot, outside the
    /// byte-identity guarantee (which covers reports, metrics, traces and
    /// pcaps, not the profiler's own sampling of wheel internals).
    fn maybe_sample_rt(&mut self, rt: &Runtime) {
        let due = self.sampler.as_deref().is_some_and(|s| s.due(self.now.0));
        if !due {
            return;
        }
        let s = rt.sim_stats;
        let live = s.pushed - s.dispatched - s.cancelled;
        let mut occ_sum = 0u64;
        let mut overflow = 0usize;
        for q in &rt.queues {
            let (occ, of) = q.wheel_occupancy();
            occ_sum += occ.iter().sum::<u64>();
            overflow += of;
        }
        let raw = crate::profile::RawGauges {
            sim_us: self.now.0,
            dispatched: s.dispatched,
            live_timers: live,
            wheel_occupancy: occ_sum,
            overflow_len: overflow as u64,
            mem_est_bytes: self.nodes.len() as u64 * 768
                + self.trace.events().len() as u64 * 160
                + live * 112,
        };
        if let Some(smp) = self.sampler.as_deref_mut() {
            smp.push(raw);
        }
    }
    // ---- automatic routing ----------------------------------------------------

    /// Compute shortest-path routes (by cumulative link latency) from every
    /// node to every addressed prefix in the topology and install them,
    /// replacing existing route tables. Only routers forward, so paths only
    /// transit router nodes. Call once after building a static topology.
    pub fn compute_routes(&mut self) {
        let _prof = crate::profile::scope("world/compute_routes");
        let seg_count = self.segments.len();

        // Which prefixes live on which segment. Order preserved (it decides
        // route-table order); the HashSet makes dedup O(1) per interface
        // instead of a linear rescan of everything seen so far.
        let mut prefix_home: Vec<(Ipv4Cidr, SegmentId)> = Vec::new();
        let mut prefix_seen: HashSet<(Ipv4Cidr, SegmentId)> = HashSet::new();
        for (_, node) in self.nodes_iter() {
            let nic = node.nic();
            for i in 0..nic.iface_count() {
                if let (Some(a), Some(seg)) = (nic.addr(i), nic.segment(i)) {
                    if prefix_seen.insert((a.prefix, seg)) {
                        prefix_home.push((a.prefix, seg));
                    }
                }
            }
        }

        // Router adjacency: router R with ifaces on segments A and B links
        // A↔B. Also remember each router's address on each segment.
        // Indexed by segment number directly — segment ids are dense.
        let mut seg_routers: Vec<Vec<(NodeId, IfaceNo, Ipv4Addr)>> = vec![Vec::new(); seg_count];
        for (id, node) in self.nodes_iter() {
            if !node.is_router() {
                continue;
            }
            let nic = node.nic();
            for i in 0..nic.iface_count() {
                if let (Some(a), Some(seg)) = (nic.addr(i), nic.segment(i)) {
                    seg_routers[seg.0].push((id, i, a.addr));
                }
            }
        }

        let node_ids: Vec<NodeId> = (0..self.nodes.len())
            .filter(|i| self.nodes[*i].is_some())
            .map(NodeId)
            .collect();

        // Dijkstra scratch arrays, allocated once and reset per node (flat
        // vectors indexed by segment instead of per-node HashMaps).
        let mut dist: Vec<Option<u64>> = vec![None; seg_count];
        let mut pred: Vec<Option<(Ipv4Addr, usize)>> = vec![None; seg_count];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();

        for me in node_ids {
            let (starts, my_segs): (Vec<(usize, IfaceNo)>, Vec<usize>) = {
                let node = self.nodes[me.0].as_ref().unwrap();
                let nic = node.nic();
                let mut starts = Vec::new();
                for i in 0..nic.iface_count() {
                    if let Some(seg) = nic.segment(i) {
                        if nic.addr(i).is_some() {
                            starts.push((seg.0, i));
                        }
                    }
                }
                let segs = starts.iter().map(|&(s, _)| s).collect();
                (starts, segs)
            };
            if starts.is_empty() {
                continue;
            }

            // Dijkstra over segments. dist[s], pred[s] = (via_router_addr,
            // prev_segment).
            dist.fill(None);
            pred.fill(None);
            heap.clear();
            for &(s, _) in &starts {
                let w = self.segments[s].config.latency.as_micros() + 1;
                if dist[s].is_none_or(|d| w < d) {
                    dist[s] = Some(w);
                    heap.push(std::cmp::Reverse((w, s)));
                }
            }
            while let Some(std::cmp::Reverse((d, s))) = heap.pop() {
                if dist[s] != Some(d) {
                    continue;
                }
                // Expand via every router on segment s.
                for &(rid, _, raddr) in &seg_routers[s] {
                    if rid == me {
                        continue;
                    }
                    let rnic = self.nodes[rid.0].as_ref().unwrap().nic();
                    for j in 0..rnic.iface_count() {
                        let Some(next) = rnic.segment(j) else {
                            continue;
                        };
                        if next.0 == s || rnic.addr(j).is_none() {
                            continue;
                        }
                        let w = d + self.segments[next.0].config.latency.as_micros() + 1;
                        if dist[next.0].is_none_or(|cur| w < cur) {
                            dist[next.0] = Some(w);
                            pred[next.0] = Some((raddr, s));
                            heap.push(std::cmp::Reverse((w, next.0)));
                        }
                    }
                }
            }

            // Install routes.
            let mut new_routes: Vec<(Ipv4Cidr, IfaceNo, Option<Ipv4Addr>)> = Vec::new();
            for &(prefix, home_seg) in &prefix_home {
                if my_segs.contains(&home_seg.0) {
                    // On-link: routers need an explicit connected route;
                    // hosts resolve on-link destinations directly but the
                    // route is harmless for them too.
                    let iface = starts.iter().find(|&&(s, _)| s == home_seg.0).unwrap().1;
                    new_routes.push((prefix, iface, None));
                    continue;
                }
                if dist[home_seg.0].is_none() {
                    continue; // unreachable
                }
                // Walk predecessors back to one of our start segments to
                // find the first-hop gateway.
                let mut seg = home_seg.0;
                let gateway;
                loop {
                    let (raddr, prev) = pred[seg].expect("pred chain");
                    if my_segs.contains(&prev) {
                        gateway = (raddr, prev);
                        break;
                    }
                    seg = prev;
                }
                let iface = starts.iter().find(|&&(s, _)| s == gateway.1).unwrap().1;
                new_routes.push((prefix, iface, Some(gateway.0)));
            }

            let node = self.nodes[me.0].as_mut().unwrap();
            node.clear_routes();
            for (p, i, g) in new_routes {
                node.add_route(p, i, g);
            }
        }
    }

    fn nodes_iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i), n)))
    }
}

// ---------------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------------

/// Read-only state shared by every shard worker during one window.
struct ShardShared<'w> {
    segments: &'w [Segment],
    node_slot: &'w [u32],
    seg_slot: &'w [u32],
    border: &'w [bool],
    inv_enabled: bool,
    trace_on: bool,
    pcap_on: bool,
}

/// One shard's mutable slice of the world for one window: its queue,
/// metrics registry, stats, and `&mut` views of its member nodes and
/// private segment states (indexed by slot).
struct ShardRun<'w> {
    shard: usize,
    horizon: SimTime,
    /// Remaining event allowance under `run_until_idle`'s limit: checked
    /// at batch boundaries only (a batch always completes), so it bounds
    /// runaway shards without ever splitting a canonical round.
    budget: u64,
    queue: &'w mut EventQueue,
    metrics: &'w mut MetricsRegistry,
    stats: &'w mut ShardStats,
    nodes: Vec<&'w mut Option<Node>>,
    seqs: Vec<&'w mut u64>,
    rngs: Vec<&'w mut StdRng>,
    seg_states: Vec<&'w mut SegState>,
    rounds: Vec<RoundLog>,
    events: u64,
}

/// Drain one shard's queue up to (strictly below) its horizon, dispatching
/// events against its own nodes and private media and logging every round
/// for canonical replay. Runs on a worker thread; everything it touches is
/// owned by or partitioned to this shard.
fn run_shard_window<'w>(shared: &ShardShared<'w>, run: &mut ShardRun<'w>) {
    let _prof = crate::profile::scope("world/shard_run");
    let hcap = SimTime(run.horizon.0 - 1);
    let mut buf: Vec<Event> = Vec::new();
    let mut cur_t: Option<SimTime> = None;
    let mut round: u32 = 0;
    run.stats.windows += 1;
    loop {
        if run.budget == 0 {
            break;
        }
        let Some(t) = run.queue.pop_batch_until(hcap, &mut buf) else {
            break;
        };
        // Shard-local round numbering at `t` coincides with the serial
        // scheduler's batch numbering at `t`: border latency is strictly
        // positive, so same-timestamp causality never crosses shards, and
        // a window never resumes another window's timestamp (a capped
        // shard is excluded from further windows entirely).
        round = match cur_t {
            Some(ct) if ct == t => round + 1,
            _ => 0,
        };
        cur_t = Some(t);
        let batch_len = buf.len() as u64;
        let mut groups: Vec<Group> = Vec::with_capacity(buf.len());
        for ev in buf.drain(..) {
            run.budget = run.budget.saturating_sub(1);
            let key = ev.seq;
            let node = event_node(&ev.kind);
            let slot = shared.node_slot[node.0] as usize;
            let mut counts = PushCounts::default();
            let mut ops: Vec<Op> = Vec::new();
            let (iface_frame, tok) = match ev.kind {
                EventKind::Deliver { iface, frame, .. } => (Some((iface, frame)), None),
                EventKind::Timer(t) => (None, Some(t.token)),
            };
            // Mirror the serial dispatcher's detached-node handling.
            let Some(mut n) = run.nodes[slot].take() else {
                if iface_frame.is_some() && shared.inv_enabled {
                    ops.push(Op::DetachedFrame);
                }
                groups.push(Group {
                    key,
                    node,
                    counts,
                    ops,
                });
                continue;
            };
            if let Some((iface, _)) = &iface_frame {
                if n.nic().segment(*iface).is_none() {
                    *run.nodes[slot] = Some(n);
                    if shared.inv_enabled {
                        ops.push(Op::DetachedFrame);
                    }
                    groups.push(Group {
                        key,
                        node,
                        counts,
                        ops,
                    });
                    continue;
                }
            }
            {
                let mut ctx = NetCtx {
                    now: t,
                    node,
                    inner: CtxInner::Worker {
                        queue: &mut *run.queue,
                        counts: &mut counts,
                        ops: &mut ops,
                        segments: shared.segments,
                        seg_states: &mut run.seg_states,
                        seg_slot: shared.seg_slot,
                        border: shared.border,
                        rng: &mut *run.rngs[slot],
                        seq: &mut *run.seqs[slot],
                        metrics: &mut *run.metrics,
                        inv_enabled: shared.inv_enabled,
                        trace_on: shared.trace_on,
                        pcap_on: shared.pcap_on,
                    },
                };
                match (iface_frame, tok) {
                    (Some((iface, frame)), _) => n.on_frame(&mut ctx, iface, &frame),
                    (None, Some(token)) => n.on_timer(&mut ctx, token),
                    (None, None) => unreachable!(),
                }
            }
            *run.nodes[slot] = Some(n);
            groups.push(Group {
                key,
                node,
                counts,
                ops,
            });
        }
        run.events += batch_len;
        run.stats.events += batch_len;
        run.rounds.push(RoundLog {
            t,
            round,
            batch_len,
            groups,
        });
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::router::FilterRule;
    use crate::device::TxMeta;
    use crate::trace::DropReason;
    use crate::wire::icmp::IcmpMessage;
    use crate::wire::ipv4::IpProtocol;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Two LANs joined by one router.
    ///   lanA(10.0.1.0/24): alice(.10) -- r(.1)
    ///   lanB(10.0.2.0/24): r(.1) -- bob(.10)
    fn two_lan_world() -> (World, NodeId, NodeId, NodeId) {
        let mut w = World::new(7);
        let lan_a = w.add_segment(LinkConfig::lan());
        let lan_b = w.add_segment(LinkConfig::lan());
        let alice = w.add_host(HostConfig::conventional("alice"));
        let bob = w.add_host(HostConfig::conventional("bob"));
        let r = w.add_router(RouterConfig::named("r"));
        w.attach(alice, lan_a, Some("10.0.1.10/24"));
        w.attach(bob, lan_b, Some("10.0.2.10/24"));
        w.attach(r, lan_a, Some("10.0.1.1/24"));
        w.attach(r, lan_b, Some("10.0.2.1/24"));
        w.compute_routes();
        (w, alice, bob, r)
    }

    #[test]
    fn ping_across_router() {
        let (mut w, alice, bob, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        // Bob logged the request, alice the reply.
        assert!(w
            .host(bob)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 1, .. })));
        assert!(w.host(alice).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::EchoReply { seq: 1, .. }
        ) && e.from == ip("10.0.2.10")));
    }

    #[test]
    fn ping_on_same_segment_needs_no_router() {
        let mut w = World::new(7);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.1.1/24"));
        w.attach(b, lan, Some("10.0.1.2/24"));
        // No compute_routes: on-link resolution needs no routes at all.
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.1"), ip("10.0.1.2"), 5)
        });
        w.run_until_idle(1_000);
        assert!(w
            .host(a)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 5, .. })));
    }

    #[test]
    fn router_decrements_ttl_and_reports_expiry() {
        let (mut w, alice, _bob, _r) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            let msg = IcmpMessage::EchoRequest {
                ident: 1,
                seq: 1,
                payload: Bytes::from_static(b"x"),
            };
            let mut p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("10.0.2.10"),
                IpProtocol::Icmp,
                Bytes::from(msg.emit()),
            );
            p.ttl = 1; // dies at the router
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.dst == ip("10.0.2.10"));
        assert!(drops.iter().any(|(_, r)| *r == DropReason::TtlExpired));
        // ICMP errors about ICMP are suppressed, so use UDP to see one.
        w.host_do(alice, |h, ctx| {
            let mut p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("10.0.2.10"),
                IpProtocol::Udp,
                Bytes::from_static(b"payload!"),
            );
            p.ttl = 1;
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        assert!(w
            .host(alice)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::TimeExceeded { .. })));
    }

    #[test]
    fn no_route_is_dropped_and_reported() {
        let (mut w, alice, _, _) = two_lan_world();
        // Give alice a default route so the packet reaches the router,
        // which has no route for the destination and reports back.
        w.host_mut(alice)
            .add_route(Ipv4Cidr::default_route(), 0, Some(ip("10.0.1.1")));
        w.host_do(alice, |h, ctx| {
            let p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("99.99.99.99"),
                IpProtocol::Udp,
                Bytes::from_static(b"nowhere"),
            );
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.dst == ip("99.99.99.99"));
        assert!(drops.iter().any(|(_, r)| *r == DropReason::NoRoute));
        assert!(w.host(alice).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::DestUnreachable {
                code: crate::wire::icmp::UnreachableCode::Net,
                ..
            }
        )));
    }

    #[test]
    fn ingress_filter_blocks_spoofed_source_end_to_end() {
        let (mut w, alice, bob, r) = two_lan_world();
        // Boundary filter: packets arriving on lanA's router iface (0) with
        // sources claiming lanB are spoofed.
        let inside: Ipv4Cidr = "10.0.2.0/24".parse().unwrap();
        w.router_mut(r)
            .filters
            .push(FilterRule::ingress_source_filter(0, inside));
        // Alice spoofs bob's network as source (the Figure 2 situation).
        w.host_do(alice, |h, ctx| {
            let p = Ipv4Packet::new(
                ip("10.0.2.99"),
                ip("10.0.2.10"),
                IpProtocol::Udp,
                Bytes::from_static(b"spoof"),
            );
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.src == ip("10.0.2.99"));
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].1, DropReason::SourceAddressFilter);
        assert_eq!(w.trace.deliveries(|s| s.dst == ip("10.0.2.10")), 0);
        // Honest traffic still flows.
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 9)
        });
        w.run_until_idle(10_000);
        assert!(w
            .host(bob)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 9, .. })));
    }

    #[test]
    fn detached_interface_receives_nothing() {
        let mut w = World::new(7);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.1.1/24"));
        let b_if = w.attach(b, lan, Some("10.0.1.2/24"));
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.1"), ip("10.0.1.2"), 1)
        });
        w.detach(b, b_if); // unplug before the frame arrives
        w.run_until_idle(1_000);
        assert!(w.host(b).icmp_log.is_empty());
    }

    #[test]
    fn reattach_moves_host_between_segments() {
        let mut w = World::new(7);
        let lan_a = w.add_segment(LinkConfig::lan());
        let lan_b = w.add_segment(LinkConfig::lan());
        let fixed_a = w.add_host(HostConfig::conventional("fa"));
        let fixed_b = w.add_host(HostConfig::conventional("fb"));
        let roamer = w.add_host(HostConfig::conventional("roamer"));
        w.attach(fixed_a, lan_a, Some("10.0.1.1/24"));
        w.attach(fixed_b, lan_b, Some("10.0.2.1/24"));
        let r_if = w.attach(roamer, lan_a, Some("10.0.1.99/24"));

        w.host_do(roamer, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.99"), ip("10.0.1.1"), 1)
        });
        w.run_until_idle(1_000);
        assert_eq!(w.host(roamer).icmp_log.len(), 1);

        // Move to lanB and renumber.
        w.reattach(roamer, r_if, lan_b);
        w.host_mut(roamer)
            .set_iface_addr(r_if, Some(IfaceAddr::parse("10.0.2.99/24")));
        w.host_do(roamer, |h, ctx| {
            h.send_ping(ctx, ip("10.0.2.99"), ip("10.0.2.1"), 2)
        });
        w.run_until_idle(1_000);
        assert!(w.host(roamer).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::EchoReply { seq: 2, .. }
        ) && e.from == ip("10.0.2.1")));
    }

    #[test]
    fn trace_hop_counts_measure_path_length() {
        let (mut w, alice, _, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 3)
        });
        w.run_until_idle(10_000);
        // Request: alice Sent + router Forwarded = 2 wire traversals.
        let hops = w
            .trace
            .hops(|s| s.dst == ip("10.0.2.10") && s.protocol == IpProtocol::Icmp);
        assert_eq!(hops, 2);
    }

    #[test]
    fn metrics_registry_agrees_with_link_stats_and_trace() {
        let (mut w, alice, bob, r) = two_lan_world();
        w.enable_metrics();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);

        // Per-segment frames/bytes must match the LinkStats the segments
        // themselves keep (ARP included).
        for seg in [SegmentId(0), SegmentId(1)] {
            let stats = w.segment_stats(seg);
            let m = w.metrics.segment(seg);
            assert_eq!(m.frames, stats.frames, "segment {} frames", seg.0);
            assert_eq!(m.bytes, stats.bytes, "segment {} bytes", seg.0);
            assert_eq!(m.wire_drops, stats.fault_drops + stats.oversize_drops);
            assert_eq!(m.crc_drops, stats.crc_drops);
            assert!(m.frames > 0);
            assert!(m.busy.as_micros() > 0);
        }

        // Per-node counters must match what the trace derived.
        let icmp = |s: &crate::trace::PacketSummary| s.protocol == IpProtocol::Icmp;
        let sent_per_trace = w
            .trace
            .matching(icmp)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent))
            .count() as u64;
        let alice_m = w.metrics.node(alice);
        let bob_m = w.metrics.node(bob);
        assert_eq!(alice_m.packets_sent + bob_m.packets_sent, sent_per_trace);
        assert_eq!(alice_m.packets_delivered, 1, "the echo reply");
        assert_eq!(bob_m.packets_delivered, 1, "the echo request");
        // The router forwarded request + reply and dropped nothing.
        let r_m = w.metrics.node(r);
        assert_eq!(r_m.packets_forwarded, 2);
        assert_eq!(r_m.total_drops(), 0);
        assert!(w.metrics.total_drops_by_reason().is_empty());
    }

    #[test]
    fn disabled_metrics_stay_empty() {
        let (mut w, alice, _, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert_eq!(w.metrics.node(alice).packets_sent, 0);
        assert_eq!(w.metrics.node_ids().count(), 0, "no allocations either");
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed| {
            let (mut w, alice, _, _) = two_lan_world();
            let _ = seed;
            w.host_do(alice, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
            });
            w.run_until_idle(10_000);
            (w.now(), w.trace.events().len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn multi_hop_route_computation() {
        // lanA — r1 — mid — r2 — lanB, distinct latencies.
        let mut w = World::new(1);
        let lan_a = w.add_segment(LinkConfig::lan());
        let mid = w.add_segment(LinkConfig::wan(30));
        let lan_b = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        let r1 = w.add_router(RouterConfig::named("r1"));
        let r2 = w.add_router(RouterConfig::named("r2"));
        w.attach(a, lan_a, Some("10.0.1.10/24"));
        w.attach(r1, lan_a, Some("10.0.1.1/24"));
        w.attach(r1, mid, Some("192.168.0.1/30"));
        w.attach(r2, mid, Some("192.168.0.2/30"));
        w.attach(r2, lan_b, Some("10.0.2.1/24"));
        w.attach(b, lan_b, Some("10.0.2.10/24"));
        w.compute_routes();

        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
        });
        w.run_until_idle(10_000);
        assert!(w
            .host(a)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { .. })));
        // 3 traversals each way.
        assert_eq!(
            w.trace
                .hops(|s| s.dst == ip("10.0.2.10") && s.protocol == IpProtocol::Icmp),
            3
        );
        // One-way latency dominated by the 30 ms WAN hop.
        let lat = w
            .trace
            .first_delivery_latency(|s| s.dst == ip("10.0.2.10"))
            .unwrap();
        assert!(lat.as_millis() >= 30, "latency was {lat}");
    }

    #[test]
    fn invariant_monitor_clean_on_healthy_run() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_metrics();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
        assert_eq!(w.invariants.in_flight(), 0);
    }

    #[test]
    fn invariant_monitor_tolerates_wire_loss() {
        let (mut w, alice, _, _) = {
            let mut w = World::new(7);
            let mut lossy = LinkConfig::lan();
            lossy.fault.drop_prob = 1.0;
            let lan_a = w.add_segment(lossy);
            let lan_b = w.add_segment(LinkConfig::lan());
            let alice = w.add_host(HostConfig::conventional("alice"));
            let bob = w.add_host(HostConfig::conventional("bob"));
            let r = w.add_router(RouterConfig::named("r"));
            w.attach(alice, lan_a, Some("10.0.1.10/24"));
            w.attach(bob, lan_b, Some("10.0.2.10/24"));
            w.attach(r, lan_a, Some("10.0.1.1/24"));
            w.attach(r, lan_b, Some("10.0.2.1/24"));
            w.compute_routes();
            (w, alice, bob, r)
        };
        w.enable_metrics();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        // Every frame is lost on the wire; the conservation monitor must
        // attribute the leaked packets to wire losses, not flag them.
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
    }

    #[test]
    fn apply_telemetry_arms_every_layer() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_metrics();
        let cfg = TelemetryConfig {
            sample_flows: Some(4),
            sketch_node_threshold: 1,
            ..TelemetryConfig::default()
        };
        w.apply_telemetry(&cfg);
        assert_eq!(w.trace.flow_sample_rate(), Some(4));
        assert!(w.invariants.enabled());
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
        // Three nodes saw traffic, threshold is 1 — the registry must
        // have collapsed into sketched mode mid-run.
        assert!(w.metrics.is_sketched());
        let sk = w.metrics.sketched().expect("sketched");
        assert!(sk.totals.packets_sent >= 1);
    }

    #[test]
    fn invariant_report_shape() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        let v = w.invariant_report();
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"ok\":true"), "{s}");
        assert!(s.contains("\"violations\":[]"), "{s}");
    }

    // ---- sharded execution ------------------------------------------------

    /// Build the two-LAN topology at a given shard count, run a fixed
    /// ping workload across the router, and return everything observable
    /// (time, trace length, scheduler counters, metrics snapshot JSON,
    /// link stats).
    fn sharded_fingerprint(shards: usize) -> (SimTime, usize, SchedulerStats, String, LinkStats) {
        let (mut w, a, _b, _r) = two_lan_world_sharded(shards);
        w.enable_metrics();
        w.enable_invariants();
        w.host_do(a, |h, ctx| {
            for seq in 1..=3 {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq);
            }
        });
        w.run_until_idle(100_000);
        assert!(!w.has_invariant_violations(), "shards={shards}");
        let names = w.node_names();
        let now = w.now();
        let snap = serde_json::to_string_pretty(&w.metrics.snapshot(&names, now)).unwrap();
        (
            w.now(),
            w.trace.events().len(),
            w.scheduler_stats(),
            snap,
            w.segment_stats(SegmentId(0)),
        )
    }

    fn two_lan_world_sharded(shards: usize) -> (World, NodeId, NodeId, NodeId) {
        let mut w = World::with_shards(7, shards);
        let lan_a = w.add_segment(LinkConfig::lan());
        let lan_b = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        let r = w.add_router(RouterConfig::named("r1"));
        w.attach(a, lan_a, Some("10.0.1.10/24"));
        w.attach(b, lan_b, Some("10.0.2.10/24"));
        w.attach(r, lan_a, Some("10.0.1.1/24"));
        w.attach(r, lan_b, Some("10.0.2.1/24"));
        w.compute_routes();
        (w, a, b, r)
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let serial = sharded_fingerprint(1);
        for shards in [2, 4] {
            let sharded = sharded_fingerprint(shards);
            assert_eq!(serial.0, sharded.0, "now, shards={shards}");
            assert_eq!(serial.1, sharded.1, "trace len, shards={shards}");
            assert_eq!(serial.2, sharded.2, "scheduler stats, shards={shards}");
            assert_eq!(serial.3, sharded.3, "metrics snapshot, shards={shards}");
            assert_eq!(serial.4, sharded.4, "link stats, shards={shards}");
        }
    }

    #[test]
    fn sharded_pcap_is_byte_identical_to_serial() {
        use std::sync::{Arc, Mutex};
        struct Tap(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Tap {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let capture = |shards: usize| {
            let bytes = Arc::new(Mutex::new(Vec::new()));
            let (mut w, a, _b, _r) = two_lan_world_sharded(shards);
            w.capture_pcap(Box::new(Tap(bytes.clone()))).unwrap();
            w.host_do(a, |h, ctx| {
                for seq in 1..=2 {
                    h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq);
                }
            });
            w.run_until_idle(100_000);
            let frames = w.finish_pcap().unwrap();
            assert!(frames > 0, "shards={shards}");
            Arc::try_unwrap(bytes).unwrap().into_inner().unwrap()
        };
        let serial = capture(1);
        for shards in [2, 4] {
            assert_eq!(serial, capture(shards), "pcap bytes, shards={shards}");
        }
    }

    #[test]
    fn mid_run_fault_change_repartitions_and_stays_identical() {
        // Flipping a fault on after the first run makes segment 0
        // constrained: the next partition refresh must pin its endpoints
        // to one shard (faults need the segment RNG, which cannot be
        // replayed across a border) and stay byte-identical to serial.
        let run = |shards: usize| {
            let (mut w, a, _b, _r) = two_lan_world_sharded(shards);
            w.enable_metrics();
            w.enable_invariants();
            w.host_do(a, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
            });
            w.run_until_idle(100_000);
            // Mid-life fault config change on what was a border wire.
            w.segment_config_mut(SegmentId(0)).fault.drop_prob = 1.0;
            w.host_do(a, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 2)
            });
            w.run_until_idle(100_000);
            assert!(!w.has_invariant_violations(), "shards={shards}");
            (w.now(), w.trace.events().len(), w.scheduler_stats())
        };
        let serial = run(1);
        let sharded = run(4);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn shard_stats_show_horizon_bounded_progress() {
        let (mut w, a, _b, _r) = two_lan_world_sharded(2);
        w.host_do(a, |h, ctx| {
            for seq in 1..=5 {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq);
            }
        });
        w.run_until_idle(100_000);
        let stats = w.shard_stats().expect("sharded runtime exists");
        assert_eq!(stats.len(), 2);
        let events: u64 = stats.iter().map(|s| s.events).sum();
        let windows: u64 = stats.iter().map(|s| s.windows).sum();
        let out: u64 = stats.iter().map(|s| s.msgs_out).sum();
        let inn: u64 = stats.iter().map(|s| s.msgs_in).sum();
        assert_eq!(events, w.scheduler_stats().dispatched);
        assert!(windows > 0, "shards ran windows");
        assert!(out > 0, "pings crossed the router's shard border");
        // Every border transmit here delivers to exactly one peer.
        assert_eq!(inn, out);
    }

    #[test]
    fn sharded_step_matches_serial_step() {
        let run = |shards: usize| {
            let (mut w, a, _b, _r) = two_lan_world_sharded(shards);
            w.host_do(a, |h, ctx| {
                for seq in 1..=2 {
                    h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), seq);
                }
            });
            let mut steps = 0usize;
            for _ in 0..10 {
                if !w.step() {
                    break;
                }
                steps += 1;
            }
            // Finish with a batch run to exercise the step-batch flush.
            w.run_until_idle(100_000);
            (steps, w.now(), w.trace.events().len(), w.scheduler_stats())
        };
        assert_eq!(run(1), run(2));
    }
}
