//! The simulation world: nodes, segments, the event loop, and automatic
//! shortest-path route computation for static topologies.

use std::collections::{BinaryHeap, HashSet};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::device::host::{Host, HostConfig};
use crate::device::nic::IfaceAddr;
use crate::device::router::{Router, RouterConfig};
use crate::device::{token, NS_APPS};
use crate::event::{
    Event, EventKind, EventQueue, IfaceNo, NodeId, SchedulerStats, SchedulerTelemetry, Timer,
    TimerHandle, TimerToken,
};
use crate::link::{FaultOutcome, LinkConfig, LinkStats, Segment, SegmentId};
use crate::metrics::{MetricsRegistry, SketchConfig};
use crate::telemetry::{InvariantMonitor, TelemetryConfig};
use crate::time::{SimDuration, SimTime};
use crate::trace::{PacketTrace, TraceEventKind, TransformKind};
use crate::wire::ethernet::{EthernetFrame, MacAddr};
use crate::wire::ipv4::{Ipv4Addr, Ipv4Cidr, Ipv4Packet};

/// A node is either an end system or a router.
#[allow(clippy::large_enum_variant)] // hosts dominate and are not copied
pub enum Node {
    /// An end system.
    Host(Host),
    /// A packet forwarder.
    Router(Router),
}

impl Node {
    fn on_frame(&mut self, ctx: &mut NetCtx, iface: IfaceNo, frame: &Bytes) {
        match self {
            Node::Host(h) => h.on_frame(ctx, iface, frame),
            Node::Router(r) => r.on_frame(ctx, iface, frame),
        }
    }

    fn on_timer(&mut self, ctx: &mut NetCtx, t: TimerToken) {
        match self {
            Node::Host(h) => h.on_timer(ctx, t),
            Node::Router(r) => r.on_timer(ctx, t),
        }
    }

    fn nic(&self) -> &crate::device::nic::Nic {
        match self {
            Node::Host(h) => h.nic(),
            Node::Router(r) => r.nic(),
        }
    }

    fn nic_mut(&mut self) -> &mut crate::device::nic::Nic {
        match self {
            Node::Host(h) => h.nic_mut(),
            Node::Router(r) => r.nic_mut(),
        }
    }

    fn is_router(&self) -> bool {
        matches!(self, Node::Router(_))
    }

    /// Drop the node's memoized route lookups — called whenever an
    /// interface moves between segments, since the usable routes change
    /// even though the table entries do not.
    fn invalidate_route_cache(&self) {
        match self {
            Node::Host(h) => h.invalidate_route_cache(),
            Node::Router(r) => r.invalidate_route_cache(),
        }
    }

    fn add_route(&mut self, prefix: Ipv4Cidr, iface: IfaceNo, gateway: Option<Ipv4Addr>) {
        match self {
            Node::Host(h) => h.add_route(prefix, iface, gateway),
            Node::Router(r) => r.add_route(prefix, iface, gateway),
        }
    }

    fn clear_routes(&mut self) {
        match self {
            Node::Host(h) => h.clear_routes(),
            Node::Router(r) => r.clear_routes(),
        }
    }

    /// The node's human-readable name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host(h) => &h.name,
            Node::Router(r) => &r.name,
        }
    }
}

/// The per-event context handed to devices: the only way they can touch the
/// world (transmit frames, set timers, draw randomness, write traces).
pub struct NetCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The node being dispatched.
    pub node: NodeId,
    queue: &'a mut EventQueue,
    segments: &'a mut Vec<Segment>,
    rng: &'a mut StdRng,
    trace: &'a mut PacketTrace,
    metrics: &'a mut MetricsRegistry,
    invariants: &'a mut InvariantMonitor,
    pcap: &'a mut Option<crate::wire::pcap::PcapWriter<Box<dyn std::io::Write>>>,
}

impl NetCtx<'_> {
    /// Put a frame on a segment from this node's `iface`.
    pub fn transmit(
        &mut self,
        seg: SegmentId,
        iface: IfaceNo,
        frame: &EthernetFrame,
    ) -> FaultOutcome {
        let bytes = {
            let _prof = crate::profile::scope("frame/emit");
            frame.emit()
        };
        self.transmit_raw(seg, iface, bytes)
    }

    /// Put already-serialized wire bytes on a segment from this node's
    /// `iface`. The single emitted buffer is shared — `Bytes` clones are
    /// O(1) — between the segment's delivery events and the pcap capture;
    /// nothing on this path copies the frame.
    pub fn transmit_raw(&mut self, seg: SegmentId, iface: IfaceNo, frame: Bytes) -> FaultOutcome {
        let _prof = crate::profile::scope("link/transmit");
        // Snapshot link-metric inputs before the transmit mutates the
        // segment's committed-until time.
        let (queue_wait, serialize) = if self.metrics.enabled() {
            let s = &self.segments[seg.0];
            (s.backlog(self.now), s.config.serialize_time(frame.len()))
        } else {
            (SimDuration::ZERO, SimDuration::ZERO)
        };
        let wire_len = frame.len();
        let outcome = self.segments[seg.0].transmit(
            (self.node, iface),
            frame.clone(),
            self.now,
            self.queue,
            self.rng,
        );
        self.metrics
            .record_transmit(seg, wire_len, queue_wait, serialize, outcome);
        if matches!(outcome, FaultOutcome::Drop | FaultOutcome::Corrupt) {
            // Whatever packet the frame carried is attributably lost on
            // the wire, not leaked — the conservation monitor's ledger.
            self.invariants.note_wire_loss();
        } else if self.invariants.enabled() && frame.len() >= 6 {
            // A frame unicast to a MAC no longer on this wire (stale ARP
            // after a handoff, a vanished care-of address) is ignored by
            // every NIC and dies here — attributable, not leaked.
            let dst = crate::wire::ethernet::MacAddr([
                frame[0], frame[1], frame[2], frame[3], frame[4], frame[5],
            ]);
            if !dst.is_broadcast() && !dst.is_multicast() && !self.segments[seg.0].mac_attached(dst)
            {
                self.invariants.note_unclaimed_frame();
            }
        }
        if outcome != FaultOutcome::Drop {
            if let Some(pcap) = self.pcap.as_mut() {
                // Capture what was put on the wire (post fault injection is
                // not observable here; the sender's view is what tcpdump on
                // the sender would show).
                let _ = pcap.write_frame(self.now, &frame);
            }
        }
        outcome
    }

    /// Schedule a timer for this node. The returned handle cancels it in
    /// O(1) via [`NetCtx::cancel_timer`]; callers that never cancel can
    /// drop the handle freely.
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerHandle {
        self.queue.push_cancellable(
            self.now + after,
            EventKind::Timer(Timer {
                node: self.node,
                token,
            }),
        )
    }

    /// Cancel a timer set with [`NetCtx::set_timer`]. Returns `false`
    /// (harmlessly) if it already fired or was already cancelled. A timer
    /// scheduled for the *current* instant may already sit in the event
    /// loop's in-flight batch, in which case it still fires — so handlers
    /// keep their stale-timer guards as a second line of defence.
    pub fn cancel_timer(&mut self, h: TimerHandle) -> bool {
        self.queue.cancel(h)
    }

    /// MTU of a segment (IP bytes per frame).
    pub fn segment_mtu(&self, seg: SegmentId) -> usize {
        self.segments[seg.0].config.mtu
    }

    /// The world's deterministic RNG (fault injection, workloads).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Record a trace event for `pkt` at this node. Also feeds the metrics
    /// registry: this is the one choke point every send / forward /
    /// delivery / drop flows through.
    pub fn trace_packet(&mut self, kind: TraceEventKind, pkt: &Ipv4Packet) {
        self.trace.record(self.now, self.node, kind, pkt);
        self.metrics.record_packet(self.node, kind, pkt);
        self.invariants.record_packet(kind, pkt);
    }

    /// Record that `child` was produced from `parent` by `kind` at this
    /// node — called by every transform site (encapsulation, decapsulation,
    /// source-route rewrite, agent relay, retransmission) so the trace can
    /// link the derived packet to its origin. `parent` is `None` only for
    /// retransmissions, where the trace infers the predecessor from the
    /// flow. The single choke point for causal edges, as
    /// [`NetCtx::trace_packet`] is for observations.
    pub fn trace_transform(
        &mut self,
        kind: TransformKind,
        parent: Option<&Ipv4Packet>,
        child: &Ipv4Packet,
    ) {
        self.trace
            .record_transform(self.now, self.node, kind, parent, child);
        self.metrics
            .record_packet(self.node, TraceEventKind::Transformed(kind), child);
        self.invariants.record_transform(parent, child);
    }

    /// The world's metrics registry — how the transport layer records TCP
    /// and UDP counters against the node being dispatched.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }

    /// Flag an anomaly on the conversation between `a` and `b` over
    /// `proto` — protocol layers call this for failures the trace cannot
    /// see in the packet stream itself (e.g. a mobile host's registration
    /// denial or retry exhaustion), promoting the flow to full capture
    /// under flow sampling. No-op when sampling is off.
    pub fn flag_anomaly(&mut self, a: Ipv4Addr, b: Ipv4Addr, proto: crate::wire::ipv4::IpProtocol) {
        self.trace.promote_endpoints(a, b, proto);
    }

    /// Tell the conservation monitor a packet was parked in a link-layer
    /// pending queue (awaiting ARP); see [`InvariantMonitor::note_parked`].
    #[inline]
    pub fn note_parked(&mut self) {
        self.invariants.note_parked();
    }

    /// Tell the conservation monitor a parked packet left its pending
    /// queue (flushed or evicted).
    #[inline]
    pub fn note_unparked(&mut self) {
        self.invariants.note_unparked();
    }

    /// Whether the invariant monitors are on — lets hot paths skip the
    /// bookkeeping (e.g. a packet clone) feeding them.
    #[inline]
    pub fn invariants_enabled(&self) -> bool {
        self.invariants.enabled()
    }

    /// Tell the conservation monitor a packet was consumed by a mobility
    /// hook before local delivery (no trace event fires for it).
    #[inline]
    pub fn note_consumed(&mut self, pkt: &Ipv4Packet) {
        self.invariants.note_consumed(pkt);
    }

    /// Tell the conservation monitor a hook rewrote a packet's identity.
    #[inline]
    pub fn note_rewrite(&mut self, before: &Ipv4Packet, after: &Ipv4Packet) {
        self.invariants.note_rewrite(before, after);
    }
}

/// The simulated internetwork.
pub struct World {
    nodes: Vec<Option<Node>>,
    segments: Vec<Segment>,
    queue: EventQueue,
    now: SimTime,
    rng: StdRng,
    /// The packet trace; enabled by default.
    pub trace: PacketTrace,
    /// Aggregate counters; disabled by default (near-zero cost), enabled
    /// with [`World::enable_metrics`].
    pub metrics: MetricsRegistry,
    /// Online invariant monitors; disabled by default (one branch per
    /// event), enabled with [`World::enable_invariants`] or
    /// [`World::apply_telemetry`].
    pub invariants: InvariantMonitor,
    next_mac: u32,
    pcap: Option<crate::wire::pcap::PcapWriter<Box<dyn std::io::Write>>>,
    /// Reusable same-timestamp batch buffer for [`World::run_until`] /
    /// [`World::run_until_idle`] — drained every batch, so the allocation
    /// is made once per world rather than once per dispatch.
    batch: Vec<Event>,
    /// Periodic gauge sampler; absent (one branch per batch) until
    /// [`World::enable_sampling`].
    sampler: Option<Box<crate::profile::TimeSeries>>,
}

impl World {
    /// Create a world with a deterministic RNG seed, using the process-wide
    /// default scheduler (see [`crate::event::set_default_scheduler`]).
    pub fn new(seed: u64) -> World {
        World {
            nodes: Vec::new(),
            segments: Vec::new(),
            queue: EventQueue::with_kind(crate::event::default_scheduler()),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            trace: PacketTrace::new(true),
            metrics: MetricsRegistry::new(false),
            invariants: InvariantMonitor::new(),
            next_mac: 1,
            pcap: None,
            batch: Vec::new(),
            sampler: None,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Start recording aggregate metrics (packet/byte counters per node,
    /// drops by reason, link utilization, transport counters). Reading them
    /// back goes through [`World::metrics`].
    pub fn enable_metrics(&mut self) {
        self.metrics.set_enabled(true);
    }

    /// Start the online invariant monitors (packet conservation,
    /// metrics/scheduler reconciliation). Violations are reported through
    /// [`World::invariant_report`], never panicked on.
    pub fn enable_invariants(&mut self) {
        self.invariants.set_enabled(true);
    }

    /// Fan a [`TelemetryConfig`] out to every observability layer: arm
    /// the metrics registry's sketched mode, enable head-based flow
    /// sampling on the trace (when configured), and turn the invariant
    /// monitors on. The scale-ready telemetry entry point.
    pub fn apply_telemetry(&mut self, cfg: &TelemetryConfig) {
        if let Some(n) = cfg.sample_flows {
            self.trace.enable_flow_sampling(n, cfg.seed);
        }
        self.metrics.arm_sketch(SketchConfig {
            node_threshold: cfg.sketch_node_threshold,
            topk: cfg.topk,
            reservoir: cfg.reservoir,
            seed: cfg.seed,
        });
        self.invariants.set_enabled(true);
    }

    /// The invariant monitors' run-report section: counters plus every
    /// violation (incrementally recorded and final-check). Conservation
    /// is only judged when the world is quiescent — mid-run, in-flight
    /// packets are legitimate.
    pub fn invariant_report(&self) -> serde::Value {
        let stats = self.queue.stats();
        let pending = self.queue.len() as u64;
        let totals = self.metrics.enabled().then(|| self.metrics.totals());
        self.invariants
            .report_value(self.now, &stats, pending, pending == 0, totals.as_ref())
    }

    /// Whether any invariant violation has been detected (incremental or
    /// final-check) — what CI smoke jobs assert on.
    pub fn has_invariant_violations(&self) -> bool {
        if self.invariants.violated() {
            return true;
        }
        let stats = self.queue.stats();
        let pending = self.queue.len() as u64;
        let totals = self.metrics.enabled().then(|| self.metrics.totals());
        !self
            .invariants
            .final_violations(self.now, &stats, pending, pending == 0, totals.as_ref())
            .is_empty()
    }

    /// Human-readable node names indexed by `NodeId`, for labelling
    /// metrics snapshots and reports.
    pub fn node_names(&self) -> Vec<String> {
        (0..self.nodes.len())
            .map(|i| match &self.nodes[i] {
                Some(n) => n.name().to_string(),
                None => format!("node{i}"),
            })
            .collect()
    }

    /// Capture every transmitted frame into a pcap stream (e.g. a
    /// `std::fs::File`) readable by Wireshark/tcpdump. Frames from all
    /// segments are interleaved in time order, like a tap on every wire.
    pub fn capture_pcap(&mut self, out: Box<dyn std::io::Write>) -> std::io::Result<()> {
        self.pcap = Some(crate::wire::pcap::PcapWriter::new(out)?);
        Ok(())
    }

    /// Stop capturing and flush; returns the number of frames written.
    pub fn finish_pcap(&mut self) -> std::io::Result<u64> {
        match self.pcap.take() {
            Some(w) => {
                let n = w.frames_written();
                w.finish()?;
                Ok(n)
            }
            None => Ok(0),
        }
    }

    // ---- construction -----------------------------------------------------

    /// Create a broadcast segment; attach nodes with [`World::attach`].
    pub fn add_segment(&mut self, config: LinkConfig) -> SegmentId {
        self.segments.push(Segment::new(config));
        SegmentId(self.segments.len() - 1)
    }

    /// Create a host node.
    pub fn add_host(&mut self, config: HostConfig) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Node::Host(Host::new(id, config))));
        id
    }

    /// Create a router node.
    pub fn add_router(&mut self, config: RouterConfig) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(Node::Router(Router::new(id, config))));
        id
    }

    fn fresh_mac(&mut self) -> MacAddr {
        let m = MacAddr::from_index(self.next_mac);
        self.next_mac += 1;
        m
    }

    /// Create a new interface on `node`, attach it to `seg`, and optionally
    /// configure an address ("171.64.15.9/24"-style).
    pub fn attach(&mut self, node: NodeId, seg: SegmentId, addr: Option<&str>) -> IfaceNo {
        let mac = self.fresh_mac();
        let mtu = self.segments[seg.0].config.mtu;
        let n = self.nodes[node.0].as_mut().expect("node exists");
        let iface = n.nic_mut().add_iface(mac);
        n.nic_mut().set_segment(iface, Some(seg), mtu);
        if let Some(a) = addr {
            n.nic_mut().set_addr(iface, Some(IfaceAddr::parse(a)));
        }
        n.invalidate_route_cache();
        self.segments[seg.0].attach(node, iface);
        self.segments[seg.0].register_mac(node, iface, mac);
        iface
    }

    /// Re-plug an existing interface into a different segment (mobility!).
    /// The address is left unchanged; callers configure it for the new net.
    pub fn reattach(&mut self, node: NodeId, iface: IfaceNo, seg: SegmentId) {
        self.detach(node, iface);
        let mtu = self.segments[seg.0].config.mtu;
        let n = self.nodes[node.0].as_mut().expect("node exists");
        n.nic_mut().set_segment(iface, Some(seg), mtu);
        let mac = n.nic().mac(iface);
        n.invalidate_route_cache();
        self.segments[seg.0].attach(node, iface);
        self.segments[seg.0].register_mac(node, iface, mac);
    }

    /// Unplug an interface from whatever segment it is on.
    pub fn detach(&mut self, node: NodeId, iface: IfaceNo) {
        let n = self.nodes[node.0].as_mut().expect("node exists");
        if let Some(old) = n.nic().segment(iface) {
            self.segments[old.0].detach(node, iface);
            n.nic_mut().set_segment(iface, None, 1500);
            n.invalidate_route_cache();
        }
    }

    // ---- access -------------------------------------------------------------

    /// Number of nodes ever created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a host (panics if `id` is a router).
    pub fn host(&self, id: NodeId) -> &Host {
        match self.nodes[id.0].as_ref().expect("node present") {
            Node::Host(h) => h,
            Node::Router(_) => panic!("node {} is a router", id.0),
        }
    }

    /// Mutably borrow a host (panics if `id` is a router).
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match self.nodes[id.0].as_mut().expect("node present") {
            Node::Host(h) => h,
            Node::Router(_) => panic!("node {} is a router", id.0),
        }
    }

    /// Mutably borrow a router (panics if `id` is a host).
    pub fn router_mut(&mut self, id: NodeId) -> &mut Router {
        match self.nodes[id.0].as_mut().expect("node present") {
            Node::Router(r) => r,
            Node::Host(_) => panic!("node {} is a host", id.0),
        }
    }

    /// A segment's traffic counters.
    pub fn segment_stats(&self, seg: SegmentId) -> LinkStats {
        self.segments[seg.0].stats
    }

    /// Mutably borrow a segment's parameters (tests change fault rates).
    pub fn segment_config_mut(&mut self, seg: SegmentId) -> &mut LinkConfig {
        &mut self.segments[seg.0].config
    }

    /// Run `f` against a host with a live [`NetCtx`] — how tests, examples
    /// and the mobility layer inject work into the simulation.
    pub fn host_do<R>(&mut self, id: NodeId, f: impl FnOnce(&mut Host, &mut NetCtx) -> R) -> R {
        let mut node = self.nodes[id.0].take().expect("node present");
        let r = {
            let mut ctx = NetCtx {
                now: self.now,
                node: id,
                queue: &mut self.queue,
                segments: &mut self.segments,
                rng: &mut self.rng,
                trace: &mut self.trace,
                metrics: &mut self.metrics,
                invariants: &mut self.invariants,
                pcap: &mut self.pcap,
            };
            match &mut node {
                Node::Host(h) => f(h, &mut ctx),
                Node::Router(_) => panic!("node {} is a router", id.0),
            }
        };
        self.nodes[id.0] = Some(node);
        r
    }

    /// Schedule an immediate application poll on `node` (bootstraps apps).
    pub fn poll_soon(&mut self, node: NodeId) {
        self.queue.push(
            self.now,
            EventKind::Timer(Timer {
                node,
                token: token(NS_APPS, 0),
            }),
        );
    }

    // ---- event loop -----------------------------------------------------------

    /// Fire one already-popped event: route it to the owning node with a
    /// fresh [`NetCtx`] view over the world. Shared by the single-step and
    /// batch dispatch paths.
    fn dispatch(&mut self, kind: EventKind) {
        let (node, iface_frame, token) = match kind {
            EventKind::Deliver { node, iface, frame } => (node, Some((iface, frame)), None),
            EventKind::Timer(t) => (t.node, None, Some(t.token)),
        };
        let kind_was_frame = iface_frame.is_some();
        // A node may have been detached between scheduling and delivery
        // (mid-flight frames to a departed mobile host are lost, as in
        // reality).
        let Some(mut n) = self.nodes.get_mut(node.0).and_then(Option::take) else {
            if kind_was_frame {
                self.invariants.note_detached_frame();
            }
            return;
        };
        if let Some((iface, _)) = &iface_frame {
            if n.nic().segment(*iface).is_none() {
                self.nodes[node.0] = Some(n);
                self.invariants.note_detached_frame();
                return;
            }
        }
        let mut ctx = NetCtx {
            now: self.now,
            node,
            queue: &mut self.queue,
            segments: &mut self.segments,
            rng: &mut self.rng,
            trace: &mut self.trace,
            metrics: &mut self.metrics,
            invariants: &mut self.invariants,
            pcap: &mut self.pcap,
        };
        match (iface_frame, token) {
            (Some((iface, frame)), _) => n.on_frame(&mut ctx, iface, &frame),
            (None, Some(token)) => n.on_timer(&mut ctx, token),
            (None, None) => unreachable!(),
        }
        self.nodes[node.0] = Some(n);
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let _prof = crate::profile::scope("world/step");
        let Some(Event { at, kind, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        if self.sampler.is_some() {
            self.maybe_sample();
        }
        if self.invariants.enabled() {
            let stats = self.queue.stats();
            let pending = self.queue.len() as u64;
            self.invariants.check_scheduler(self.now, &stats, pending);
        }
        self.dispatch(kind);
        true
    }

    /// Run until the queue is empty or simulated time reaches `deadline`.
    ///
    /// Events are drained in same-timestamp batches: one queue probe pulls
    /// everything scheduled for the next instant (and decides the deadline
    /// check), instead of a peek *and* a pop per event. Events a batch
    /// schedules at the same instant get sequence numbers after the batch
    /// and are picked up by the next probe, so dispatch order is exactly
    /// the (time, seq) order of the one-at-a-time path.
    pub fn run_until(&mut self, deadline: SimTime) {
        let _prof = crate::profile::scope("world/run");
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            let t = {
                let _prof = crate::profile::scope("sched/pop_batch");
                self.queue.pop_batch_until(deadline, &mut batch)
            };
            let Some(t) = t else { break };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if self.sampler.is_some() {
                self.maybe_sample();
            }
            if self.invariants.enabled() {
                let stats = self.queue.stats();
                // The just-popped batch is dispatched-but-not-yet-run;
                // it is already counted in `dispatched`, and `len` no
                // longer includes it, so the ledger balances here.
                let pending = self.queue.len() as u64;
                self.invariants.check_scheduler(self.now, &stats, pending);
            }
            let _prof = crate::profile::scope("world/dispatch");
            for Event { kind, .. } in batch.drain(..) {
                self.dispatch(kind);
            }
        }
        self.batch = batch;
        self.now = self.now.max(deadline);
    }

    /// Run for a further `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Run until no events remain (bounded by `limit` events as a runaway
    /// guard). Panics if the limit is hit — a quiescing network should
    /// always drain.
    pub fn run_until_idle(&mut self, limit: usize) {
        let _prof = crate::profile::scope("world/run");
        let mut batch = std::mem::take(&mut self.batch);
        let mut dispatched = 0usize;
        loop {
            let t = {
                let _prof = crate::profile::scope("sched/pop_batch");
                self.queue.pop_batch_until(SimTime(u64::MAX), &mut batch)
            };
            let Some(t) = t else { break };
            self.now = t;
            if self.sampler.is_some() {
                self.maybe_sample();
            }
            if self.invariants.enabled() {
                let stats = self.queue.stats();
                let pending = self.queue.len() as u64;
                self.invariants.check_scheduler(self.now, &stats, pending);
            }
            let _prof = crate::profile::scope("world/dispatch");
            for Event { kind, .. } in batch.drain(..) {
                if dispatched >= limit {
                    panic!(
                        "run_until_idle: event limit {limit} exceeded at t={}",
                        self.now
                    );
                }
                dispatched += 1;
                self.dispatch(kind);
            }
        }
        self.batch = batch;
    }

    /// Events currently queued (cancelled timers excluded).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Scheduler activity counters: events pushed, dispatched, and
    /// cancelled before firing. Cancelled events are never dispatched and
    /// therefore never reach the trace or metrics.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.queue.stats()
    }

    /// Timing-wheel gauges (cascades, occupancy, overflow pressure)
    /// recorded while the flight recorder was enabled; all zeros
    /// otherwise and on the reference-heap backend.
    pub fn scheduler_telemetry(&self) -> SchedulerTelemetry {
        self.queue.telemetry()
    }

    // ---- gauge sampling --------------------------------------------------------

    /// Start sampling runtime gauges (dispatch rates, live timers, wheel
    /// occupancy, route-cache counters, a heap-footprint estimate) every
    /// `interval` of *simulated* time, keeping at most `cap` samples: when
    /// the buffer fills, every other sample is dropped and the interval
    /// doubles, so arbitrarily long runs stay bounded and evenly covered.
    pub fn enable_sampling(&mut self, interval: SimDuration, cap: usize) {
        self.sampler = Some(Box::new(crate::profile::TimeSeries::new(interval.0, cap)));
    }

    /// Gauge samples recorded so far, oldest first; `None` until
    /// [`World::enable_sampling`].
    pub fn samples(&self) -> Option<&[crate::profile::Sample]> {
        self.sampler
            .as_deref()
            .map(crate::profile::TimeSeries::samples)
    }

    /// The sample set as a run-report value; `None` until
    /// [`World::enable_sampling`].
    pub fn samples_value(&self) -> Option<serde::Value> {
        self.sampler
            .as_deref()
            .map(crate::profile::TimeSeries::to_value)
    }

    /// Crude heap-footprint estimate: node, trace-event, and queued-event
    /// counts times representative per-entry sizes. Gauge-grade only.
    fn mem_estimate(&self) -> u64 {
        self.nodes.len() as u64 * 768
            + self.trace.events().len() as u64 * 160
            + self.queue.len() as u64 * 112
    }

    /// Record a sample if one is due at the current sim time. Callers
    /// gate on `self.sampler.is_some()` so the run loops pay one branch.
    fn maybe_sample(&mut self) {
        let due = self.sampler.as_deref().is_some_and(|s| s.due(self.now.0));
        if !due {
            return;
        }
        let (occ, overflow) = self.queue.wheel_occupancy();
        let raw = crate::profile::RawGauges {
            sim_us: self.now.0,
            dispatched: self.queue.stats().dispatched,
            live_timers: self.queue.len() as u64,
            wheel_occupancy: occ.iter().sum(),
            overflow_len: overflow as u64,
            mem_est_bytes: self.mem_estimate(),
        };
        if let Some(s) = self.sampler.as_deref_mut() {
            s.push(raw);
        }
    }

    // ---- automatic routing ----------------------------------------------------

    /// Compute shortest-path routes (by cumulative link latency) from every
    /// node to every addressed prefix in the topology and install them,
    /// replacing existing route tables. Only routers forward, so paths only
    /// transit router nodes. Call once after building a static topology.
    pub fn compute_routes(&mut self) {
        let _prof = crate::profile::scope("world/compute_routes");
        let seg_count = self.segments.len();

        // Which prefixes live on which segment. Order preserved (it decides
        // route-table order); the HashSet makes dedup O(1) per interface
        // instead of a linear rescan of everything seen so far.
        let mut prefix_home: Vec<(Ipv4Cidr, SegmentId)> = Vec::new();
        let mut prefix_seen: HashSet<(Ipv4Cidr, SegmentId)> = HashSet::new();
        for (_, node) in self.nodes_iter() {
            let nic = node.nic();
            for i in 0..nic.iface_count() {
                if let (Some(a), Some(seg)) = (nic.addr(i), nic.segment(i)) {
                    if prefix_seen.insert((a.prefix, seg)) {
                        prefix_home.push((a.prefix, seg));
                    }
                }
            }
        }

        // Router adjacency: router R with ifaces on segments A and B links
        // A↔B. Also remember each router's address on each segment.
        // Indexed by segment number directly — segment ids are dense.
        let mut seg_routers: Vec<Vec<(NodeId, IfaceNo, Ipv4Addr)>> = vec![Vec::new(); seg_count];
        for (id, node) in self.nodes_iter() {
            if !node.is_router() {
                continue;
            }
            let nic = node.nic();
            for i in 0..nic.iface_count() {
                if let (Some(a), Some(seg)) = (nic.addr(i), nic.segment(i)) {
                    seg_routers[seg.0].push((id, i, a.addr));
                }
            }
        }

        let node_ids: Vec<NodeId> = (0..self.nodes.len())
            .filter(|i| self.nodes[*i].is_some())
            .map(NodeId)
            .collect();

        // Dijkstra scratch arrays, allocated once and reset per node (flat
        // vectors indexed by segment instead of per-node HashMaps).
        let mut dist: Vec<Option<u64>> = vec![None; seg_count];
        let mut pred: Vec<Option<(Ipv4Addr, usize)>> = vec![None; seg_count];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();

        for me in node_ids {
            let (starts, my_segs): (Vec<(usize, IfaceNo)>, Vec<usize>) = {
                let node = self.nodes[me.0].as_ref().unwrap();
                let nic = node.nic();
                let mut starts = Vec::new();
                for i in 0..nic.iface_count() {
                    if let Some(seg) = nic.segment(i) {
                        if nic.addr(i).is_some() {
                            starts.push((seg.0, i));
                        }
                    }
                }
                let segs = starts.iter().map(|&(s, _)| s).collect();
                (starts, segs)
            };
            if starts.is_empty() {
                continue;
            }

            // Dijkstra over segments. dist[s], pred[s] = (via_router_addr,
            // prev_segment).
            dist.fill(None);
            pred.fill(None);
            heap.clear();
            for &(s, _) in &starts {
                let w = self.segments[s].config.latency.as_micros() + 1;
                if dist[s].is_none_or(|d| w < d) {
                    dist[s] = Some(w);
                    heap.push(std::cmp::Reverse((w, s)));
                }
            }
            while let Some(std::cmp::Reverse((d, s))) = heap.pop() {
                if dist[s] != Some(d) {
                    continue;
                }
                // Expand via every router on segment s.
                for &(rid, _, raddr) in &seg_routers[s] {
                    if rid == me {
                        continue;
                    }
                    let rnic = self.nodes[rid.0].as_ref().unwrap().nic();
                    for j in 0..rnic.iface_count() {
                        let Some(next) = rnic.segment(j) else {
                            continue;
                        };
                        if next.0 == s || rnic.addr(j).is_none() {
                            continue;
                        }
                        let w = d + self.segments[next.0].config.latency.as_micros() + 1;
                        if dist[next.0].is_none_or(|cur| w < cur) {
                            dist[next.0] = Some(w);
                            pred[next.0] = Some((raddr, s));
                            heap.push(std::cmp::Reverse((w, next.0)));
                        }
                    }
                }
            }

            // Install routes.
            let mut new_routes: Vec<(Ipv4Cidr, IfaceNo, Option<Ipv4Addr>)> = Vec::new();
            for &(prefix, home_seg) in &prefix_home {
                if my_segs.contains(&home_seg.0) {
                    // On-link: routers need an explicit connected route;
                    // hosts resolve on-link destinations directly but the
                    // route is harmless for them too.
                    let iface = starts.iter().find(|&&(s, _)| s == home_seg.0).unwrap().1;
                    new_routes.push((prefix, iface, None));
                    continue;
                }
                if dist[home_seg.0].is_none() {
                    continue; // unreachable
                }
                // Walk predecessors back to one of our start segments to
                // find the first-hop gateway.
                let mut seg = home_seg.0;
                let gateway;
                loop {
                    let (raddr, prev) = pred[seg].expect("pred chain");
                    if my_segs.contains(&prev) {
                        gateway = (raddr, prev);
                        break;
                    }
                    seg = prev;
                }
                let iface = starts.iter().find(|&&(s, _)| s == gateway.1).unwrap().1;
                new_routes.push((prefix, iface, Some(gateway.0)));
            }

            let node = self.nodes[me.0].as_mut().unwrap();
            node.clear_routes();
            for (p, i, g) in new_routes {
                node.add_route(p, i, g);
            }
        }
    }

    fn nodes_iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i), n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::router::FilterRule;
    use crate::device::TxMeta;
    use crate::trace::DropReason;
    use crate::wire::icmp::IcmpMessage;
    use crate::wire::ipv4::IpProtocol;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// Two LANs joined by one router.
    ///   lanA(10.0.1.0/24): alice(.10) -- r(.1)
    ///   lanB(10.0.2.0/24): r(.1) -- bob(.10)
    fn two_lan_world() -> (World, NodeId, NodeId, NodeId) {
        let mut w = World::new(7);
        let lan_a = w.add_segment(LinkConfig::lan());
        let lan_b = w.add_segment(LinkConfig::lan());
        let alice = w.add_host(HostConfig::conventional("alice"));
        let bob = w.add_host(HostConfig::conventional("bob"));
        let r = w.add_router(RouterConfig::named("r"));
        w.attach(alice, lan_a, Some("10.0.1.10/24"));
        w.attach(bob, lan_b, Some("10.0.2.10/24"));
        w.attach(r, lan_a, Some("10.0.1.1/24"));
        w.attach(r, lan_b, Some("10.0.2.1/24"));
        w.compute_routes();
        (w, alice, bob, r)
    }

    #[test]
    fn ping_across_router() {
        let (mut w, alice, bob, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        // Bob logged the request, alice the reply.
        assert!(w
            .host(bob)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 1, .. })));
        assert!(w.host(alice).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::EchoReply { seq: 1, .. }
        ) && e.from == ip("10.0.2.10")));
    }

    #[test]
    fn ping_on_same_segment_needs_no_router() {
        let mut w = World::new(7);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.1.1/24"));
        w.attach(b, lan, Some("10.0.1.2/24"));
        // No compute_routes: on-link resolution needs no routes at all.
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.1"), ip("10.0.1.2"), 5)
        });
        w.run_until_idle(1_000);
        assert!(w
            .host(a)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { seq: 5, .. })));
    }

    #[test]
    fn router_decrements_ttl_and_reports_expiry() {
        let (mut w, alice, _bob, _r) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            let msg = IcmpMessage::EchoRequest {
                ident: 1,
                seq: 1,
                payload: Bytes::from_static(b"x"),
            };
            let mut p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("10.0.2.10"),
                IpProtocol::Icmp,
                Bytes::from(msg.emit()),
            );
            p.ttl = 1; // dies at the router
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.dst == ip("10.0.2.10"));
        assert!(drops.iter().any(|(_, r)| *r == DropReason::TtlExpired));
        // ICMP errors about ICMP are suppressed, so use UDP to see one.
        w.host_do(alice, |h, ctx| {
            let mut p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("10.0.2.10"),
                IpProtocol::Udp,
                Bytes::from_static(b"payload!"),
            );
            p.ttl = 1;
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        assert!(w
            .host(alice)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::TimeExceeded { .. })));
    }

    #[test]
    fn no_route_is_dropped_and_reported() {
        let (mut w, alice, _, _) = two_lan_world();
        // Give alice a default route so the packet reaches the router,
        // which has no route for the destination and reports back.
        w.host_mut(alice)
            .add_route(Ipv4Cidr::default_route(), 0, Some(ip("10.0.1.1")));
        w.host_do(alice, |h, ctx| {
            let p = Ipv4Packet::new(
                ip("10.0.1.10"),
                ip("99.99.99.99"),
                IpProtocol::Udp,
                Bytes::from_static(b"nowhere"),
            );
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.dst == ip("99.99.99.99"));
        assert!(drops.iter().any(|(_, r)| *r == DropReason::NoRoute));
        assert!(w.host(alice).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::DestUnreachable {
                code: crate::wire::icmp::UnreachableCode::Net,
                ..
            }
        )));
    }

    #[test]
    fn ingress_filter_blocks_spoofed_source_end_to_end() {
        let (mut w, alice, bob, r) = two_lan_world();
        // Boundary filter: packets arriving on lanA's router iface (0) with
        // sources claiming lanB are spoofed.
        let inside: Ipv4Cidr = "10.0.2.0/24".parse().unwrap();
        w.router_mut(r)
            .filters
            .push(FilterRule::ingress_source_filter(0, inside));
        // Alice spoofs bob's network as source (the Figure 2 situation).
        w.host_do(alice, |h, ctx| {
            let p = Ipv4Packet::new(
                ip("10.0.2.99"),
                ip("10.0.2.10"),
                IpProtocol::Udp,
                Bytes::from_static(b"spoof"),
            );
            h.send_ip(ctx, p, TxMeta::default());
        });
        w.run_until_idle(1_000);
        let drops = w.trace.drops(|s| s.src == ip("10.0.2.99"));
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].1, DropReason::SourceAddressFilter);
        assert_eq!(w.trace.deliveries(|s| s.dst == ip("10.0.2.10")), 0);
        // Honest traffic still flows.
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 9)
        });
        w.run_until_idle(10_000);
        assert!(w
            .host(bob)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoRequest { seq: 9, .. })));
    }

    #[test]
    fn detached_interface_receives_nothing() {
        let mut w = World::new(7);
        let lan = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        w.attach(a, lan, Some("10.0.1.1/24"));
        let b_if = w.attach(b, lan, Some("10.0.1.2/24"));
        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.1"), ip("10.0.1.2"), 1)
        });
        w.detach(b, b_if); // unplug before the frame arrives
        w.run_until_idle(1_000);
        assert!(w.host(b).icmp_log.is_empty());
    }

    #[test]
    fn reattach_moves_host_between_segments() {
        let mut w = World::new(7);
        let lan_a = w.add_segment(LinkConfig::lan());
        let lan_b = w.add_segment(LinkConfig::lan());
        let fixed_a = w.add_host(HostConfig::conventional("fa"));
        let fixed_b = w.add_host(HostConfig::conventional("fb"));
        let roamer = w.add_host(HostConfig::conventional("roamer"));
        w.attach(fixed_a, lan_a, Some("10.0.1.1/24"));
        w.attach(fixed_b, lan_b, Some("10.0.2.1/24"));
        let r_if = w.attach(roamer, lan_a, Some("10.0.1.99/24"));

        w.host_do(roamer, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.99"), ip("10.0.1.1"), 1)
        });
        w.run_until_idle(1_000);
        assert_eq!(w.host(roamer).icmp_log.len(), 1);

        // Move to lanB and renumber.
        w.reattach(roamer, r_if, lan_b);
        w.host_mut(roamer)
            .set_iface_addr(r_if, Some(IfaceAddr::parse("10.0.2.99/24")));
        w.host_do(roamer, |h, ctx| {
            h.send_ping(ctx, ip("10.0.2.99"), ip("10.0.2.1"), 2)
        });
        w.run_until_idle(1_000);
        assert!(w.host(roamer).icmp_log.iter().any(|e| matches!(
            e.message,
            IcmpMessage::EchoReply { seq: 2, .. }
        ) && e.from == ip("10.0.2.1")));
    }

    #[test]
    fn trace_hop_counts_measure_path_length() {
        let (mut w, alice, _, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 3)
        });
        w.run_until_idle(10_000);
        // Request: alice Sent + router Forwarded = 2 wire traversals.
        let hops = w
            .trace
            .hops(|s| s.dst == ip("10.0.2.10") && s.protocol == IpProtocol::Icmp);
        assert_eq!(hops, 2);
    }

    #[test]
    fn metrics_registry_agrees_with_link_stats_and_trace() {
        let (mut w, alice, bob, r) = two_lan_world();
        w.enable_metrics();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);

        // Per-segment frames/bytes must match the LinkStats the segments
        // themselves keep (ARP included).
        for seg in [SegmentId(0), SegmentId(1)] {
            let stats = w.segment_stats(seg);
            let m = w.metrics.segment(seg);
            assert_eq!(m.frames, stats.frames, "segment {} frames", seg.0);
            assert_eq!(m.bytes, stats.bytes, "segment {} bytes", seg.0);
            assert_eq!(m.wire_drops, stats.fault_drops + stats.oversize_drops);
            assert_eq!(m.crc_drops, stats.crc_drops);
            assert!(m.frames > 0);
            assert!(m.busy.as_micros() > 0);
        }

        // Per-node counters must match what the trace derived.
        let icmp = |s: &crate::trace::PacketSummary| s.protocol == IpProtocol::Icmp;
        let sent_per_trace = w
            .trace
            .matching(icmp)
            .filter(|e| matches!(e.kind, TraceEventKind::Sent))
            .count() as u64;
        let alice_m = w.metrics.node(alice);
        let bob_m = w.metrics.node(bob);
        assert_eq!(alice_m.packets_sent + bob_m.packets_sent, sent_per_trace);
        assert_eq!(alice_m.packets_delivered, 1, "the echo reply");
        assert_eq!(bob_m.packets_delivered, 1, "the echo request");
        // The router forwarded request + reply and dropped nothing.
        let r_m = w.metrics.node(r);
        assert_eq!(r_m.packets_forwarded, 2);
        assert_eq!(r_m.total_drops(), 0);
        assert!(w.metrics.total_drops_by_reason().is_empty());
    }

    #[test]
    fn disabled_metrics_stay_empty() {
        let (mut w, alice, _, _) = two_lan_world();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert_eq!(w.metrics.node(alice).packets_sent, 0);
        assert_eq!(w.metrics.node_ids().count(), 0, "no allocations either");
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed| {
            let (mut w, alice, _, _) = two_lan_world();
            let _ = seed;
            w.host_do(alice, |h, ctx| {
                h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
            });
            w.run_until_idle(10_000);
            (w.now(), w.trace.events().len())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn multi_hop_route_computation() {
        // lanA — r1 — mid — r2 — lanB, distinct latencies.
        let mut w = World::new(1);
        let lan_a = w.add_segment(LinkConfig::lan());
        let mid = w.add_segment(LinkConfig::wan(30));
        let lan_b = w.add_segment(LinkConfig::lan());
        let a = w.add_host(HostConfig::conventional("a"));
        let b = w.add_host(HostConfig::conventional("b"));
        let r1 = w.add_router(RouterConfig::named("r1"));
        let r2 = w.add_router(RouterConfig::named("r2"));
        w.attach(a, lan_a, Some("10.0.1.10/24"));
        w.attach(r1, lan_a, Some("10.0.1.1/24"));
        w.attach(r1, mid, Some("192.168.0.1/30"));
        w.attach(r2, mid, Some("192.168.0.2/30"));
        w.attach(r2, lan_b, Some("10.0.2.1/24"));
        w.attach(b, lan_b, Some("10.0.2.10/24"));
        w.compute_routes();

        w.host_do(a, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1)
        });
        w.run_until_idle(10_000);
        assert!(w
            .host(a)
            .icmp_log
            .iter()
            .any(|e| matches!(e.message, IcmpMessage::EchoReply { .. })));
        // 3 traversals each way.
        assert_eq!(
            w.trace
                .hops(|s| s.dst == ip("10.0.2.10") && s.protocol == IpProtocol::Icmp),
            3
        );
        // One-way latency dominated by the 30 ms WAN hop.
        let lat = w
            .trace
            .first_delivery_latency(|s| s.dst == ip("10.0.2.10"))
            .unwrap();
        assert!(lat.as_millis() >= 30, "latency was {lat}");
    }

    #[test]
    fn invariant_monitor_clean_on_healthy_run() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_metrics();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
        assert_eq!(w.invariants.in_flight(), 0);
    }

    #[test]
    fn invariant_monitor_tolerates_wire_loss() {
        let (mut w, alice, _, _) = {
            let mut w = World::new(7);
            let mut lossy = LinkConfig::lan();
            lossy.fault.drop_prob = 1.0;
            let lan_a = w.add_segment(lossy);
            let lan_b = w.add_segment(LinkConfig::lan());
            let alice = w.add_host(HostConfig::conventional("alice"));
            let bob = w.add_host(HostConfig::conventional("bob"));
            let r = w.add_router(RouterConfig::named("r"));
            w.attach(alice, lan_a, Some("10.0.1.10/24"));
            w.attach(bob, lan_b, Some("10.0.2.10/24"));
            w.attach(r, lan_a, Some("10.0.1.1/24"));
            w.attach(r, lan_b, Some("10.0.2.1/24"));
            w.compute_routes();
            (w, alice, bob, r)
        };
        w.enable_metrics();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        // Every frame is lost on the wire; the conservation monitor must
        // attribute the leaked packets to wire losses, not flag them.
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
    }

    #[test]
    fn apply_telemetry_arms_every_layer() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_metrics();
        let cfg = TelemetryConfig {
            sample_flows: Some(4),
            sketch_node_threshold: 1,
            ..TelemetryConfig::default()
        };
        w.apply_telemetry(&cfg);
        assert_eq!(w.trace.flow_sample_rate(), Some(4));
        assert!(w.invariants.enabled());
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        assert!(!w.has_invariant_violations(), "{:?}", w.invariant_report());
        // Three nodes saw traffic, threshold is 1 — the registry must
        // have collapsed into sketched mode mid-run.
        assert!(w.metrics.is_sketched());
        let sk = w.metrics.sketched().expect("sketched");
        assert!(sk.totals.packets_sent >= 1);
    }

    #[test]
    fn invariant_report_shape() {
        let (mut w, alice, _, _) = two_lan_world();
        w.enable_invariants();
        w.host_do(alice, |h, ctx| {
            h.send_ping(ctx, ip("10.0.1.10"), ip("10.0.2.10"), 1);
        });
        w.run_until_idle(10_000);
        let v = w.invariant_report();
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"ok\":true"), "{s}");
        assert!(s.contains("\"violations\":[]"), "{s}");
    }
}
