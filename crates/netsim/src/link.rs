//! Links: shared Ethernet segments and point-to-point wires.
//!
//! Both are modelled as a *segment* — a broadcast domain with N attachments.
//! A frame transmitted by one attachment is delivered to every other
//! attachment after the serialization and propagation delay; receivers
//! filter by destination MAC. This physical-broadcast model is what makes
//! the paper's In-DH mode (§5) work exactly as described: a correspondent on
//! the same segment can address a frame to the mobile host's MAC even though
//! the IP destination "does not belong" on that network.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{lane_key, segment_lane, EventKind, EventSink, IfaceNo, NodeId};
use crate::time::{SimDuration, SimTime};
use crate::wire::ethernet::MacAddr;

/// Identifies a segment in the [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

/// Alias kept for the common two-attachment case.
pub type LinkId = SegmentId;

/// Random fault injection applied to every frame on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability one octet of the frame is flipped.
    pub corrupt_prob: f64,
    /// Probability the frame is delivered twice.
    pub duplicate_prob: f64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

/// What the fault injector decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// One bit was flipped in flight. Every CRC catches all single-bit
    /// errors, so the receiving NIC's FCS check discards the frame: it
    /// occupies the wire but is never delivered upward.
    Corrupt,
}

impl FaultInjector {
    /// Does this injector ever draw from the RNG? Fault-free segments skip
    /// RNG seeding entirely, which keeps their outcome predictable from the
    /// frame alone — the property sharded execution relies on at shard
    /// borders.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.corrupt_prob > 0.0 || self.duplicate_prob > 0.0
    }

    /// Decide this frame's fate, possibly corrupting it in place.
    pub fn apply<R: Rng>(&self, frame: &mut [u8], rng: &mut R) -> FaultOutcome {
        let (outcome, flip) = self.decide_impl(frame.len(), rng);
        if let Some((i, bit)) = flip {
            frame[i] ^= bit;
        }
        outcome
    }

    /// Decide a frame's fate from its length alone, without touching the
    /// bytes. Draws from `rng` in exactly the same order as [`apply`], so
    /// the two are interchangeable on the same RNG stream. The transmit
    /// path uses this: corrupted frames are never delivered upward (the
    /// receiving FCS check drops them), so mutating the buffer — and the
    /// copy that made it mutable — is avoidable work.
    pub fn decide<R: Rng>(&self, frame_len: usize, rng: &mut R) -> FaultOutcome {
        self.decide_impl(frame_len, rng).0
    }

    fn decide_impl<R: Rng>(
        &self,
        frame_len: usize,
        rng: &mut R,
    ) -> (FaultOutcome, Option<(usize, u8)>) {
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
            return (FaultOutcome::Drop, None);
        }
        if self.corrupt_prob > 0.0 && rng.gen_bool(self.corrupt_prob) && frame_len > 0 {
            let i = rng.gen_range(0..frame_len);
            let bit = 1u8 << rng.gen_range(0..8);
            return (FaultOutcome::Corrupt, Some((i, bit)));
        }
        if self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob) {
            return (FaultOutcome::Duplicate, None);
        }
        (FaultOutcome::Deliver, None)
    }
}

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bits per second; `None` = infinitely fast serialization.
    pub bandwidth_bps: Option<u64>,
    /// Maximum IP packet size carried in one frame (i.e. Ethernet payload).
    pub mtu: usize,
    /// Random fault injection applied to every frame.
    pub fault: FaultInjector,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: Some(10_000_000), // classic 10 Mb/s Ethernet
            mtu: 1500,
            fault: FaultInjector::default(),
        }
    }
}

impl LinkConfig {
    /// An Ethernet-like LAN segment.
    pub fn lan() -> LinkConfig {
        LinkConfig::default()
    }

    /// A WAN link with the given one-way latency in milliseconds.
    pub fn wan(latency_ms: u64) -> LinkConfig {
        LinkConfig {
            latency: SimDuration::from_millis(latency_ms),
            bandwidth_bps: Some(45_000_000), // T3-era backbone
            mtu: 1500,
            fault: FaultInjector::default(),
        }
    }

    /// Time to clock `bytes` onto this link.
    pub fn serialize_time(&self, bytes: usize) -> SimDuration {
        match self.bandwidth_bps {
            Some(bps) => SimDuration::from_micros((bytes as u64 * 8 * 1_000_000) / bps),
            None => SimDuration::ZERO,
        }
    }
}

/// Per-segment traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames carried.
    pub frames: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Frames eaten by fault injection.
    pub fault_drops: u64,
    /// Frames corrupted in flight and discarded by the receiver's FCS
    /// check (they still consumed wire time and count in `frames`/`bytes`).
    pub crc_drops: u64,
    /// Frames dropped for exceeding the MTU (an upstream bug).
    pub oversize_drops: u64,
}

serde::impl_serialize!(LinkStats {
    frames,
    bytes,
    fault_drops,
    crc_drops,
    oversize_drops
});

/// The mutable, per-run side of a segment: medium occupancy, traffic
/// counters, the segment's event-ordering lane sequence and its lazily
/// seeded fault RNG. Split out of [`Segment`] so sharded execution can
/// share the immutable topology (`&[Segment]`) across worker threads while
/// each shard owns the states of the segments it simulates.
#[derive(Debug, Clone)]
pub struct SegState {
    /// When the shared medium next becomes free (serialization queueing).
    pub(crate) next_free: SimTime,
    /// Traffic counters.
    pub stats: LinkStats,
    /// Next sequence number on this segment's event lane. Delivery events
    /// are keyed `(segment lane, lane_seq)`, so their global tie-break order
    /// depends only on which segment carried them — not on which thread or
    /// shard happened to schedule them.
    pub(crate) lane_seq: u64,
    /// Fault-injection RNG, seeded from the segment's `rng_seed` on first
    /// use. Fault-free segments never touch it.
    pub(crate) rng: Option<StdRng>,
}

impl Default for SegState {
    fn default() -> Self {
        SegState {
            next_free: SimTime::ZERO,
            stats: LinkStats::default(),
            lane_seq: 0,
            rng: None,
        }
    }
}

impl SegState {
    /// How long the medium is already committed beyond `now`: the
    /// sender-side queueing delay a frame offered at `now` would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.since(now)
    }
}

/// A broadcast domain. Two attachments = point-to-point wire.
///
/// Holds only the parts that are immutable while events are dispatched:
/// link parameters, attachments and the MAC registry (topology changes
/// happen inside node handlers via deferred world ops, never concurrently
/// with a transmit). The mutable side lives in [`SegState`].
#[derive(Debug)]
pub struct Segment {
    /// Static link parameters.
    pub config: LinkConfig,
    attachments: Vec<(NodeId, IfaceNo)>,
    /// Link-layer addresses of the attached interfaces, kept by the world
    /// so the conservation monitor can tell a deliverable unicast frame
    /// from one addressed to a MAC that has left the wire.
    macs: Vec<((NodeId, IfaceNo), MacAddr)>,
    /// The event-ordering lane for deliveries on this segment; the world
    /// assigns it from the segment index at creation.
    pub(crate) lane: u64,
    /// Seed for this segment's private fault RNG, derived by the world from
    /// the world seed and the segment index so fault decisions are
    /// reproducible regardless of how many shards run the simulation.
    pub(crate) rng_seed: u64,
}

impl Segment {
    /// A segment with no attachments. Standalone construction (tests,
    /// benches) gets lane 0's segment lane and a fixed RNG seed; the world
    /// overwrites both when the segment is added to a topology.
    pub fn new(config: LinkConfig) -> Segment {
        Segment {
            config,
            attachments: Vec::new(),
            macs: Vec::new(),
            lane: segment_lane(0),
            rng_seed: 0,
        }
    }

    /// Attach a node interface to this segment.
    pub fn attach(&mut self, node: NodeId, iface: IfaceNo) {
        self.attachments.push((node, iface));
    }

    /// Record the MAC of an attached interface (the world calls this at
    /// attach time; [`Segment::detach`] forgets it).
    pub fn register_mac(&mut self, node: NodeId, iface: IfaceNo, mac: MacAddr) {
        self.macs.retain(|&(a, _)| a != (node, iface));
        self.macs.push(((node, iface), mac));
    }

    /// Is any attached interface configured with `mac`? Frames unicast to
    /// an unclaimed MAC die on the wire: every NIC ignores them.
    pub fn mac_attached(&self, mac: MacAddr) -> bool {
        self.macs.iter().any(|&(_, m)| m == mac)
    }

    /// Detach a node interface (the mobile host leaving a network).
    pub fn detach(&mut self, node: NodeId, iface: IfaceNo) {
        self.attachments.retain(|&a| a != (node, iface));
        self.macs.retain(|&(a, _)| a != (node, iface));
    }

    /// Everything plugged into this segment.
    pub fn attachments(&self) -> &[(NodeId, IfaceNo)] {
        &self.attachments
    }

    /// Is this (node, interface) plugged in here?
    pub fn is_attached(&self, node: NodeId, iface: IfaceNo) -> bool {
        self.attachments.contains(&(node, iface))
    }

    /// Transmit `frame` from `from`, scheduling delivery events to every
    /// other attachment through `sink`. Applies serialization delay,
    /// propagation latency and fault injection, mutating only the segment's
    /// [`SegState`]. Returns the fault outcome (for link stats and drop
    /// tracing by the caller). Delivery events carry `(segment lane,
    /// lane_seq)` keys, so equal-timestamp ordering is a pure function of
    /// the topology and traffic — identical however the world is sharded.
    pub fn transmit(
        &self,
        state: &mut SegState,
        from: (NodeId, IfaceNo),
        frame: Bytes,
        now: SimTime,
        sink: &mut impl EventSink,
    ) -> FaultOutcome {
        // Frames larger than MTU + Ethernet header indicate an IP-layer bug
        // upstream (fragmentation should have happened); drop and count.
        let max_frame = self.config.mtu + crate::wire::ethernet::ETHERNET_HEADER_LEN;
        if frame.len() > max_frame {
            state.stats.oversize_drops += 1;
            return FaultOutcome::Drop;
        }

        // Corrupt frames are never delivered (the FCS check below discards
        // them), so the fault decision only needs the length — the frame
        // buffer stays shared and untouched, no copy. The RNG is private to
        // the segment and seeded from the world seed + segment index, so
        // the fault stream never depends on interleaving with other
        // segments' traffic.
        let outcome = if self.config.fault.is_active() {
            let _prof = crate::profile::scope("link/fault");
            let seed = self.rng_seed;
            let rng = state.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
            self.config.fault.decide(frame.len(), rng)
        } else {
            FaultOutcome::Deliver
        };
        if outcome == FaultOutcome::Drop {
            state.stats.fault_drops += 1;
            return outcome;
        }

        state.stats.frames += 1;
        state.stats.bytes += frame.len() as u64;

        let tx_start = now.max(state.next_free);
        let tx_end = tx_start + self.config.serialize_time(frame.len());
        state.next_free = tx_end;
        let arrival = tx_end + self.config.latency;

        // A corrupted frame monopolizes the medium like any other but every
        // receiving NIC rejects it on the FCS check — model that as
        // "no delivery events".
        if outcome == FaultOutcome::Corrupt {
            state.stats.crc_drops += 1;
            return outcome;
        }

        let copies = if outcome == FaultOutcome::Duplicate {
            2
        } else {
            1
        };
        for _ in 0..copies {
            for &(node, iface) in &self.attachments {
                if (node, iface) == from {
                    continue;
                }
                let key = lane_key(self.lane, state.lane_seq);
                state.lane_seq += 1;
                sink.push_keyed(
                    arrival,
                    key,
                    EventKind::Deliver {
                        node,
                        iface,
                        frame: frame.clone(),
                    },
                );
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    fn frame(n: usize) -> Bytes {
        Bytes::from(vec![0xabu8; n])
    }

    #[test]
    fn p2p_delivery_after_latency_and_serialization() {
        let mut seg = Segment::new(LinkConfig {
            latency: SimDuration::from_millis(10),
            bandwidth_bps: Some(8_000_000), // 1 byte/µs
            mtu: 1500,
            fault: FaultInjector::default(),
        });
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        seg.transmit(&mut st, (NodeId(0), 0), frame(1000), SimTime::ZERO, &mut q);
        let ev = q.pop().unwrap();
        // 1000 bytes at 1 byte/µs = 1000 µs + 10 ms latency.
        assert_eq!(ev.at, SimTime(11_000));
        assert!(q.pop().is_none(), "sender must not hear its own frame");
        assert_eq!(st.stats.frames, 1);
        assert_eq!(st.stats.bytes, 1000);
    }

    #[test]
    fn broadcast_segment_reaches_all_other_attachments() {
        let mut seg = Segment::new(LinkConfig::lan());
        for i in 0..4 {
            seg.attach(NodeId(i), 0);
        }
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        seg.transmit(&mut st, (NodeId(2), 0), frame(64), SimTime::ZERO, &mut q);
        let mut receivers: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Deliver { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        receivers.sort_unstable();
        assert_eq!(receivers, vec![0, 1, 3]);
    }

    #[test]
    fn serialization_queueing_backs_up() {
        let cfg = LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_bps: Some(8_000_000), // 1 byte/µs
            mtu: 1500,
            fault: FaultInjector::default(),
        };
        let mut seg = Segment::new(cfg);
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        // Two back-to-back 500-byte frames at t=0: second must wait.
        seg.transmit(&mut st, (NodeId(0), 0), frame(500), SimTime::ZERO, &mut q);
        seg.transmit(&mut st, (NodeId(0), 0), frame(500), SimTime::ZERO, &mut q);
        let t1 = q.pop().unwrap().at;
        let t2 = q.pop().unwrap().at;
        assert_eq!(t1, SimTime(500));
        assert_eq!(t2, SimTime(1000));
    }

    #[test]
    fn detach_stops_delivery() {
        let mut seg = Segment::new(LinkConfig::lan());
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        assert!(seg.is_attached(NodeId(1), 0));
        seg.detach(NodeId(1), 0);
        assert!(!seg.is_attached(NodeId(1), 0));
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        seg.transmit(&mut st, (NodeId(0), 0), frame(64), SimTime::ZERO, &mut q);
        assert!(q.is_empty());
    }

    #[test]
    fn oversize_frames_dropped() {
        let mut seg = Segment::new(LinkConfig::lan()); // mtu 1500
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        let out = seg.transmit(
            &mut st,
            (NodeId(0), 0),
            frame(1515), // > 1500 + 14
            SimTime::ZERO,
            &mut q,
        );
        assert_eq!(out, FaultOutcome::Drop);
        assert_eq!(st.stats.oversize_drops, 1);
        assert!(q.is_empty());
        // Exactly MTU + header is fine.
        let out = seg.transmit(&mut st, (NodeId(0), 0), frame(1514), SimTime::ZERO, &mut q);
        assert_eq!(out, FaultOutcome::Deliver);
    }

    #[test]
    fn fault_injection_drops_approximately_at_rate() {
        let mut seg = Segment::new(LinkConfig {
            fault: FaultInjector {
                drop_prob: 0.5,
                ..Default::default()
            },
            ..LinkConfig::lan()
        });
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        seg.rng_seed = 42;
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        let mut dropped = 0;
        for _ in 0..1000 {
            if seg.transmit(&mut st, (NodeId(0), 0), frame(64), SimTime::ZERO, &mut q)
                == FaultOutcome::Drop
            {
                dropped += 1;
            }
        }
        assert!((400..600).contains(&dropped), "dropped {dropped}/1000");
        assert_eq!(st.stats.fault_drops, dropped);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let inj = FaultInjector {
            corrupt_prob: 1.0,
            ..Default::default()
        };
        let mut r = StdRng::seed_from_u64(42);
        let orig = vec![0u8; 100];
        let mut data = orig.clone();
        assert_eq!(inj.apply(&mut data, &mut r), FaultOutcome::Corrupt);
        let flipped: u32 = orig
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut seg = Segment::new(LinkConfig {
            fault: FaultInjector {
                duplicate_prob: 1.0,
                ..Default::default()
            },
            ..LinkConfig::lan()
        });
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        let out = seg.transmit(&mut st, (NodeId(0), 0), frame(64), SimTime::ZERO, &mut q);
        assert_eq!(out, FaultOutcome::Duplicate);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_faults_is_deterministic_delivery() {
        let mut seg = Segment::new(LinkConfig::lan());
        seg.attach(NodeId(0), 0);
        seg.attach(NodeId(1), 0);
        let mut st = SegState::default();
        let mut q = EventQueue::new();
        for _ in 0..100 {
            assert_eq!(
                seg.transmit(&mut st, (NodeId(0), 0), frame(64), SimTime::ZERO, &mut q),
                FaultOutcome::Deliver
            );
        }
        assert_eq!(q.len(), 100);
        assert!(
            st.rng.is_none(),
            "fault-free segment must never seed its RNG"
        );
    }
}
