//! ARP (RFC 826) for IPv4 over Ethernet, including the gratuitous replies
//! used for proxy ARP (RFC 1027).
//!
//! Proxy ARP is how the paper's home agent captures packets addressed to an
//! absent mobile host (§2: "The home agent uses gratuitous proxy ARP to
//! capture all IP packets addressed to the mobile host").

use super::ethernet::MacAddr;
use super::ipv4::Ipv4Addr;
use super::ParseError;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// "Who has X?"
    Request,
    /// "X is at MAC Y."
    Reply,
}

impl ArpOp {
    fn number(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

/// Wire length of an IPv4-over-Ethernet ARP packet.
pub const ARP_LEN: usize = 28;

/// An ARP packet (hardware = Ethernet, protocol = IPv4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sha: MacAddr,
    /// Sender protocol (IPv4) address.
    pub spa: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub tha: MacAddr,
    /// Target protocol (IPv4) address.
    pub tpa: Ipv4Addr,
}

impl ArpPacket {
    /// "Who has `target`? Tell `sender_ip` at `sender_mac`."
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Request,
            sha: sender_mac,
            spa: sender_ip,
            tha: MacAddr::ZERO,
            tpa: target,
        }
    }

    /// "`sender_ip` is at `sender_mac`" — answering `requester`.
    pub fn reply(
        sender_mac: MacAddr,
        sender_ip: Ipv4Addr,
        requester_mac: MacAddr,
        requester_ip: Ipv4Addr,
    ) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sha: sender_mac,
            spa: sender_ip,
            tha: requester_mac,
            tpa: requester_ip,
        }
    }

    /// Gratuitous ARP: unsolicited broadcast announcing (or, for proxy ARP,
    /// usurping) the binding `ip → mac`. This is the RFC 1027 mechanism the
    /// home agent uses when a mobile host registers away from home, and the
    /// mechanism the mobile host uses to reclaim its address on return.
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sha: mac,
            spa: ip,
            tha: MacAddr::BROADCAST,
            tpa: ip,
        }
    }

    /// True if this packet announces a binding for its own sender address
    /// (i.e. it is gratuitous).
    pub fn is_gratuitous(&self) -> bool {
        self.spa == self.tpa
    }

    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ARP_LEN);
        buf.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        buf.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        buf.push(6); // hlen
        buf.push(4); // plen
        buf.extend_from_slice(&self.op.number().to_be_bytes());
        buf.extend_from_slice(&self.sha.0);
        buf.extend_from_slice(&self.spa.octets());
        buf.extend_from_slice(&self.tha.0);
        buf.extend_from_slice(&self.tpa.octets());
        buf
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<ArpPacket, ParseError> {
        if data.len() < ARP_LEN {
            return Err(ParseError::Truncated {
                needed: ARP_LEN,
                got: data.len(),
            });
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if htype != 1 {
            return Err(ParseError::BadField {
                what: "arp htype",
                value: u64::from(htype),
            });
        }
        if ptype != 0x0800 {
            return Err(ParseError::BadField {
                what: "arp ptype",
                value: u64::from(ptype),
            });
        }
        if data[4] != 6 || data[5] != 4 {
            return Err(ParseError::BadField {
                what: "arp hlen/plen",
                value: u64::from(u16::from_be_bytes([data[4], data[5]])),
            });
        }
        let op = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => {
                return Err(ParseError::BadField {
                    what: "arp op",
                    value: u64::from(other),
                })
            }
        };
        let mut sha = [0u8; 6];
        sha.copy_from_slice(&data[8..14]);
        let mut tha = [0u8; 6];
        tha.copy_from_slice(&data[18..24]);
        Ok(ArpPacket {
            op,
            sha: MacAddr(sha),
            spa: Ipv4Addr::from_octets([data[14], data[15], data[16], data[17]]),
            tha: MacAddr(tha),
            tpa: Ipv4Addr::from_octets([data[24], data[25], data[26], data[27]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let p = ArpPacket::request(mac(1), ip("10.0.0.1"), ip("10.0.0.2"));
        assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
        assert_eq!(p.tha, MacAddr::ZERO);
        assert!(!p.is_gratuitous());
    }

    #[test]
    fn reply_roundtrip() {
        let p = ArpPacket::reply(mac(2), ip("10.0.0.2"), mac(1), ip("10.0.0.1"));
        let q = ArpPacket::parse(&p.emit()).unwrap();
        assert_eq!(q, p);
        assert_eq!(q.op, ArpOp::Reply);
    }

    #[test]
    fn gratuitous_arp_announces_itself() {
        let p = ArpPacket::gratuitous(mac(3), ip("171.64.15.9"));
        assert!(p.is_gratuitous());
        assert_eq!(p.spa, p.tpa);
        assert_eq!(ArpPacket::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn parse_rejects_wrong_formats() {
        let good = ArpPacket::request(mac(1), ip("10.0.0.1"), ip("10.0.0.2")).emit();
        let mut bad = good.clone();
        bad[1] = 9; // htype
        assert!(ArpPacket::parse(&bad).is_err());
        let mut bad = good.clone();
        bad[3] = 0x06; // ptype
        assert!(ArpPacket::parse(&bad).is_err());
        let mut bad = good.clone();
        bad[7] = 9; // op
        assert!(ArpPacket::parse(&bad).is_err());
        assert!(ArpPacket::parse(&good[..20]).is_err());
    }
}
