//! TCP segment wire format (RFC 793) with the IPv4 pseudo-header checksum
//! and the MSS option.
//!
//! The segment format lives here in `netsim::wire`; the protocol state
//! machine lives in the `transport` crate. Keeping the wire format with the
//! other formats lets routers, traces and fault injection treat TCP bytes
//! like any other payload.

use bytes::Bytes;

use super::ipv4::{IpProtocol, Ipv4Addr};
use super::udp::pseudo_header_sum;
use super::{checksum_valid, internet_checksum, ParseError};

/// Minimum TCP header length (no options).
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// SYN: synchronize sequence numbers.
    pub syn: bool,
    /// ACK: the acknowledgement field is valid.
    pub ack: bool,
    /// FIN: sender is done sending.
    pub fin: bool,
    /// RST: reset the connection.
    pub rst: bool,
    /// PSH: push to the application promptly.
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN (active open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    /// SYN+ACK (passive-open reply).
    pub fn syn_ack() -> TcpFlags {
        TcpFlags {
            syn: true,
            ack: true,
            ..Default::default()
        }
    }

    /// A bare ACK.
    pub fn ack() -> TcpFlags {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }

    /// FIN+ACK (orderly close).
    pub fn fin_ack() -> TcpFlags {
        TcpFlags {
            fin: true,
            ack: true,
            ..Default::default()
        }
    }

    /// A bare RST.
    pub fn rst() -> TcpFlags {
        TcpFlags {
            rst: true,
            ..Default::default()
        }
    }

    fn bits(self) -> u8 {
        (u8::from(self.fin))
            | (u8::from(self.syn) << 1)
            | (u8::from(self.rst) << 2)
            | (u8::from(self.psh) << 3)
            | (u8::from(self.ack) << 4)
    }

    fn from_bits(b: u8) -> TcpFlags {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload octet.
    pub seq: u32,
    /// Cumulative acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Maximum segment size option; emitted only on SYN segments, as in
    /// practice.
    pub mss: Option<u16>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    fn header_len(&self) -> usize {
        if self.mss.is_some() && self.flags.syn {
            TCP_HEADER_LEN + 4
        } else {
            TCP_HEADER_LEN
        }
    }

    /// On-wire length in bytes.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// The amount of sequence space this segment occupies (payload plus one
    /// for each of SYN and FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// Serialize; the checksum covers the pseudo-header of `src`/`dst`.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let hlen = self.header_len();
        let total = self.wire_len();
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(((hlen / 4) as u8) << 4);
        buf.push(self.flags.bits());
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum
        buf.extend_from_slice(&[0, 0]); // urgent pointer (unused)
        if let (Some(mss), true) = (self.mss, self.flags.syn) {
            buf.push(2); // kind: MSS
            buf.push(4); // length
            buf.extend_from_slice(&mss.to_be_bytes());
        }
        buf.extend_from_slice(&self.payload);
        let seed = pseudo_header_sum(src, dst, IpProtocol::Tcp, total as u16);
        let ck = internet_checksum(&buf, seed);
        buf[16..18].copy_from_slice(&ck.to_be_bytes());
        buf
    }

    /// Parse and verify against the carrying packet's pseudo-header.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<TcpSegment, ParseError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: TCP_HEADER_LEN,
                got: data.len(),
            });
        }
        let hlen = usize::from(data[12] >> 4) * 4;
        if hlen < TCP_HEADER_LEN || data.len() < hlen {
            return Err(ParseError::BadField {
                what: "tcp data offset",
                value: (hlen / 4) as u64,
            });
        }
        let seed = pseudo_header_sum(src, dst, IpProtocol::Tcp, data.len() as u16);
        if !checksum_valid(data, seed) {
            return Err(ParseError::BadChecksum { what: "tcp" });
        }
        // Scan options for MSS (kind 2).
        let mut mss = None;
        let mut i = TCP_HEADER_LEN;
        while i < hlen {
            match data[i] {
                0 => break,  // end of options
                1 => i += 1, // no-op
                2 if i + 4 <= hlen => {
                    mss = Some(u16::from_be_bytes([data[i + 2], data[i + 3]]));
                    i += 4;
                }
                _ => {
                    // Unknown option: skip by its length byte if present.
                    if i + 1 >= hlen || data[i + 1] < 2 {
                        break;
                    }
                    i += usize::from(data[i + 1]);
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_bits(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            mss,
            payload: Bytes::copy_from_slice(&data[hlen..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn seg() -> TcpSegment {
        TcpSegment {
            src_port: 43210,
            dst_port: 23,
            seq: 0x1000_0000,
            ack: 0x2000_0001,
            flags: TcpFlags::ack(),
            window: 8760,
            mss: None,
            payload: Bytes::from_static(b"telnet keystrokes"),
        }
    }

    #[test]
    fn roundtrip_plain() {
        let s = seg();
        let src = ip("171.64.15.9");
        let dst = ip("18.26.0.1");
        assert_eq!(TcpSegment::parse(&s.emit(src, dst), src, dst).unwrap(), s);
    }

    #[test]
    fn roundtrip_syn_with_mss() {
        let s = TcpSegment {
            flags: TcpFlags::SYN,
            mss: Some(1460),
            payload: Bytes::new(),
            ..seg()
        };
        let src = ip("1.2.3.4");
        let dst = ip("4.3.2.1");
        let wire = s.emit(src, dst);
        assert_eq!(wire.len(), TCP_HEADER_LEN + 4);
        let p = TcpSegment::parse(&wire, src, dst).unwrap();
        assert_eq!(p.mss, Some(1460));
        assert_eq!(p, s);
    }

    #[test]
    fn mss_suppressed_on_non_syn() {
        let s = TcpSegment {
            mss: Some(1460),
            ..seg()
        };
        let src = ip("1.2.3.4");
        let dst = ip("4.3.2.1");
        let p = TcpSegment::parse(&s.emit(src, dst), src, dst).unwrap();
        assert_eq!(p.mss, None, "MSS only travels on SYN segments");
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = seg();
        s.payload = Bytes::from_static(b"abc");
        assert_eq!(s.seq_len(), 3);
        s.flags.syn = true;
        assert_eq!(s.seq_len(), 4);
        s.flags.fin = true;
        assert_eq!(s.seq_len(), 5);
    }

    #[test]
    fn checksum_binds_addresses() {
        // Same property as UDP: the pseudo-header ties the segment to the
        // IP endpoints, which is exactly why a TCP connection breaks when a
        // host's address changes (the paper's Out-DT disadvantage).
        let s = seg();
        let wire = s.emit(ip("10.0.0.1"), ip("10.0.0.2"));
        assert!(TcpSegment::parse(&wire, ip("10.9.9.9"), ip("10.0.0.2")).is_err());
    }

    #[test]
    fn corruption_detected() {
        let s = seg();
        let src = ip("10.0.0.1");
        let dst = ip("10.0.0.2");
        let mut wire = s.emit(src, dst);
        let n = wire.len();
        wire[n - 1] ^= 0x40;
        assert_eq!(
            TcpSegment::parse(&wire, src, dst),
            Err(ParseError::BadChecksum { what: "tcp" })
        );
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(TcpFlags::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn bad_data_offset_rejected() {
        let s = seg();
        let src = ip("10.0.0.1");
        let dst = ip("10.0.0.2");
        let mut wire = s.emit(src, dst);
        wire[12] = 0x10; // data offset 4 words < minimum 5
        assert!(matches!(
            TcpSegment::parse(&wire, src, dst),
            Err(ParseError::BadField { .. })
        ));
    }
}
