//! Ethernet II framing.
//!
//! The paper's In-DH mode ("Incoming, Direct, Home Address", §5) works
//! precisely because IP delivery on the final hop is a link-layer matter:
//! "The only difference is in the link-layer destination to which the packet
//! is addressed." The simulator therefore models real frames with real MAC
//! addressing rather than teleporting IP packets between stacks.

use std::fmt;

use bytes::Bytes;

use super::ParseError;

/// A 48-bit IEEE MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast MAC, ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero MAC (unknown/placeholder).
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Locally-administered unicast address derived from a node index, in the
    /// style smoltcp examples use (`02-00-00-xx-xx-xx`).
    pub fn from_index(ix: u32) -> MacAddr {
        let [_, b, c, d] = ix.to_be_bytes();
        MacAddr([0x02, 0x00, 0x00, b, c, d])
    }

    /// Is this the broadcast address?
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// The Ethernet multicast address for an IPv4 multicast group
    /// (RFC 1112 §6.4: 01-00-5E + low 23 bits of the group address).
    pub fn for_ipv4_multicast(group: crate::wire::ipv4::Ipv4Addr) -> MacAddr {
        let [_, b, c, d] = group.octets();
        MacAddr([0x01, 0x00, 0x5e, b & 0x7f, c, d])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// EtherType values used in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// Any other EtherType, preserved.
    Other(u16),
}

impl EtherType {
    /// The wire value.
    pub fn number(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(n) => n,
        }
    }

    /// From the wire value.
    pub fn from_number(n: u16) -> EtherType {
        match n {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// Length of the Ethernet II header (no 802.1Q tags).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// An Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Assemble a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// On-wire length (header + payload; we do not model the FCS or the
    /// 64-byte minimum, which would only add constant padding).
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }

    /// Serialize to wire bytes. Returns `Bytes` so the transmit path can
    /// share the single emitted buffer (fault injection, pcap, delivery)
    /// without copying.
    pub fn emit(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(&mut buf);
        Bytes::from(buf)
    }

    /// Serialize to wire bytes, appending to `buf`.
    pub fn emit_into(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.wire_len());
        buf.extend_from_slice(&self.dst.0);
        buf.extend_from_slice(&self.src.0);
        buf.extend_from_slice(&self.ethertype.number().to_be_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Serialize just the 14-byte header, appending to `buf`; the caller
    /// then appends the payload itself (used to build a whole frame in one
    /// allocation without materializing the payload `Bytes` first).
    pub fn emit_header_into(dst: MacAddr, src: MacAddr, ethertype: EtherType, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&dst.0);
        buf.extend_from_slice(&src.0);
        buf.extend_from_slice(&ethertype.number().to_be_bytes());
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<EthernetFrame, ParseError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: EtherType::from_number(u16::from_be_bytes([data[12], data[13]])),
            payload: Bytes::copy_from_slice(&data[ETHERNET_HEADER_LEN..]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ipv4::Ipv4Addr;

    #[test]
    fn emit_parse_roundtrip() {
        let f = EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
            Bytes::from_static(b"hello ethernet"),
        );
        let wire = f.emit();
        assert_eq!(wire.len(), f.wire_len());
        assert_eq!(EthernetFrame::parse(&wire).unwrap(), f);
    }

    #[test]
    fn parse_rejects_short_frames() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 13]),
            Err(ParseError::Truncated { .. })
        ));
    }

    #[test]
    fn mac_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let uni = MacAddr::from_index(77);
        assert!(!uni.is_broadcast());
        assert!(!uni.is_multicast());
        assert_eq!(uni.to_string(), "02:00:00:00:00:4d");
    }

    #[test]
    fn distinct_indices_give_distinct_macs() {
        assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
        assert_eq!(
            MacAddr::from_index(0x0a0b0c),
            MacAddr([0x02, 0, 0, 0x0a, 0x0b, 0x0c])
        );
    }

    #[test]
    fn ipv4_multicast_mac_mapping() {
        // RFC 1112: 224.1.2.3 → 01:00:5e:01:02:03, high bit of byte 3 masked.
        let m = MacAddr::for_ipv4_multicast(Ipv4Addr::new(224, 129, 2, 3));
        assert_eq!(m, MacAddr([0x01, 0x00, 0x5e, 0x01, 0x02, 0x03]));
        assert!(m.is_multicast());
    }

    #[test]
    fn ethertype_roundtrip() {
        for n in [0x0800u16, 0x0806, 0x86dd, 0x1234] {
            assert_eq!(EtherType::from_number(n).number(), n);
        }
    }
}
