//! UDP (RFC 768) with the IPv4 pseudo-header checksum.

use bytes::Bytes;

use super::ipv4::{IpProtocol, Ipv4Addr};
use super::{checksum_valid, internet_checksum, ones_complement_sum, ParseError};

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// One's-complement sum of the IPv4 pseudo-header used by UDP and TCP.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProtocol, len: u16) -> u32 {
    let mut ph = Vec::with_capacity(12);
    ph.extend_from_slice(&src.octets());
    ph.extend_from_slice(&dst.octets());
    ph.push(0);
    ph.push(proto.number());
    ph.extend_from_slice(&len.to_be_bytes());
    u32::from(ones_complement_sum(&ph, 0))
}

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl UdpDatagram {
    /// Assemble a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> UdpDatagram {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// On-wire length in bytes.
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// Serialize. The checksum covers the pseudo-header, so the enclosing
    /// IP source and destination addresses are required.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = self.wire_len() as u16;
        let mut buf = Vec::with_capacity(self.wire_len());
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&self.payload);
        let seed = pseudo_header_sum(src, dst, IpProtocol::Udp, len);
        let mut ck = internet_checksum(&buf, seed);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
        buf
    }

    /// Parse and verify against the pseudo-header of the packet that carried
    /// this datagram.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, ParseError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: UDP_HEADER_LEN,
                got: data.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if len < UDP_HEADER_LEN || data.len() < len {
            return Err(ParseError::Truncated {
                needed: len,
                got: data.len(),
            });
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            let seed = pseudo_header_sum(src, dst, IpProtocol::Udp, len as u16);
            if !checksum_valid(&data[..len], seed) {
                return Err(ParseError::BadChecksum { what: "udp" });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[UDP_HEADER_LEN..len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_with_checksum() {
        let d = UdpDatagram::new(5353, 53, Bytes::from_static(b"dns query bytes"));
        let src = ip("10.0.0.1");
        let dst = ip("171.64.7.77");
        let wire = d.emit(src, dst);
        assert_eq!(wire.len(), d.wire_len());
        assert_eq!(UdpDatagram::parse(&wire, src, dst).unwrap(), d);
    }

    #[test]
    fn checksum_binds_addresses() {
        // A datagram re-addressed without recomputing the checksum must fail:
        // this is what breaks naive NAT-style rewriting, and why the paper's
        // encapsulation approach (new outer header, untouched inner packet)
        // is the right tool.
        let d = UdpDatagram::new(1000, 2000, Bytes::from_static(b"payload"));
        let wire = d.emit(ip("10.0.0.1"), ip("10.0.0.2"));
        assert!(UdpDatagram::parse(&wire, ip("10.0.0.1"), ip("10.0.0.3")).is_err());
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abcdef"));
        let src = ip("1.2.3.4");
        let dst = ip("5.6.7.8");
        let mut wire = d.emit(src, dst);
        wire[9] ^= 0x01;
        assert_eq!(
            UdpDatagram::parse(&wire, src, dst),
            Err(ParseError::BadChecksum { what: "udp" })
        );
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let d = UdpDatagram::new(7, 8, Bytes::from_static(b"nocksum"));
        let src = ip("1.1.1.1");
        let dst = ip("2.2.2.2");
        let mut wire = d.emit(src, dst);
        wire[6] = 0;
        wire[7] = 0;
        assert_eq!(UdpDatagram::parse(&wire, src, dst).unwrap(), d);
    }

    #[test]
    fn truncation_detected() {
        let d = UdpDatagram::new(7, 8, Bytes::from_static(b"0123456789"));
        let src = ip("1.1.1.1");
        let dst = ip("2.2.2.2");
        let wire = d.emit(src, dst);
        assert!(UdpDatagram::parse(&wire[..6], src, dst).is_err());
        assert!(UdpDatagram::parse(&wire[..12], src, dst).is_err());
    }

    #[test]
    fn empty_payload_ok() {
        let d = UdpDatagram::new(434, 434, Bytes::new());
        let src = ip("1.1.1.1");
        let dst = ip("2.2.2.2");
        assert_eq!(UdpDatagram::parse(&d.emit(src, dst), src, dst).unwrap(), d);
    }
}
