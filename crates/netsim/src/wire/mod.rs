//! Wire formats.
//!
//! Everything that travels over a simulated link is serialized to the bytes
//! that would appear on a real wire and re-parsed at the receiver. This keeps
//! the simulator honest: header sizes, checksums, fragmentation behaviour and
//! the effect of corruption faults are all exactly as on a real network,
//! which is what the paper's size/overhead arguments (§3.3) are about.

pub mod arp;
pub mod encap;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod pcap;
pub mod srcroute;
pub mod tcpseg;
pub mod udp;

use std::fmt;

/// Error returned when a byte buffer cannot be parsed as the expected format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Buffer shorter than the minimum header.
    /// Buffer shorter than the format requires.
    Truncated {
        /// Bytes the format requires.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A checksum did not verify.
    /// A checksum failed to verify.
    BadChecksum {
        /// Which checksum failed (e.g. "ipv4 header", "tcp").
        what: &'static str,
    },
    /// A field held a value the parser does not understand.
    /// A field held a value the parser rejects.
    BadField {
        /// Which field was rejected.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { needed, got } => {
                write!(f, "truncated: needed {needed} bytes, got {got}")
            }
            ParseError::BadChecksum { what } => write!(f, "bad {what} checksum"),
            ParseError::BadField { what, value } => {
                write!(f, "bad {what} field value {value}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// RFC 1071 Internet checksum over `data`, with an optional seed already in
/// one's-complement-sum form (used for pseudo-header checksums).
pub fn internet_checksum(data: &[u8], seed: u32) -> u16 {
    !ones_complement_sum(data, seed)
}

/// One's-complement 16-bit sum of `data` folded to 16 bits, starting from
/// `seed`. Odd trailing byte is padded with zero as per RFC 1071.
pub fn ones_complement_sum(data: &[u8], seed: u32) -> u16 {
    let mut sum: u32 = seed;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// Verify an RFC 1071 checksum: summing a buffer that contains its own
/// correct checksum yields 0xffff.
pub fn checksum_valid(data: &[u8], seed: u32) -> bool {
    ones_complement_sum(data, seed) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7
        // have one's-complement sum 0xddf2, so checksum is !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data, 0), 0xddf2);
        assert_eq!(internet_checksum(&data, 0), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(
            ones_complement_sum(&[0xab], 0),
            ones_complement_sum(&[0xab, 0x00], 0)
        );
    }

    #[test]
    fn buffer_containing_checksum_verifies() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0xbe, 0xef, 0x40, 0x00, 0x40, 0x11];
        let ck = internet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(checksum_valid(&data, 0));
        data[0] ^= 0x01;
        assert!(!checksum_valid(&data, 0));
    }

    #[test]
    fn empty_buffer_checksum() {
        assert_eq!(internet_checksum(&[], 0), 0xffff);
        assert_eq!(ones_complement_sum(&[], 0), 0);
    }
}
