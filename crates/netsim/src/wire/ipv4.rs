//! IPv4: addresses, CIDR prefixes, the packet header (RFC 791) with checksum,
//! and fragmentation/reassembly.
//!
//! Fragmentation matters to the paper directly: §3.3 observes that the 20
//! bytes an encapsulating header adds can push a packet over the path MTU,
//! *doubling* the packet count. Experiment E6 reproduces that effect with
//! this module.

use std::fmt;
use std::str::FromStr;

use bytes::Bytes;

use super::{checksum_valid, internet_checksum, ParseError};
use crate::time::SimTime;

/// An IPv4 address. Stored as the host-order `u32` so prefix arithmetic is a
/// shift; rendered in dotted-quad form (by `Debug` too, for readable logs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(pub u32);

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Ipv4Addr {
    /// The unspecified address, 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);
    /// The limited broadcast address, 255.255.255.255.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr(0xffff_ffff);

    /// From dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Big-endian octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// From big-endian octets.
    pub fn from_octets(o: [u8; 4]) -> Ipv4Addr {
        Ipv4Addr(u32::from_be_bytes(o))
    }

    /// Is this 0.0.0.0?
    pub fn is_unspecified(self) -> bool {
        self.0 == 0
    }

    /// Is this the broadcast address?
    pub fn is_broadcast(self) -> bool {
        self.0 == 0xffff_ffff
    }

    /// True for class-D (multicast) addresses, 224.0.0.0/4.
    pub fn is_multicast(self) -> bool {
        self.0 >> 28 == 0b1110
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            let part = parts.next().ok_or(ParseError::BadField {
                what: "ipv4 dotted quad",
                value: 0,
            })?;
            *o = part.parse().map_err(|_| ParseError::BadField {
                what: "ipv4 octet",
                value: 0,
            })?;
        }
        if parts.next().is_some() {
            return Err(ParseError::BadField {
                what: "ipv4 dotted quad",
                value: 5,
            });
        }
        Ok(Ipv4Addr::from_octets(octets))
    }
}

/// An IPv4 prefix (address + mask length), e.g. `171.64.0.0/16`.
///
/// Used for routing tables, filter rules, and the paper's §7.1.2 user rules
/// ("specified similarly to the way routing table entries are currently
/// specified, as an address and a mask value").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Cidr {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Create a prefix; `prefix_len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Ipv4Cidr {
        let prefix_len = prefix_len.min(32);
        Ipv4Cidr {
            addr: Ipv4Addr(addr.0 & Self::mask_bits(prefix_len)),
            prefix_len,
        }
    }

    /// The /32 prefix containing exactly `addr`.
    pub fn host(addr: Ipv4Addr) -> Ipv4Cidr {
        Ipv4Cidr::new(addr, 32)
    }

    /// The default route, 0.0.0.0/0.
    pub fn default_route() -> Ipv4Cidr {
        Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// The network (masked) address.
    pub fn network(self) -> Ipv4Addr {
        self.addr
    }

    /// The mask length.
    pub fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// Does this prefix contain `addr`?
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        (addr.0 & Self::mask_bits(self.prefix_len)) == self.addr.0
    }

    /// The `n`-th host address inside this prefix (n=0 is the network addr).
    pub fn nth(self, n: u32) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | n)
    }

    /// The subnet broadcast address of this prefix.
    pub fn broadcast(self) -> Ipv4Addr {
        Ipv4Addr(self.addr.0 | !Self::mask_bits(self.prefix_len))
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = ParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or(ParseError::BadField {
            what: "cidr",
            value: 0,
        })?;
        let addr: Ipv4Addr = a.parse()?;
        let len: u8 = l.parse().map_err(|_| ParseError::BadField {
            what: "cidr prefix length",
            value: 0,
        })?;
        if len > 32 {
            return Err(ParseError::BadField {
                what: "cidr prefix length",
                value: u64::from(len),
            });
        }
        Ok(Ipv4Cidr::new(addr, len))
    }
}

/// IP protocol numbers used in the simulation (IANA assigned values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (protocol 1).
    Icmp,
    /// IP-in-IP encapsulation (RFC 2003 / the draft the paper cites as
    /// \[Per96c\]).
    IpInIp,
    /// TCP (protocol 6).
    Tcp,
    /// UDP (protocol 17).
    Udp,
    /// Generic Routing Encapsulation (RFC 1701/1702).
    Gre,
    /// Minimal Encapsulation (the draft the paper cites as \[Per95\]).
    MinimalEncap,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::IpInIp => 4,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Gre => 47,
            IpProtocol::MinimalEncap => 55,
            IpProtocol::Other(n) => n,
        }
    }

    /// From the IANA protocol number.
    pub fn from_number(n: u8) -> IpProtocol {
        match n {
            1 => IpProtocol::Icmp,
            4 => IpProtocol::IpInIp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            47 => IpProtocol::Gre,
            55 => IpProtocol::MinimalEncap,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "ICMP"),
            IpProtocol::IpInIp => write!(f, "IPIP"),
            IpProtocol::Tcp => write!(f, "TCP"),
            IpProtocol::Udp => write!(f, "UDP"),
            IpProtocol::Gre => write!(f, "GRE"),
            IpProtocol::MinimalEncap => write!(f, "MINENC"),
            IpProtocol::Other(n) => write!(f, "IPPROTO({n})"),
        }
    }
}

/// Size of the fixed IPv4 header (without options).
pub const IPV4_HEADER_LEN: usize = 20;

/// Maximum size of the IPv4 options area (IHL is 4 bits).
pub const IPV4_MAX_OPTIONS: usize = 40;

/// Default initial TTL, matching common practice.
pub const DEFAULT_TTL: u8 = 64;

/// A parsed IPv4 packet.
///
/// `total_len` and the header checksum are computed on emission, not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Type-of-service byte.
    pub tos: u8,
    /// IP identification (fragment reassembly key).
    pub ident: u16,
    /// DF flag: refuse fragmentation.
    pub dont_fragment: bool,
    /// MF flag: more fragments follow.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units, as on the wire.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// The IP protocol of the payload.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP options, stored exactly as they appear in the header (already
    /// padded to a 4-byte boundary; empty for the overwhelmingly common
    /// optionless case). See [`crate::wire::srcroute`] for the one option
    /// the paper discusses — and dismisses (§4) — loose source routing.
    pub options: Bytes,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Convenience constructor with default TOS/TTL and no fragmentation.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Bytes) -> Ipv4Packet {
        Ipv4Packet {
            tos: 0,
            ident: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset: 0,
            ttl: DEFAULT_TTL,
            protocol,
            src,
            dst,
            options: Bytes::new(),
            payload,
        }
    }

    /// Install IP options, padding with end-of-option-list octets to the
    /// 4-byte boundary the wire requires. Panics if over 40 bytes.
    pub fn set_options(&mut self, opts: &[u8]) {
        assert!(opts.len() <= IPV4_MAX_OPTIONS, "options too long");
        let padded_len = opts.len().div_ceil(4) * 4;
        let mut b = Vec::with_capacity(padded_len);
        b.extend_from_slice(opts);
        b.resize(padded_len, 0); // EOL padding
        self.options = Bytes::from(b);
    }

    /// Header length including options.
    pub fn header_len(&self) -> usize {
        IPV4_HEADER_LEN + self.options.len()
    }

    /// Total on-wire length of this packet in bytes.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// True if this packet is a fragment (either kind).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// Serialize to wire bytes, computing total length and header checksum.
    ///
    /// Returns `Bytes` so the send path can slice and share the buffer
    /// without further copies; use [`Ipv4Packet::emit_into`] to serialize
    /// into an existing buffer (e.g. right after an Ethernet header).
    pub fn emit(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(&mut buf);
        Bytes::from(buf)
    }

    /// Serialize to wire bytes, appending to `buf` (which may already hold
    /// link-layer framing).
    pub fn emit_into(&self, buf: &mut Vec<u8>) {
        let total_len = self.wire_len();
        assert!(total_len <= 65_535, "IPv4 packet too large: {total_len}");
        debug_assert_eq!(self.options.len() % 4, 0, "options must be padded");
        let ihl = self.header_len() / 4;
        let base = buf.len();
        buf.reserve(total_len);
        buf.push(0x40 | ihl as u8); // version 4 + IHL
        buf.push(self.tos);
        buf.extend_from_slice(&(total_len as u16).to_be_bytes());
        buf.extend_from_slice(&self.ident.to_be_bytes());
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_fragment {
            flags_frag |= 0x4000;
        }
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        buf.extend_from_slice(&flags_frag.to_be_bytes());
        buf.push(self.ttl);
        buf.push(self.protocol.number());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
        buf.extend_from_slice(&self.options);
        let header_len = self.header_len();
        let ck = internet_checksum(&buf[base..base + header_len], 0);
        buf[base + 10..base + 12].copy_from_slice(&ck.to_be_bytes());
        buf.extend_from_slice(&self.payload);
    }

    /// Parse wire bytes, verifying version, length and header checksum.
    pub fn parse(data: &[u8]) -> Result<Ipv4Packet, ParseError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(ParseError::Truncated {
                needed: IPV4_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadField {
                what: "ip version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(ParseError::BadField {
                what: "ihl",
                value: (ihl / 4) as u64,
            });
        }
        if !checksum_valid(&data[..ihl], 0) {
            return Err(ParseError::BadChecksum {
                what: "ipv4 header",
            });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < ihl || data.len() < total_len {
            return Err(ParseError::Truncated {
                needed: total_len,
                got: data.len(),
            });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        Ok(Ipv4Packet {
            tos: data[1],
            ident: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: flags_frag & 0x4000 != 0,
            more_fragments: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl: data[8],
            protocol: IpProtocol::from_number(data[9]),
            src: Ipv4Addr::from_octets([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr::from_octets([data[16], data[17], data[18], data[19]]),
            options: Bytes::copy_from_slice(&data[IPV4_HEADER_LEN..ihl]),
            payload: Bytes::copy_from_slice(&data[ihl..total_len]),
        })
    }

    /// Fragment this packet so no fragment exceeds `mtu` bytes on the wire.
    ///
    /// Returns the original packet unchanged if it already fits. Returns
    /// `None` if the packet needs fragmenting but has the DF bit set (the
    /// caller should emit ICMP "fragmentation needed").
    pub fn fragment(&self, mtu: usize) -> Option<Vec<Ipv4Packet>> {
        if self.wire_len() <= mtu {
            return Some(vec![self.clone()]);
        }
        if self.dont_fragment {
            return None;
        }
        // Payload bytes per fragment must be a multiple of 8 (except last).
        // (Simplification vs RFC 791: options are copied into every
        // fragment rather than filtered by their copy bit; LSR, the only
        // option we build, has the copy bit set anyway.)
        let per_frag = ((mtu - self.header_len()) / 8) * 8;
        if per_frag == 0 {
            return None;
        }
        let mut frags = Vec::new();
        let mut off = 0usize;
        while off < self.payload.len() {
            let end = (off + per_frag).min(self.payload.len());
            let last = end == self.payload.len();
            frags.push(Ipv4Packet {
                more_fragments: !last || self.more_fragments,
                frag_offset: self.frag_offset + (off / 8) as u16,
                payload: self.payload.slice(off..end),
                ..self.clone()
            });
            off = end;
        }
        Some(frags)
    }
}

/// Key identifying one datagram's fragments (RFC 791 reassembly tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReasmKey {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    ident: u16,
    protocol: u8,
}

#[derive(Debug)]
struct ReasmBuf {
    /// (offset-in-bytes, payload) of every fragment seen so far.
    pieces: Vec<(usize, Bytes)>,
    /// Total payload length, known once the MF=0 fragment arrives.
    total_len: Option<usize>,
    first_seen: SimTime,
    /// Template header fields taken from the first fragment.
    template: Ipv4Packet,
}

/// Reassembles fragmented IPv4 datagrams.
///
/// Buffers are dropped if not completed within `timeout` (RFC 791 suggests
/// 15 seconds; we default to 30 as Linux does).
#[derive(Debug)]
pub struct Reassembler {
    bufs: std::collections::HashMap<ReasmKey, ReasmBuf>,
    timeout: crate::time::SimDuration,
}

impl Default for Reassembler {
    fn default() -> Self {
        Reassembler::new(crate::time::SimDuration::from_secs(30))
    }
}

impl Reassembler {
    /// A reassembler dropping incomplete datagrams after `timeout`.
    pub fn new(timeout: crate::time::SimDuration) -> Reassembler {
        Reassembler {
            bufs: std::collections::HashMap::new(),
            timeout,
        }
    }

    /// Number of datagrams currently being reassembled.
    pub fn pending(&self) -> usize {
        self.bufs.len()
    }

    /// Feed one packet in. Non-fragments pass straight through. Returns the
    /// reassembled datagram when the last missing fragment arrives.
    pub fn push(&mut self, pkt: Ipv4Packet, now: SimTime) -> Option<Ipv4Packet> {
        self.expire(now);
        if !pkt.is_fragment() {
            return Some(pkt);
        }
        let key = ReasmKey {
            src: pkt.src,
            dst: pkt.dst,
            ident: pkt.ident,
            protocol: pkt.protocol.number(),
        };
        let buf = self.bufs.entry(key).or_insert_with(|| ReasmBuf {
            pieces: Vec::new(),
            total_len: None,
            first_seen: now,
            template: pkt.clone(),
        });
        let off = usize::from(pkt.frag_offset) * 8;
        if !pkt.more_fragments {
            buf.total_len = Some(off + pkt.payload.len());
        }
        // Ignore exact duplicates.
        if !buf
            .pieces
            .iter()
            .any(|(o, p)| *o == off && p.len() == pkt.payload.len())
        {
            buf.pieces.push((off, pkt.payload));
        }
        let total = buf.total_len?;
        // Check contiguous coverage of [0, total).
        let mut pieces = buf.pieces.clone();
        pieces.sort_by_key(|(o, _)| *o);
        let mut covered = 0usize;
        for (o, p) in &pieces {
            if *o > covered {
                return None; // hole
            }
            covered = covered.max(o + p.len());
        }
        if covered < total {
            return None;
        }
        // Complete: splice the payload together.
        let buf = self.bufs.remove(&key).unwrap();
        let mut payload = vec![0u8; total];
        for (o, p) in pieces {
            let end = (o + p.len()).min(total);
            payload[o..end].copy_from_slice(&p[..end - o]);
        }
        Some(Ipv4Packet {
            more_fragments: false,
            frag_offset: 0,
            payload: Bytes::from(payload),
            ..buf.template
        })
    }

    /// Drop reassembly buffers older than the timeout.
    pub fn expire(&mut self, now: SimTime) {
        let timeout = self.timeout;
        self.bufs.retain(|_, b| now.since(b.first_seen) <= timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn addr_display_parse_roundtrip() {
        for s in ["0.0.0.0", "171.64.15.1", "255.255.255.255", "10.0.0.7"] {
            assert_eq!(addr(s).to_string(), s);
        }
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn addr_classification() {
        assert!(Ipv4Addr::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Addr::BROADCAST.is_broadcast());
        assert!(addr("224.0.0.1").is_multicast());
        assert!(addr("239.255.255.255").is_multicast());
        assert!(!addr("223.255.255.255").is_multicast());
        assert!(!addr("240.0.0.1").is_multicast());
    }

    #[test]
    fn cidr_contains_and_masks() {
        let net: Ipv4Cidr = "171.64.0.0/16".parse().unwrap();
        assert!(net.contains(addr("171.64.15.1")));
        assert!(!net.contains(addr("171.65.0.1")));
        assert_eq!(net.network(), addr("171.64.0.0"));
        assert_eq!(net.broadcast(), addr("171.64.255.255"));
        assert_eq!(net.nth(258), addr("171.64.1.2"));
        // Non-canonical input is masked down.
        let c = Ipv4Cidr::new(addr("10.1.2.3"), 8);
        assert_eq!(c.network(), addr("10.0.0.0"));
        // /0 contains everything.
        assert!(Ipv4Cidr::default_route().contains(addr("8.8.8.8")));
        // /32 contains only itself.
        let h = Ipv4Cidr::host(addr("10.0.0.1"));
        assert!(h.contains(addr("10.0.0.1")));
        assert!(!h.contains(addr("10.0.0.2")));
    }

    #[test]
    fn cidr_parse_rejects_bad_prefix() {
        assert!("10.0.0.0/33".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(IpProtocol::from_number(n).number(), n);
        }
    }

    fn sample_packet(payload_len: usize) -> Ipv4Packet {
        let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let mut p = Ipv4Packet::new(
            addr("36.186.0.5"),
            addr("171.64.15.9"),
            IpProtocol::Udp,
            Bytes::from(payload),
        );
        p.ident = 0x4242;
        p
    }

    #[test]
    fn emit_parse_roundtrip() {
        let p = sample_packet(100);
        let wire = p.emit();
        assert_eq!(wire.len(), p.wire_len());
        let q = Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parse_rejects_corruption() {
        let p = sample_packet(40);
        let mut wire = p.emit().to_vec();
        wire[8] ^= 0xff; // flip TTL → checksum mismatch
        assert_eq!(
            Ipv4Packet::parse(&wire),
            Err(ParseError::BadChecksum {
                what: "ipv4 header"
            })
        );
    }

    #[test]
    fn parse_rejects_truncation_and_bad_version() {
        assert!(matches!(
            Ipv4Packet::parse(&[0x45; 10]),
            Err(ParseError::Truncated { .. })
        ));
        let p = sample_packet(10);
        let mut wire = p.emit().to_vec();
        wire[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::parse(&wire),
            Err(ParseError::BadField {
                what: "ip version",
                ..
            })
        ));
    }

    #[test]
    fn parse_ignores_trailing_link_padding() {
        // Ethernet pads short frames; the IP total-length field governs.
        let p = sample_packet(8);
        let mut wire = p.emit().to_vec();
        wire.extend_from_slice(&[0u8; 18]);
        let q = Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(q.payload.len(), 8);
    }

    #[test]
    fn no_fragmentation_needed_when_fits() {
        let p = sample_packet(100);
        let frags = p.fragment(1500).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
    }

    #[test]
    fn fragmentation_respects_df() {
        let mut p = sample_packet(3000);
        p.dont_fragment = true;
        assert!(p.fragment(1500).is_none());
    }

    #[test]
    fn fragment_offsets_are_8_byte_aligned_and_sizes_fit() {
        let p = sample_packet(4000);
        let frags = p.fragment(1500).unwrap();
        assert!(frags.len() >= 3);
        for (i, f) in frags.iter().enumerate() {
            assert!(f.wire_len() <= 1500);
            let last = i == frags.len() - 1;
            assert_eq!(f.more_fragments, !last);
            if !last {
                assert_eq!(f.payload.len() % 8, 0);
            }
        }
    }

    #[test]
    fn paper_s3_3_crossing_mtu_doubles_packet_count() {
        // A full-MTU packet (1500 bytes on the wire) fits exactly. Adding a
        // 20-byte encapsulating header pushes it over, doubling the count.
        let inner = sample_packet(1500 - IPV4_HEADER_LEN);
        assert_eq!(inner.fragment(1500).unwrap().len(), 1);
        let outer = Ipv4Packet::new(
            addr("10.0.0.1"),
            addr("10.0.0.2"),
            IpProtocol::IpInIp,
            inner.emit(),
        );
        assert_eq!(outer.fragment(1500).unwrap().len(), 2);
    }

    #[test]
    fn reassembly_in_order_and_out_of_order() {
        let p = sample_packet(5000);
        let frags = p.fragment(1500).unwrap();
        let mut r = Reassembler::default();

        // In order.
        let mut out = None;
        for f in &frags {
            out = r.push(f.clone(), SimTime::ZERO);
        }
        assert_eq!(out.unwrap(), p);
        assert_eq!(r.pending(), 0);

        // Reversed order.
        let mut out = None;
        for f in frags.iter().rev() {
            out = r.push(f.clone(), SimTime::ZERO);
        }
        assert_eq!(out.unwrap(), p);
    }

    #[test]
    fn reassembly_tolerates_duplicates_and_holes() {
        let p = sample_packet(4000);
        let frags = p.fragment(1500).unwrap();
        let mut r = Reassembler::default();
        assert!(r.push(frags[0].clone(), SimTime::ZERO).is_none());
        assert!(r.push(frags[0].clone(), SimTime::ZERO).is_none()); // dup
        assert!(r.push(frags[2].clone(), SimTime::ZERO).is_none()); // hole at 1
        let done = r.push(frags[1].clone(), SimTime::ZERO);
        assert_eq!(done.unwrap(), p);
    }

    #[test]
    fn reassembly_times_out_stale_buffers() {
        let p = sample_packet(4000);
        let frags = p.fragment(1500).unwrap();
        let mut r = Reassembler::new(crate::time::SimDuration::from_secs(30));
        assert!(r.push(frags[0].clone(), SimTime::ZERO).is_none());
        assert_eq!(r.pending(), 1);
        let later = SimTime::ZERO + crate::time::SimDuration::from_secs(31);
        r.expire(later);
        assert_eq!(r.pending(), 0);
        // Remaining fragments alone can no longer complete the datagram.
        for f in &frags[1..] {
            assert!(r.push(f.clone(), later).is_none());
        }
    }

    #[test]
    fn nonfragment_passes_straight_through() {
        let p = sample_packet(64);
        let mut r = Reassembler::default();
        assert_eq!(r.push(p.clone(), SimTime::ZERO), Some(p));
    }
}
