//! The three encapsulation ("tunneling") formats the paper discusses (§2,
//! §3.3):
//!
//! * **IP-in-IP** (\[Per96c\], later RFC 2003): a complete new 20-byte IPv4
//!   header in front of the untouched inner packet.
//! * **Minimal Encapsulation** (\[Per95\], later RFC 2004): compresses the
//!   tunnel overhead to 8 bytes (12 when the original source address must be
//!   preserved) by cannibalizing the inner header.
//! * **GRE** (RFC 1701/1702): a 4-byte generic shim (8 with checksum)
//!   between outer and inner headers.
//!
//! The paper's observation that "this overhead can be minimized by use of
//! Generic Routing Encapsulation or Minimal Encapsulation" (§2) is
//! quantified by experiment E6 using the `overhead()` figures from this
//! module.

use bytes::Bytes;

use super::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet, IPV4_HEADER_LEN};
use super::{checksum_valid, internet_checksum, ParseError};

/// Which encapsulation format a tunnel endpoint uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncapFormat {
    /// IP-in-IP: simplest and most general.
    #[default]
    IpInIp,
    /// Minimal Encapsulation: smallest, but cannot carry fragments.
    Minimal,
    /// GRE with the checksum bit set.
    Gre,
}

impl EncapFormat {
    /// Bytes this format adds to the inner packet on the wire.
    pub fn overhead(self) -> usize {
        match self {
            // New outer IPv4 header.
            EncapFormat::IpInIp => IPV4_HEADER_LEN,
            // Outer header replaces the inner one; only the 12-byte minimal
            // forwarding header (with original source) is extra... minus the
            // inner header we no longer carry. Net: 12 bytes when the source
            // is preserved (the Mobile IP case), 8 otherwise.
            EncapFormat::Minimal => MINENC_LEN_WITH_SRC,
            // Outer IPv4 header plus the 8-byte GRE header (4 base + 4 for
            // checksum+offset, since we set the C bit).
            EncapFormat::Gre => IPV4_HEADER_LEN + GRE_LEN,
        }
    }

    /// The IP protocol number carried in the outer header.
    pub fn protocol(self) -> IpProtocol {
        match self {
            EncapFormat::IpInIp => IpProtocol::IpInIp,
            EncapFormat::Minimal => IpProtocol::MinimalEncap,
            EncapFormat::Gre => IpProtocol::Gre,
        }
    }

    /// The format a tunnel packet with this outer protocol uses, if any.
    pub fn from_protocol(p: IpProtocol) -> Option<EncapFormat> {
        match p {
            IpProtocol::IpInIp => Some(EncapFormat::IpInIp),
            IpProtocol::MinimalEncap => Some(EncapFormat::Minimal),
            IpProtocol::Gre => Some(EncapFormat::Gre),
            _ => None,
        }
    }

    /// Stable machine-readable tag (run reports, trace files).
    pub fn tag(self) -> &'static str {
        match self {
            EncapFormat::IpInIp => "ip-in-ip",
            EncapFormat::Minimal => "minimal",
            EncapFormat::Gre => "gre",
        }
    }

    /// Inverse of [`EncapFormat::tag`].
    pub fn from_tag(s: &str) -> Option<EncapFormat> {
        match s {
            "ip-in-ip" => Some(EncapFormat::IpInIp),
            "minimal" => Some(EncapFormat::Minimal),
            "gre" => Some(EncapFormat::Gre),
            _ => None,
        }
    }
}

/// Minimal forwarding header length with the original-source field present.
pub const MINENC_LEN_WITH_SRC: usize = 12;
/// GRE header length with the C bit set.
pub const GRE_LEN: usize = 8;

/// Wrap `inner` in a tunnel packet from `outer_src` to `outer_dst`.
///
/// `ident` becomes the outer packet's IP identification (needed if the outer
/// packet itself gets fragmented).
///
/// Returns `None` only for [`EncapFormat::Minimal`] on a fragmented inner
/// packet, which RFC 2004 forbids — callers should fall back to IP-in-IP.
pub fn encapsulate(
    format: EncapFormat,
    outer_src: Ipv4Addr,
    outer_dst: Ipv4Addr,
    inner: &Ipv4Packet,
    ident: u16,
) -> Option<Ipv4Packet> {
    match format {
        EncapFormat::IpInIp => {
            let mut outer = Ipv4Packet::new(outer_src, outer_dst, IpProtocol::IpInIp, inner.emit());
            outer.ident = ident;
            outer.ttl = inner.ttl;
            outer.tos = inner.tos;
            Some(outer)
        }
        EncapFormat::Minimal => {
            if inner.is_fragment() {
                return None;
            }
            let mut hdr = Vec::with_capacity(MINENC_LEN_WITH_SRC);
            hdr.push(inner.protocol.number());
            hdr.push(0x80); // S bit: original source address present
            hdr.extend_from_slice(&[0, 0]); // checksum placeholder
            hdr.extend_from_slice(&inner.dst.octets());
            hdr.extend_from_slice(&inner.src.octets());
            let ck = internet_checksum(&hdr, 0);
            hdr[2..4].copy_from_slice(&ck.to_be_bytes());
            let mut payload = hdr;
            payload.extend_from_slice(&inner.payload);
            let mut outer = Ipv4Packet::new(
                outer_src,
                outer_dst,
                IpProtocol::MinimalEncap,
                Bytes::from(payload),
            );
            outer.ident = inner.ident;
            outer.ttl = inner.ttl;
            outer.tos = inner.tos;
            Some(outer)
        }
        EncapFormat::Gre => {
            let mut gre = Vec::with_capacity(GRE_LEN + inner.wire_len());
            gre.extend_from_slice(&0x8000u16.to_be_bytes()); // C=1, ver 0
            gre.extend_from_slice(&0x0800u16.to_be_bytes()); // proto: IPv4
            gre.extend_from_slice(&[0, 0, 0, 0]); // checksum + offset
            gre.extend_from_slice(&inner.emit());
            let ck = internet_checksum(&gre, 0);
            gre[4..6].copy_from_slice(&ck.to_be_bytes());
            let mut outer =
                Ipv4Packet::new(outer_src, outer_dst, IpProtocol::Gre, Bytes::from(gre));
            outer.ident = ident;
            outer.ttl = inner.ttl;
            outer.tos = inner.tos;
            Some(outer)
        }
    }
}

/// Unwrap a tunnel packet, recovering the inner IP packet. Dispatches on the
/// outer protocol field; fails on non-tunnel packets.
pub fn decapsulate(outer: &Ipv4Packet) -> Result<Ipv4Packet, ParseError> {
    match outer.protocol {
        IpProtocol::IpInIp => Ipv4Packet::parse(&outer.payload),
        IpProtocol::MinimalEncap => {
            let p = &outer.payload;
            if p.len() < 4 {
                return Err(ParseError::Truncated {
                    needed: 4,
                    got: p.len(),
                });
            }
            let has_src = p[0x01] & 0x80 != 0;
            let hdr_len = if has_src { MINENC_LEN_WITH_SRC } else { 8 };
            if p.len() < hdr_len {
                return Err(ParseError::Truncated {
                    needed: hdr_len,
                    got: p.len(),
                });
            }
            if !checksum_valid(&p[..hdr_len], 0) {
                return Err(ParseError::BadChecksum {
                    what: "minimal encapsulation",
                });
            }
            let dst = Ipv4Addr::from_octets([p[4], p[5], p[6], p[7]]);
            let src = if has_src {
                Ipv4Addr::from_octets([p[8], p[9], p[10], p[11]])
            } else {
                outer.src
            };
            Ok(Ipv4Packet {
                tos: outer.tos,
                ident: outer.ident,
                dont_fragment: outer.dont_fragment,
                more_fragments: false,
                frag_offset: 0,
                ttl: outer.ttl,
                protocol: IpProtocol::from_number(p[0]),
                src,
                dst,
                options: bytes::Bytes::new(),
                payload: outer.payload.slice(hdr_len..),
            })
        }
        IpProtocol::Gre => {
            let p = &outer.payload;
            if p.len() < 4 {
                return Err(ParseError::Truncated {
                    needed: 4,
                    got: p.len(),
                });
            }
            let flags = u16::from_be_bytes([p[0], p[1]]);
            let proto = u16::from_be_bytes([p[2], p[3]]);
            if proto != 0x0800 {
                return Err(ParseError::BadField {
                    what: "gre protocol type",
                    value: u64::from(proto),
                });
            }
            let has_cksum = flags & 0x8000 != 0;
            let hdr_len = if has_cksum { GRE_LEN } else { 4 };
            if p.len() < hdr_len {
                return Err(ParseError::Truncated {
                    needed: hdr_len,
                    got: p.len(),
                });
            }
            if has_cksum && !checksum_valid(p, 0) {
                return Err(ParseError::BadChecksum { what: "gre" });
            }
            Ipv4Packet::parse(&p[hdr_len..])
        }
        other => Err(ParseError::BadField {
            what: "tunnel protocol",
            value: u64::from(other.number()),
        }),
    }
}

/// True if a packet is a tunnel packet this module can decapsulate.
pub fn is_tunnel(p: &Ipv4Packet) -> bool {
    matches!(
        p.protocol,
        IpProtocol::IpInIp | IpProtocol::MinimalEncap | IpProtocol::Gre
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn inner() -> Ipv4Packet {
        let mut p = Ipv4Packet::new(
            ip("171.64.15.9"), // MH home address
            ip("18.26.0.1"),   // correspondent
            IpProtocol::Tcp,
            Bytes::from_static(b"inner transport payload"),
        );
        p.ident = 99;
        p.ttl = 61;
        p
    }

    #[test]
    fn ipinip_roundtrip_preserves_inner_exactly() {
        let i = inner();
        let outer = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &i,
            7,
        )
        .unwrap();
        assert_eq!(outer.protocol, IpProtocol::IpInIp);
        assert_eq!(
            outer.wire_len(),
            i.wire_len() + EncapFormat::IpInIp.overhead()
        );
        assert_eq!(decapsulate(&outer).unwrap(), i);
    }

    #[test]
    fn minimal_roundtrip_preserves_addresses_and_payload() {
        let i = inner();
        let outer = encapsulate(
            EncapFormat::Minimal,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &i,
            7,
        )
        .unwrap();
        assert_eq!(
            outer.wire_len(),
            i.wire_len() + EncapFormat::Minimal.overhead()
        );
        let d = decapsulate(&outer).unwrap();
        assert_eq!(d.src, i.src);
        assert_eq!(d.dst, i.dst);
        assert_eq!(d.protocol, i.protocol);
        assert_eq!(d.payload, i.payload);
        assert_eq!(d.ttl, i.ttl, "TTL rides in the outer header");
    }

    #[test]
    fn minimal_refuses_fragments() {
        let mut i = inner();
        i.more_fragments = true;
        assert!(encapsulate(EncapFormat::Minimal, ip("1.1.1.1"), ip("2.2.2.2"), &i, 0).is_none());
        i.more_fragments = false;
        i.frag_offset = 8;
        assert!(encapsulate(EncapFormat::Minimal, ip("1.1.1.1"), ip("2.2.2.2"), &i, 0).is_none());
    }

    #[test]
    fn gre_roundtrip() {
        let i = inner();
        let outer = encapsulate(
            EncapFormat::Gre,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &i,
            7,
        )
        .unwrap();
        assert_eq!(outer.wire_len(), i.wire_len() + EncapFormat::Gre.overhead());
        assert_eq!(decapsulate(&outer).unwrap(), i);
    }

    #[test]
    fn overhead_ordering_matches_paper() {
        // §3.3: "Encapsulation typically adds 20 bytes"; GRE/MinEnc minimize.
        assert_eq!(EncapFormat::IpInIp.overhead(), 20);
        assert!(EncapFormat::Minimal.overhead() < EncapFormat::IpInIp.overhead());
        assert!(EncapFormat::Gre.overhead() > EncapFormat::IpInIp.overhead());
    }

    #[test]
    fn decapsulate_rejects_non_tunnels() {
        let i = inner();
        assert!(!is_tunnel(&i));
        assert!(decapsulate(&i).is_err());
    }

    #[test]
    fn corrupted_tunnels_are_rejected() {
        let i = inner();
        for fmt in [EncapFormat::IpInIp, EncapFormat::Minimal, EncapFormat::Gre] {
            let outer = encapsulate(fmt, ip("1.1.1.1"), ip("2.2.2.2"), &i, 0).unwrap();
            let mut bytes = outer.payload.to_vec();
            bytes[2] ^= 0xff;
            let corrupted = Ipv4Packet {
                payload: Bytes::from(bytes),
                ..outer
            };
            assert!(
                decapsulate(&corrupted).is_err(),
                "corruption undetected for {fmt:?}"
            );
        }
    }

    #[test]
    fn nested_encapsulation_unwraps_layer_by_layer() {
        // MH→HA reverse tunnel carrying an already-tunnelled packet is legal.
        let i = inner();
        let mid = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("18.26.0.1"),
            &i,
            1,
        )
        .unwrap();
        let out = encapsulate(
            EncapFormat::IpInIp,
            ip("36.186.0.99"),
            ip("171.64.15.1"),
            &mid,
            2,
        )
        .unwrap();
        let once = decapsulate(&out).unwrap();
        assert_eq!(once, mid);
        assert_eq!(decapsulate(&once).unwrap(), i);
    }
}
