//! ICMP (RFC 792) plus the Mobile Host Redirect message.
//!
//! The paper (§3.2) proposes that "when the home agent forwards a packet to
//! the mobile host, it may also send an ICMP message back to the packet's
//! source, informing it of the mobile host's current temporary care-of
//! address". IANA assigned ICMP type 32 ("Mobile Host Redirect") for exactly
//! this purpose; we use it to carry a `(home address, care-of address,
//! lifetime)` binding.

use bytes::Bytes;

use super::ipv4::Ipv4Addr;
use super::{checksum_valid, internet_checksum, ParseError};

/// Codes for [`IcmpMessage::DestUnreachable`] (RFC 792 + RFC 1812 additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnreachableCode {
    /// Network unreachable.
    Net,
    /// Host unreachable.
    Host,
    /// Protocol unavailable at the destination.
    Protocol,
    /// Port has no listener.
    Port,
    /// Fragmentation needed but DF set. Carries the next-hop MTU (RFC 1191).
    /// DF set but the next hop needs fragmenting; carries its MTU (RFC 1191).
    FragmentationNeeded {
        /// The next-hop MTU the sender should honour.
        mtu: u16,
    },
    /// Communication administratively prohibited — what a filtering boundary
    /// router would send if it reported its drops (most don't; the simulator
    /// can be configured either way).
    AdminProhibited,
}

impl UnreachableCode {
    fn number(self) -> u8 {
        match self {
            UnreachableCode::Net => 0,
            UnreachableCode::Host => 1,
            UnreachableCode::Protocol => 2,
            UnreachableCode::Port => 3,
            UnreachableCode::FragmentationNeeded { .. } => 4,
            UnreachableCode::AdminProhibited => 13,
        }
    }
}

/// A parsed ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Ping request (type 8).
    EchoRequest {
        /// Echo identifier (groups a ping session).
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Ping reply (type 0).
    EchoReply {
        /// Echo identifier (groups a ping session).
        ident: u16,
        /// Echo sequence number.
        seq: u16,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Destination unreachable; `original` is the failed datagram's IP header
    /// plus at least 8 payload bytes, as RFC 792 requires.
    DestUnreachable {
        /// Why delivery failed.
        code: UnreachableCode,
        /// The failed datagram's header plus 8 payload bytes (RFC 792).
        original: Bytes,
    },
    /// TTL expired in transit.
    /// TTL expired in transit (type 11); quotes the offending header.
    TimeExceeded {
        /// The expired datagram's header plus 8 payload bytes.
        original: Bytes,
    },
    /// Mobile Host Redirect (type 32): tells the receiver that packets for
    /// `home` may be tunnelled directly to `care_of` for the next
    /// `lifetime_secs` seconds. Sent by home agents to correspondent hosts.
    MobileHostRedirect {
        /// The mobile's home address the binding concerns.
        home: Ipv4Addr,
        /// Where to tunnel directly.
        care_of: Ipv4Addr,
        /// Seconds the binding may be used.
        lifetime_secs: u16,
    },
}

impl IcmpMessage {
    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            }
            | IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => {
                let ty = if matches!(self, IcmpMessage::EchoRequest { .. }) {
                    8
                } else {
                    0
                };
                buf.push(ty);
                buf.push(0);
                buf.extend_from_slice(&[0, 0]);
                buf.extend_from_slice(&ident.to_be_bytes());
                buf.extend_from_slice(&seq.to_be_bytes());
                buf.extend_from_slice(payload);
            }
            IcmpMessage::DestUnreachable { code, original } => {
                buf.push(3);
                buf.push(code.number());
                buf.extend_from_slice(&[0, 0]);
                let rest = match code {
                    UnreachableCode::FragmentationNeeded { mtu } => {
                        let mut r = [0u8; 4];
                        r[2..4].copy_from_slice(&mtu.to_be_bytes());
                        r
                    }
                    _ => [0u8; 4],
                };
                buf.extend_from_slice(&rest);
                buf.extend_from_slice(original);
            }
            IcmpMessage::TimeExceeded { original } => {
                buf.push(11);
                buf.push(0);
                buf.extend_from_slice(&[0, 0]);
                buf.extend_from_slice(&[0u8; 4]);
                buf.extend_from_slice(original);
            }
            IcmpMessage::MobileHostRedirect {
                home,
                care_of,
                lifetime_secs,
            } => {
                buf.push(32);
                buf.push(0);
                buf.extend_from_slice(&[0, 0]);
                buf.extend_from_slice(&lifetime_secs.to_be_bytes());
                buf.extend_from_slice(&[0, 0]);
                buf.extend_from_slice(&home.octets());
                buf.extend_from_slice(&care_of.octets());
            }
        }
        let ck = internet_checksum(&buf, 0);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf
    }

    /// Parse and verify the ICMP checksum.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage, ParseError> {
        if data.len() < 8 {
            return Err(ParseError::Truncated {
                needed: 8,
                got: data.len(),
            });
        }
        if !checksum_valid(data, 0) {
            return Err(ParseError::BadChecksum { what: "icmp" });
        }
        let ty = data[0];
        let code = data[1];
        match ty {
            0 | 8 => {
                let ident = u16::from_be_bytes([data[4], data[5]]);
                let seq = u16::from_be_bytes([data[6], data[7]]);
                let payload = Bytes::copy_from_slice(&data[8..]);
                Ok(if ty == 8 {
                    IcmpMessage::EchoRequest {
                        ident,
                        seq,
                        payload,
                    }
                } else {
                    IcmpMessage::EchoReply {
                        ident,
                        seq,
                        payload,
                    }
                })
            }
            3 => {
                let code = match code {
                    0 => UnreachableCode::Net,
                    1 => UnreachableCode::Host,
                    2 => UnreachableCode::Protocol,
                    3 => UnreachableCode::Port,
                    4 => UnreachableCode::FragmentationNeeded {
                        mtu: u16::from_be_bytes([data[6], data[7]]),
                    },
                    13 => UnreachableCode::AdminProhibited,
                    other => {
                        return Err(ParseError::BadField {
                            what: "icmp unreachable code",
                            value: u64::from(other),
                        })
                    }
                };
                Ok(IcmpMessage::DestUnreachable {
                    code,
                    original: Bytes::copy_from_slice(&data[8..]),
                })
            }
            11 => Ok(IcmpMessage::TimeExceeded {
                original: Bytes::copy_from_slice(&data[8..]),
            }),
            32 => {
                if data.len() < 16 {
                    return Err(ParseError::Truncated {
                        needed: 16,
                        got: data.len(),
                    });
                }
                Ok(IcmpMessage::MobileHostRedirect {
                    lifetime_secs: u16::from_be_bytes([data[4], data[5]]),
                    home: Ipv4Addr::from_octets([data[8], data[9], data[10], data[11]]),
                    care_of: Ipv4Addr::from_octets([data[12], data[13], data[14], data[15]]),
                })
            }
            other => Err(ParseError::BadField {
                what: "icmp type",
                value: u64::from(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn echo_roundtrip() {
        let m = IcmpMessage::EchoRequest {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"ping payload"),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
        let r = IcmpMessage::EchoReply {
            ident: 0x1234,
            seq: 7,
            payload: Bytes::from_static(b"ping payload"),
        };
        assert_eq!(IcmpMessage::parse(&r.emit()).unwrap(), r);
    }

    #[test]
    fn unreachable_roundtrip_all_codes() {
        for code in [
            UnreachableCode::Net,
            UnreachableCode::Host,
            UnreachableCode::Protocol,
            UnreachableCode::Port,
            UnreachableCode::FragmentationNeeded { mtu: 1500 },
            UnreachableCode::AdminProhibited,
        ] {
            let m = IcmpMessage::DestUnreachable {
                code,
                original: Bytes::from_static(&[0x45; 28]),
            };
            assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
        }
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let m = IcmpMessage::TimeExceeded {
            original: Bytes::from_static(&[0x45; 28]),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn mobile_host_redirect_roundtrip() {
        let m = IcmpMessage::MobileHostRedirect {
            home: ip("171.64.15.9"),
            care_of: ip("36.186.0.99"),
            lifetime_secs: 300,
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn corruption_is_detected() {
        let m = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::from_static(b"x"),
        };
        let mut wire = m.emit();
        wire[5] ^= 0x80;
        assert_eq!(
            IcmpMessage::parse(&wire),
            Err(ParseError::BadChecksum { what: "icmp" })
        );
    }

    #[test]
    fn unknown_type_rejected() {
        let mut wire = vec![99u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = internet_checksum(&wire, 0);
        wire[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&wire),
            Err(ParseError::BadField {
                what: "icmp type",
                ..
            })
        ));
    }
}
