//! Minimal libpcap file writer (the classic 2.4 format, LINKTYPE_ETHERNET),
//! so simulated traffic can be inspected in Wireshark/tcpdump — the same
//! debugging affordance the smoltcp examples provide.

use std::io::{self, Write};

use crate::time::SimTime;

/// Writes Ethernet frames into a pcap 2.4 stream.
pub struct PcapWriter<W: Write> {
    out: W,
    frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the pcap global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic (µs timestamps)
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&1u32.to_le_bytes())?; // LINKTYPE_ETHERNET
        Ok(PcapWriter { out, frames: 0 })
    }

    /// Append one frame observed at simulated time `at`.
    pub fn write_frame(&mut self, at: SimTime, frame: &[u8]) -> io::Result<()> {
        let us = at.as_micros();
        self.out
            .write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
        self.out
            .write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn header_and_records_have_correct_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let t = SimTime::ZERO + SimDuration::from_micros(1_500_042);
        w.write_frame(t, &[0xaa; 60]).unwrap();
        w.write_frame(t + SimDuration::from_millis(1), &[0xbb; 14])
            .unwrap();
        assert_eq!(w.frames_written(), 2);
        let buf = w.finish().unwrap();

        // Global header is 24 bytes.
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &1u32.to_le_bytes());

        // First record header at offset 24.
        let sec = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let usec = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        let incl = u32::from_le_bytes(buf[32..36].try_into().unwrap());
        assert_eq!((sec, usec, incl), (1, 500_042, 60));
        assert_eq!(buf.len(), 24 + (16 + 60) + (16 + 14));
    }
}
