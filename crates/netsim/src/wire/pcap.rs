//! Minimal libpcap file writer (the classic 2.4 format, LINKTYPE_ETHERNET),
//! so simulated traffic can be inspected in Wireshark/tcpdump — the same
//! debugging affordance the smoltcp examples provide.

use std::io::{self, Write};

use crate::time::SimTime;

/// Writes Ethernet frames into a pcap 2.4 stream.
pub struct PcapWriter<W: Write> {
    out: W,
    frames: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the pcap global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&0xa1b2_c3d4u32.to_le_bytes())?; // magic (µs timestamps)
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&1u32.to_le_bytes())?; // LINKTYPE_ETHERNET
        Ok(PcapWriter { out, frames: 0 })
    }

    /// Append one frame observed at simulated time `at`.
    pub fn write_frame(&mut self, at: SimTime, frame: &[u8]) -> io::Result<()> {
        let us = at.as_micros();
        self.out
            .write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
        self.out
            .write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.frames += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes raw IPv4 packets into a pcapng stream (LINKTYPE_RAW), one
/// enhanced packet block per packet, each optionally carrying a comment —
/// which is how [`crate::lifecycle::Lifecycle::write_pcapng`] annotates
/// every capture record with its causal ids and drop reason.
pub struct PcapNgWriter<W: Write> {
    out: W,
    packets: u64,
}

/// pcapng block types and option codes used below.
const SHB_TYPE: u32 = 0x0A0D_0D0A;
const IDB_TYPE: u32 = 0x0000_0001;
const EPB_TYPE: u32 = 0x0000_0006;
const LINKTYPE_RAW: u16 = 101;
const OPT_COMMENT: u16 = 1;
const OPT_END: u16 = 0;

impl<W: Write> PcapNgWriter<W> {
    /// Create a writer and emit the section header and a single raw-IP
    /// interface description.
    pub fn new(mut out: W) -> io::Result<PcapNgWriter<W>> {
        // Section Header Block: magic, version 1.0, unknown section length.
        let mut shb = Vec::new();
        shb.extend_from_slice(&0x1A2B_3C4Du32.to_le_bytes());
        shb.extend_from_slice(&1u16.to_le_bytes());
        shb.extend_from_slice(&0u16.to_le_bytes());
        shb.extend_from_slice(&u64::MAX.to_le_bytes());
        write_block(&mut out, SHB_TYPE, &shb)?;
        // Interface Description Block: LINKTYPE_RAW, no snap limit. The
        // default if_tsresol (10^-6) matches SimTime's microseconds.
        let mut idb = Vec::new();
        idb.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        idb.extend_from_slice(&0u16.to_le_bytes()); // reserved
        idb.extend_from_slice(&0u32.to_le_bytes()); // snaplen: unlimited
        write_block(&mut out, IDB_TYPE, &idb)?;
        Ok(PcapNgWriter { out, packets: 0 })
    }

    /// Append one packet observed at `ts_us` microseconds, with an optional
    /// per-packet comment.
    pub fn write_packet(
        &mut self,
        ts_us: u64,
        data: &[u8],
        comment: Option<&str>,
    ) -> io::Result<()> {
        let mut body = Vec::with_capacity(20 + data.len() + 16);
        body.extend_from_slice(&0u32.to_le_bytes()); // interface 0
        body.extend_from_slice(&((ts_us >> 32) as u32).to_le_bytes());
        body.extend_from_slice(&(ts_us as u32).to_le_bytes());
        body.extend_from_slice(&(data.len() as u32).to_le_bytes()); // captured
        body.extend_from_slice(&(data.len() as u32).to_le_bytes()); // original
        body.extend_from_slice(data);
        pad4(&mut body);
        if let Some(c) = comment {
            body.extend_from_slice(&OPT_COMMENT.to_le_bytes());
            body.extend_from_slice(&(c.len() as u16).to_le_bytes());
            body.extend_from_slice(c.as_bytes());
            pad4(&mut body);
            body.extend_from_slice(&OPT_END.to_le_bytes());
            body.extend_from_slice(&0u16.to_le_bytes());
        }
        write_block(&mut self.out, EPB_TYPE, &body)?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packet blocks written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Frame a pcapng block: type, total length, body, total length again
/// (blocks are length-delimited at both ends so readers can walk backward).
fn write_block<W: Write>(out: &mut W, block_type: u32, body: &[u8]) -> io::Result<()> {
    debug_assert_eq!(body.len() % 4, 0, "pcapng block bodies are padded");
    let total = (body.len() + 12) as u32;
    out.write_all(&block_type.to_le_bytes())?;
    out.write_all(&total.to_le_bytes())?;
    out.write_all(body)?;
    out.write_all(&total.to_le_bytes())
}

fn pad4(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(4) {
        buf.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn header_and_records_have_correct_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let t = SimTime::ZERO + SimDuration::from_micros(1_500_042);
        w.write_frame(t, &[0xaa; 60]).unwrap();
        w.write_frame(t + SimDuration::from_millis(1), &[0xbb; 14])
            .unwrap();
        assert_eq!(w.frames_written(), 2);
        let buf = w.finish().unwrap();

        // Global header is 24 bytes.
        assert_eq!(&buf[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(&buf[20..24], &1u32.to_le_bytes());

        // First record header at offset 24.
        let sec = u32::from_le_bytes(buf[24..28].try_into().unwrap());
        let usec = u32::from_le_bytes(buf[28..32].try_into().unwrap());
        let incl = u32::from_le_bytes(buf[32..36].try_into().unwrap());
        assert_eq!((sec, usec, incl), (1, 500_042, 60));
        assert_eq!(buf.len(), 24 + (16 + 60) + (16 + 14));
    }

    #[test]
    fn pcapng_blocks_are_length_delimited_and_padded() {
        let mut w = PcapNgWriter::new(Vec::new()).unwrap();
        w.write_packet(1_500_042, &[0x45; 21], Some("p0 f0"))
            .unwrap();
        assert_eq!(w.packets_written(), 1);
        let buf = w.finish().unwrap();

        // Walk the three blocks (SHB, IDB, EPB) by their length fields and
        // check each trailing length mirrors the leading one.
        let mut off = 0;
        let mut types = Vec::new();
        while off < buf.len() {
            let ty = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap());
            let len = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap()) as usize;
            assert_eq!(len % 4, 0, "block length is 32-bit aligned");
            let trailer =
                u32::from_le_bytes(buf[off + len - 4..off + len].try_into().unwrap()) as usize;
            assert_eq!(trailer, len);
            types.push(ty);
            off += len;
        }
        assert_eq!(off, buf.len());
        assert_eq!(types, vec![SHB_TYPE, IDB_TYPE, EPB_TYPE]);

        // The EPB records a 21-byte packet, timestamp split high/low over
        // the default µs resolution.
        let epb_off = {
            let shb_len = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
            let idb_len =
                u32::from_le_bytes(buf[shb_len + 4..shb_len + 8].try_into().unwrap()) as usize;
            shb_len + idb_len
        };
        let ts_high = u32::from_le_bytes(buf[epb_off + 12..epb_off + 16].try_into().unwrap());
        let ts_low = u32::from_le_bytes(buf[epb_off + 16..epb_off + 20].try_into().unwrap());
        assert_eq!(((ts_high as u64) << 32) | ts_low as u64, 1_500_042);
        let captured = u32::from_le_bytes(buf[epb_off + 20..epb_off + 24].try_into().unwrap());
        assert_eq!(captured, 21);
    }
}
