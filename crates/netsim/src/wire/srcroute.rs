//! Loose source routing (RFC 791 option 131).
//!
//! The paper considers LSR as the alternative to encapsulation and rejects
//! it: "this achieves little that can't be done equally well using an
//! encapsulating header. Current IP routers typically handle packets with
//! options much more slowly than they handle normal unadorned IP packets"
//! (§4). The option is implemented here so that judgment can be *measured*
//! (experiment E17): routers charge a slow-path delay for any packet with
//! options, and the source address stays visible to filters.

use super::ipv4::{Ipv4Addr, Ipv4Packet};

/// Option type for loose source and record route (copy bit set).
pub const OPT_LSRR: u8 = 131;

/// A parsed loose-source-route option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceRoute {
    /// 1-based octet offset of the next address slot (RFC 791: starts at 4).
    pub pointer: u8,
    /// The route's address slots (remaining hops and recorded ones).
    pub hops: Vec<Ipv4Addr>,
}

impl SourceRoute {
    /// Build a route through `hops` (excluding the first destination, which
    /// goes in the packet's destination field).
    pub fn new(hops: &[Ipv4Addr]) -> SourceRoute {
        SourceRoute {
            pointer: 4,
            hops: hops.to_vec(),
        }
    }

    /// The next hop the packet should be redirected to, if any remain.
    pub fn next_hop(&self) -> Option<Ipv4Addr> {
        let ix = (usize::from(self.pointer) - 4) / 4;
        self.hops.get(ix).copied()
    }

    /// The route's final destination — the last slot not yet consumed —
    /// if any legs remain. `None` once the route is exhausted (the
    /// packet's destination field then holds the true destination).
    pub fn final_destination(&self) -> Option<Ipv4Addr> {
        let ix = (usize::from(self.pointer) - 4) / 4;
        self.hops.get(ix..).and_then(|rest| rest.last().copied())
    }

    /// Record `here` (the processing node's address) in the current slot
    /// and advance the pointer — what a source-routing hop does after
    /// rewriting the destination (RFC 791 §3.1).
    pub fn advance(&mut self, here: Ipv4Addr) {
        let ix = (usize::from(self.pointer) - 4) / 4;
        if let Some(slot) = self.hops.get_mut(ix) {
            *slot = here;
            self.pointer += 4;
        }
    }

    /// Serialize as an options area (unpadded; [`Ipv4Packet::set_options`]
    /// pads).
    pub fn emit(&self) -> Vec<u8> {
        let len = 3 + 4 * self.hops.len();
        assert!(len <= 40, "source route too long for the options area");
        let mut b = Vec::with_capacity(len);
        b.push(OPT_LSRR);
        b.push(len as u8);
        b.push(self.pointer);
        for h in &self.hops {
            b.extend_from_slice(&h.octets());
        }
        b
    }

    /// Parse the first LSRR option out of an options area, skipping NOPs
    /// and stopping at end-of-list.
    pub fn parse(options: &[u8]) -> Option<SourceRoute> {
        let mut i = 0;
        while i < options.len() {
            match options[i] {
                0 => return None, // end of option list
                1 => i += 1,      // no-op
                OPT_LSRR => {
                    let len = usize::from(*options.get(i + 1)?);
                    if len < 3 || i + len > options.len() || (len - 3) % 4 != 0 {
                        return None;
                    }
                    let pointer = options[i + 2];
                    let mut hops = Vec::with_capacity((len - 3) / 4);
                    let mut j = i + 3;
                    while j + 4 <= i + len {
                        hops.push(Ipv4Addr::from_octets([
                            options[j],
                            options[j + 1],
                            options[j + 2],
                            options[j + 3],
                        ]));
                        j += 4;
                    }
                    return Some(SourceRoute { pointer, hops });
                }
                _ => {
                    // Unknown option: skip by its length octet.
                    let len = usize::from(*options.get(i + 1)?);
                    if len < 2 {
                        return None;
                    }
                    i += len;
                }
            }
        }
        None
    }
}

/// Attach a loose source route to `pkt`: the packet is addressed to the
/// first waypoint and carries the remaining route (ending at the true
/// destination) in the option.
pub fn apply_route(pkt: &mut Ipv4Packet, waypoints: &[Ipv4Addr], final_dst: Ipv4Addr) {
    assert!(!waypoints.is_empty(), "need at least one waypoint");
    pkt.dst = waypoints[0];
    let mut remaining: Vec<Ipv4Addr> = waypoints[1..].to_vec();
    remaining.push(final_dst);
    pkt.set_options(&SourceRoute::new(&remaining).emit());
}

/// If `pkt` is addressed to `here` and carries an unexhausted source
/// route, rewrite it for the next leg and return `true` (the caller should
/// then forward it). RFC 791 hop processing.
pub fn process_at_hop(pkt: &mut Ipv4Packet, here: Ipv4Addr) -> bool {
    if pkt.dst != here || pkt.options.is_empty() {
        return false;
    }
    let Some(mut route) = SourceRoute::parse(&pkt.options) else {
        return false;
    };
    let Some(next) = route.next_hop() else {
        return false; // exhausted: we are the final destination
    };
    route.advance(here);
    pkt.dst = next;
    pkt.set_options(&route.emit());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ipv4::IpProtocol;
    use bytes::Bytes;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn emit_parse_roundtrip() {
        let r = SourceRoute::new(&[ip("10.0.0.1"), ip("10.0.0.2")]);
        let parsed = SourceRoute::parse(&r.emit()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.next_hop(), Some(ip("10.0.0.1")));
    }

    #[test]
    fn parse_skips_nops_and_stops_at_eol() {
        let mut opts = vec![1u8, 1]; // two NOPs
        opts.extend(SourceRoute::new(&[ip("9.9.9.9")]).emit());
        assert_eq!(
            SourceRoute::parse(&opts).unwrap().next_hop(),
            Some(ip("9.9.9.9"))
        );
        assert!(SourceRoute::parse(&[0, 0, 0, 0]).is_none());
        assert!(SourceRoute::parse(&[131, 2]).is_none(), "bad length");
    }

    #[test]
    fn hop_processing_walks_the_route_and_records_it() {
        let mut pkt = Ipv4Packet::new(
            ip("171.64.15.9"),
            ip("0.0.0.0"),
            IpProtocol::Icmp,
            Bytes::from_static(b"x"),
        );
        apply_route(&mut pkt, &[ip("171.64.15.1")], ip("18.26.0.5"));
        assert_eq!(pkt.dst, ip("171.64.15.1"), "addressed to the waypoint");
        // Wire roundtrip preserves the option.
        let mut pkt = Ipv4Packet::parse(&pkt.emit()).unwrap();

        // At the waypoint: rewrite to the final destination.
        assert!(process_at_hop(&mut pkt, ip("171.64.15.1")));
        assert_eq!(pkt.dst, ip("18.26.0.5"));
        // The waypoint recorded itself in the route (record-route half).
        let rec = SourceRoute::parse(&pkt.options).unwrap();
        assert_eq!(rec.hops, vec![ip("171.64.15.1")]);

        // At the final destination: route exhausted, deliver locally.
        assert!(!process_at_hop(&mut pkt, ip("18.26.0.5")));
        // Not addressed to us: untouched.
        assert!(!process_at_hop(&mut pkt, ip("1.2.3.4")));
    }

    #[test]
    fn option_overhead_is_smaller_than_encapsulation_for_one_waypoint() {
        let mut pkt = Ipv4Packet::new(
            ip("171.64.15.9"),
            ip("0.0.0.0"),
            IpProtocol::Icmp,
            Bytes::from_static(b"payload"),
        );
        let plain = pkt.wire_len();
        apply_route(&mut pkt, &[ip("171.64.15.1")], ip("18.26.0.5"));
        // One remaining hop: 3 + 4 bytes, padded to 8. The §4 trade-off:
        // 8 bytes vs IP-in-IP's 20 — but the source stays visible and every
        // router takes the slow path.
        assert_eq!(pkt.wire_len() - plain, 8);
        let wire = pkt.emit();
        assert_eq!(wire[0], 0x47, "IHL grew to 7 words");
        assert_eq!(Ipv4Packet::parse(&wire).unwrap(), pkt);
    }
}
