//! Scale-ready telemetry primitives: heavy-hitter sketches, seeded
//! reservoirs, and online invariant monitors.
//!
//! The dense observability in [`crate::metrics`] and [`crate::trace`]
//! keeps one counter block per node and one record per packet event —
//! perfect at today's experiment sizes, unaffordable at the 10⁵⁺-node
//! scale the ROADMAP aims for. This module provides the pieces that let
//! observability degrade *deliberately* instead of falling over:
//!
//! * [`SpaceSaving`] — the Metwally/Agrawal/El Abbadi top-k heavy-hitter
//!   sketch: fixed `k` slots regardless of how many distinct keys stream
//!   through, per-key counts exact whenever the distinct-key count never
//!   exceeded `k`, and an explicit per-entry error bound otherwise.
//! * [`Reservoir`] — seeded Algorithm-R reservoir sampling: a uniform,
//!   deterministic sample of an unbounded stream in fixed memory, for
//!   latency/RTT exemplars that survive aggregation.
//! * [`TelemetryConfig`] — the single knob block (flow-sampling rate,
//!   sketch width, collapse threshold, seed) that
//!   [`crate::world::World::apply_telemetry`] fans out to the metrics
//!   registry, the packet trace and the invariant monitor.
//! * [`InvariantMonitor`] — online conservation/reconciliation checks
//!   evaluated incrementally while the world runs, reporting
//!   [`InvariantViolation`]s into the run report instead of panicking.
//!
//! Everything here is deterministic: sketches and reservoirs are seeded,
//! so the same world and seed produce byte-identical sampled reports.

use std::collections::{HashMap, HashSet};

use serde::{Serialize, Value};

use crate::event::{NodeId, SchedulerStats};
use crate::time::SimTime;
use crate::trace::{DropReason, TraceEventKind};
use crate::wire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Packet};

/// SplitMix64 step — the deterministic generator behind [`Reservoir`] and
/// the trace's head-based flow-sampling decision. Public within the crate
/// so both sample the *same* stream given the same seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One stateless hash draw (for per-key sampling decisions).
pub(crate) fn hash64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

// ---------------------------------------------------------------------------
// Space-Saving top-k sketch
// ---------------------------------------------------------------------------

/// One monitored counter in a [`SpaceSaving`] sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEntry<K> {
    /// The key this slot currently tracks.
    pub key: K,
    /// Estimated count: an overestimate by at most [`SketchEntry::error`].
    pub count: u64,
    /// Maximum overestimation: the count the slot held when this key
    /// took it over (0 when the key was inserted into a free slot, so the
    /// count is exact).
    pub error: u64,
}

/// The Space-Saving top-k heavy-hitter sketch (Metwally et al., 2005).
///
/// Holds at most `k` `(key, count, error)` entries. While the number of
/// distinct keys offered stays ≤ `k` every count is exact (`error == 0`
/// everywhere and [`SpaceSaving::is_exact`] holds); past that, the
/// minimum-count entry is evicted and the newcomer inherits its count as
/// error bound — true counts are within `[count - error, count]`.
/// Memory is O(k) regardless of stream length or key cardinality.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K> {
    k: usize,
    entries: Vec<SketchEntry<K>>,
    index: HashMap<K, usize>,
    /// Keys evicted at least once — when 0 the sketch is an exact map.
    evictions: u64,
}

impl<K: Clone + Eq + std::hash::Hash + Ord> SpaceSaving<K> {
    /// An empty sketch with `k` slots (`k` ≥ 1 enforced).
    pub fn new(k: usize) -> SpaceSaving<K> {
        let k = k.max(1);
        SpaceSaving {
            k,
            entries: Vec::with_capacity(k),
            index: HashMap::with_capacity(k),
            evictions: 0,
        }
    }

    /// Slot budget `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Occupied slots (≤ `k`, never more).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No keys offered yet?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every count is exact: no slot was ever recycled, i.e. the
    /// distinct keys seen never exceeded `k`.
    pub fn is_exact(&self) -> bool {
        self.evictions == 0
    }

    /// Offer `weight` occurrences of `key`.
    pub fn offer(&mut self, key: K, weight: u64) {
        if let Some(&slot) = self.index.get(&key) {
            self.entries[slot].count += weight;
            return;
        }
        if self.entries.len() < self.k {
            self.index.insert(key.clone(), self.entries.len());
            self.entries.push(SketchEntry {
                key,
                count: weight,
                error: 0,
            });
            return;
        }
        // Recycle the minimum-count slot (ties broken by key order so
        // merges and repeat runs stay deterministic).
        let slot = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.count.cmp(&b.count).then_with(|| a.key.cmp(&b.key)))
            .map(|(i, _)| i)
            .expect("k >= 1");
        let old = &mut self.entries[slot];
        self.index.remove(&old.key);
        self.index.insert(key.clone(), slot);
        old.error = old.count;
        old.count += weight;
        old.key = key;
        self.evictions += 1;
    }

    /// Estimated count for `key` (`None` when not currently tracked —
    /// which, if [`SpaceSaving::is_exact`], means it was never offered).
    pub fn count(&self, key: &K) -> Option<u64> {
        self.index.get(key).map(|&s| self.entries[s].count)
    }

    /// The tracked entries, heaviest first (ties broken by key order, so
    /// output is deterministic).
    pub fn top(&self) -> Vec<SketchEntry<K>> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        out
    }

    /// Fold another sketch in (sharded/parallel worlds combining
    /// telemetry). Counts and error bounds of shared keys add; disjoint
    /// keys compete for slots as if replayed. Exactness is preserved when
    /// the union of distinct keys still fits in `k` slots.
    pub fn merge(&mut self, other: &SpaceSaving<K>) {
        // Deterministic order: heaviest first so the survivors of a
        // capacity squeeze are the keys that matter.
        for e in other.top() {
            if let Some(&slot) = self.index.get(&e.key) {
                self.entries[slot].count += e.count;
                self.entries[slot].error += e.error;
            } else if self.entries.len() < self.k {
                self.index.insert(e.key.clone(), self.entries.len());
                self.entries.push(e.clone());
            } else {
                let slot = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.count.cmp(&b.count).then_with(|| a.key.cmp(&b.key)))
                    .map(|(i, _)| i)
                    .expect("k >= 1");
                let old = &mut self.entries[slot];
                self.index.remove(&old.key);
                self.index.insert(e.key.clone(), slot);
                old.error = old.count + e.error;
                old.count += e.count;
                old.key = e.key.clone();
                self.evictions += 1;
            }
        }
        self.evictions += other.evictions;
    }
}

// ---------------------------------------------------------------------------
// Seeded reservoir sampling
// ---------------------------------------------------------------------------

/// Seeded Algorithm-R reservoir: a uniform sample of at most `cap` items
/// from an unbounded stream, in O(cap) memory, fully deterministic given
/// the seed and the stream.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    cap: usize,
    seen: u64,
    items: Vec<T>,
    rng: u64,
}

impl<T> Reservoir<T> {
    /// An empty reservoir holding at most `cap` exemplars.
    pub fn new(cap: usize, seed: u64) -> Reservoir<T> {
        Reservoir {
            cap,
            seen: 0,
            items: Vec::with_capacity(cap.min(1024)),
            rng: seed,
        }
    }

    /// Capacity (the memory bound).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained exemplars, in retention order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Offer one item from the stream.
    pub fn offer(&mut self, item: T) {
        self.seen += 1;
        if self.items.len() < self.cap {
            self.items.push(item);
            return;
        }
        if self.cap == 0 {
            return;
        }
        let j = splitmix64(&mut self.rng) % self.seen;
        if (j as usize) < self.cap {
            self.items[j as usize] = item;
        }
    }
}

impl<T: Clone> Reservoir<T> {
    /// Fold another reservoir in. Each of the other's exemplars is kept
    /// with probability proportional to the stream weight it represents —
    /// approximate (a merged reservoir is not byte-identical to one fed
    /// the concatenated stream) but unbiased enough for exemplar duty,
    /// and deterministic given both seeds.
    pub fn merge(&mut self, other: &Reservoir<T>) {
        let other_stream = other.seen;
        for item in &other.items {
            self.seen += 1;
            if self.items.len() < self.cap {
                self.items.push(item.clone());
                continue;
            }
            if self.cap == 0 {
                continue;
            }
            let j = splitmix64(&mut self.rng) % self.seen;
            if (j as usize) < self.cap {
                self.items[j as usize] = item.clone();
            }
        }
        // Account for the part of the other stream its reservoir had
        // already compressed away, so relative weights stay honest.
        self.seen += other_stream.saturating_sub(other.items.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// The telemetry knob block. [`crate::world::World::apply_telemetry`]
/// fans it out; the bench harness builds it from `NETSIM_SAMPLE`,
/// `--sample-flows`, `--topk` and `NETSIM_SKETCH_THRESHOLD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Head-based flow sampling: record 1-in-N flows fully (anomalous
    /// flows are always promoted). `None` records every flow — today's
    /// full-fidelity default.
    pub sample_flows: Option<u64>,
    /// Slots per heavy-hitter sketch when the registry is collapsed.
    pub topk: usize,
    /// Node count above which the metrics registry collapses per-node
    /// counters into sketches + global totals.
    pub sketch_node_threshold: usize,
    /// Exemplar reservoir capacity (RTT samples in sketched mode).
    pub reservoir: usize,
    /// Seed for every sampling decision this config drives.
    pub seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            sample_flows: None,
            topk: 64,
            sketch_node_threshold: 4096,
            reservoir: 64,
            seed: 0x4d49_5034_7834, // "MIP4x4"
        }
    }
}

// ---------------------------------------------------------------------------
// Online invariant monitors
// ---------------------------------------------------------------------------

/// One detected invariant breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which monitor fired (stable machine-readable name).
    pub invariant: &'static str,
    /// Human-readable account with the numbers that disagreed.
    pub detail: String,
    /// Simulated time of detection.
    pub at: SimTime,
}

impl Serialize for InvariantViolation {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("invariant".into(), Value::Str(self.invariant.into())),
            ("detail".into(), Value::Str(self.detail.clone())),
            ("t_us".into(), Value::U64(self.at.0)),
        ])
    }
}

/// Header identity that survives forwarding (mirrors the trace's key):
/// source, final destination (looking through loose source routes),
/// protocol, IP ident.
/// The in-flight identity tracked by the conservation monitor:
/// `(src, final-dst, protocol, ident)`.
pub type LiveKey = (Ipv4Addr, Ipv4Addr, IpProtocol, u16);

fn live_key(pkt: &Ipv4Packet) -> LiveKey {
    let dst = if pkt.options.is_empty() {
        pkt.dst
    } else {
        crate::wire::srcroute::SourceRoute::parse(&pkt.options)
            .and_then(|r| r.final_destination())
            .unwrap_or(pkt.dst)
    };
    (pkt.src, dst, pkt.protocol, pkt.ident)
}

/// Cap on stored violations — the first breaches are the interesting
/// ones; repeats past the cap are counted, not stored.
const VIOLATION_CAP: usize = 32;

/// Online invariant monitor, owned by the [`crate::world::World`] and fed
/// from the same choke points as the trace and metrics. Disabled by
/// default (one branch per event); when enabled it maintains O(1)
/// counters plus a live-packet set bounded by the number of packets
/// currently in flight — *not* by the total ever sent — so it stays
/// affordable at scale.
///
/// Monitors:
/// * **packet-conservation** — every packet put on the wire must end as a
///   delivery, an attributed drop, a transform input, or an attributable
///   wire/detach loss; whatever is still "in flight" at quiescence beyond
///   those allowances is a leak (`sent == delivered + dropped + in-flight`
///   with the loss ledger carried explicitly).
/// * **metrics-reconciliation** — the registry's aggregate totals must
///   equal the monitor's independent event counts (both observe the same
///   choke point, so any disagreement is a counting bug).
/// * **scheduler-reconciliation** — `pushed == dispatched + cancelled +
///   pending` on the event queue, checked incrementally every batch.
///
/// Violations are reported into the run report (see
/// [`crate::world::World::invariant_report`]), never panicked on.
#[derive(Debug, Default)]
pub struct InvariantMonitor {
    enabled: bool,
    // Event counters (every trace event, including re-sends).
    sent_events: u64,
    forwarded_events: u64,
    delivered_events: u64,
    dropped_events: u64,
    transform_events: u64,
    // Conservation ledger.
    originated: u64,
    adopted: u64,
    extra_terminations: u64,
    wire_losses: u64,
    detached_frames: u64,
    parked: u64,
    unparked: u64,
    unclaimed_frames: u64,
    hook_consumed: u64,
    live: HashSet<LiveKey>,
    // Incremental checking.
    checks: u64,
    scheduler_flagged: bool,
    violations: Vec<InvariantViolation>,
    suppressed_violations: u64,
}

impl InvariantMonitor {
    /// A disabled monitor (the default inside every world).
    pub fn new() -> InvariantMonitor {
        InvariantMonitor::default()
    }

    /// Is the monitor recording?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turn monitoring on or off (state is kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Packets currently unaccounted for (in flight or leaked).
    pub fn in_flight(&self) -> usize {
        self.live.len()
    }

    /// Violations recorded by the incremental checks so far.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    fn record_violation(&mut self, invariant: &'static str, detail: String, at: SimTime) {
        if self.violations.len() < VIOLATION_CAP {
            self.violations.push(InvariantViolation {
                invariant,
                detail,
                at,
            });
        } else {
            self.suppressed_violations += 1;
        }
    }

    /// Observe one packet event — called from the
    /// [`crate::world::NetCtx::trace_packet`] choke point.
    #[inline]
    pub fn record_packet(&mut self, kind: TraceEventKind, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        match kind {
            TraceEventKind::Sent => {
                self.sent_events += 1;
                if self.live.insert(live_key(pkt)) {
                    self.originated += 1;
                }
            }
            TraceEventKind::Forwarded => {
                self.forwarded_events += 1;
                if self.live.insert(live_key(pkt)) {
                    // First sighting mid-path (e.g. a transform recorded
                    // only at the metrics layer): adopt rather than lose.
                    self.adopted += 1;
                }
            }
            TraceEventKind::DeliveredLocal => {
                self.delivered_events += 1;
                if !self.live.remove(&live_key(pkt)) {
                    // Broadcast/multicast fan-out and duplicated frames
                    // terminate one identity several times; that is
                    // expected, so it is a gauge, not a violation.
                    self.extra_terminations += 1;
                }
            }
            TraceEventKind::Dropped(_) => {
                self.dropped_events += 1;
                if !self.live.remove(&live_key(pkt)) {
                    self.extra_terminations += 1;
                }
            }
            TraceEventKind::Transformed(_) => {
                // Normally arrives via record_transform; count defensively.
                self.transform_events += 1;
            }
        }
    }

    /// Observe one transform — called from the
    /// [`crate::world::NetCtx::trace_transform`] choke point. The parent
    /// identity (when given) leaves flight; the child enters it.
    #[inline]
    pub fn record_transform(&mut self, parent: Option<&Ipv4Packet>, child: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        self.transform_events += 1;
        if let Some(p) = parent {
            self.live.remove(&live_key(p));
        }
        self.live.insert(live_key(child));
    }

    /// Note a frame that never made it across a segment (fault drop or
    /// FCS-rejected corruption): any packet it carried is attributably
    /// lost, not leaked.
    #[inline]
    pub fn note_wire_loss(&mut self) {
        if self.enabled {
            self.wire_losses += 1;
        }
    }

    /// Note a frame delivered to a node/interface that detached while it
    /// was in flight (mid-handoff losses — real, and attributable).
    #[inline]
    pub fn note_detached_frame(&mut self) {
        if self.enabled {
            self.detached_frames += 1;
        }
    }

    /// Note a packet parked in a link-layer pending queue (awaiting ARP
    /// resolution). Parked packets are legitimately in flight even at
    /// quiescence: a neighbour that never answers strands them forever —
    /// visible as `parked_net`, not a conservation leak.
    #[inline]
    pub fn note_parked(&mut self) {
        if self.enabled {
            self.parked += 1;
        }
    }

    /// Note a parked packet leaving the pending queue (flushed onto the
    /// wire after resolution, or evicted with an attributed drop).
    #[inline]
    pub fn note_unparked(&mut self) {
        if self.enabled {
            self.unparked += 1;
        }
    }

    /// Packets currently parked in pending queues (cumulative parks minus
    /// departures; packets discarded when an interface detaches stay
    /// counted, matching their stranded live entries).
    pub fn parked_net(&self) -> u64 {
        self.parked.saturating_sub(self.unparked)
    }

    /// Note a frame unicast to a MAC not present on its segment: every
    /// NIC ignores it, so the packet it carried dies on the wire. The
    /// classic post-handoff fate of frames sent via a stale ARP entry.
    #[inline]
    pub fn note_unclaimed_frame(&mut self) {
        if self.enabled {
            self.unclaimed_frames += 1;
        }
    }

    /// Note a packet consumed by a mobility hook before local delivery
    /// (registration signalling never reaches a socket, but it *did*
    /// terminate) — the packet leaves flight without a trace event.
    #[inline]
    pub fn note_consumed(&mut self, pkt: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        self.hook_consumed += 1;
        if !self.live.remove(&live_key(pkt)) {
            self.extra_terminations += 1;
        }
    }

    /// Note a hook rewriting a packet's identity in place (no trace
    /// transform fires): the old identity leaves flight, the new enters.
    #[inline]
    pub fn note_rewrite(&mut self, before: &Ipv4Packet, after: &Ipv4Packet) {
        if !self.enabled {
            return;
        }
        let (b, a) = (live_key(before), live_key(after));
        if b != a {
            self.live.remove(&b);
            self.live.insert(a);
        }
    }

    /// The identities currently considered in flight — `(src, dst, proto,
    /// ident)` tuples. A diagnostic surface: when conservation is
    /// violated, these are the leaked packets.
    pub fn live_keys(&self) -> impl Iterator<Item = &LiveKey> {
        self.live.iter()
    }

    /// Incremental scheduler-stats reconciliation, run per dispatch batch:
    /// `pushed == dispatched + cancelled + pending`. Records the first
    /// breach only (a broken queue would otherwise flood the report).
    #[inline]
    pub fn check_scheduler(&mut self, at: SimTime, stats: &SchedulerStats, pending: u64) {
        if !self.enabled {
            return;
        }
        self.checks += 1;
        if self.scheduler_flagged {
            return;
        }
        let accounted = stats.dispatched + stats.cancelled + pending;
        if stats.pushed != accounted {
            self.scheduler_flagged = true;
            self.record_violation(
                "scheduler-reconciliation",
                format!(
                    "pushed={} != dispatched={} + cancelled={} + pending={}",
                    stats.pushed, stats.dispatched, stats.cancelled, pending
                ),
                at,
            );
        }
    }

    /// Final-check violations, computed without mutating the monitor so
    /// reports can be built from a shared borrow. `quiescent` gates the
    /// conservation check (mid-run, in-flight packets are legitimate);
    /// `totals` (with the registry's transform/drop sums) enables the
    /// metrics reconciliation.
    pub fn final_violations(
        &self,
        at: SimTime,
        stats: &SchedulerStats,
        pending: u64,
        quiescent: bool,
        totals: Option<&crate::metrics::NodeMetrics>,
    ) -> Vec<InvariantViolation> {
        if !self.enabled {
            return Vec::new();
        }
        let mut out = Vec::new();
        if !self.scheduler_flagged {
            let accounted = stats.dispatched + stats.cancelled + pending;
            if stats.pushed != accounted {
                out.push(InvariantViolation {
                    invariant: "scheduler-reconciliation",
                    detail: format!(
                        "pushed={} != dispatched={} + cancelled={} + pending={}",
                        stats.pushed, stats.dispatched, stats.cancelled, pending
                    ),
                    at,
                });
            }
        }
        if quiescent {
            let in_flight = self.live.len() as u64;
            let allowance =
                self.wire_losses + self.detached_frames + self.parked_net() + self.unclaimed_frames;
            if in_flight > allowance {
                out.push(InvariantViolation {
                    invariant: "packet-conservation",
                    detail: format!(
                        "sent={} != delivered={} + dropped={} + in-flight accounted: \
                         {} packets still unaccounted at quiescence, only {} attributable \
                         (wire_losses={} detached_frames={} parked={} unclaimed={})",
                        self.originated + self.adopted,
                        self.delivered_events,
                        self.dropped_events,
                        in_flight,
                        allowance,
                        self.wire_losses,
                        self.detached_frames,
                        self.parked_net(),
                        self.unclaimed_frames
                    ),
                    at,
                });
            }
        }
        if let Some(t) = totals {
            let pairs = [
                ("packets_sent", t.packets_sent, self.sent_events),
                (
                    "packets_forwarded",
                    t.packets_forwarded,
                    self.forwarded_events,
                ),
                (
                    "packets_delivered",
                    t.packets_delivered,
                    self.delivered_events,
                ),
                ("drops", t.total_drops(), self.dropped_events),
                ("transforms", t.transforms, self.transform_events),
            ];
            for (name, registry, monitor) in pairs {
                if registry != monitor {
                    out.push(InvariantViolation {
                        invariant: "metrics-reconciliation",
                        detail: format!("registry {name}={registry} != monitor count {monitor}"),
                        at,
                    });
                }
            }
        }
        out
    }

    /// The monitor's run-report section: counters, check count, and the
    /// union of incrementally recorded and freshly computed violations.
    pub fn report_value(
        &self,
        at: SimTime,
        stats: &SchedulerStats,
        pending: u64,
        quiescent: bool,
        totals: Option<&crate::metrics::NodeMetrics>,
    ) -> Value {
        let mut violations: Vec<Value> = self.violations.iter().map(|v| v.to_value()).collect();
        violations.extend(
            self.final_violations(at, stats, pending, quiescent, totals)
                .iter()
                .map(|v| v.to_value()),
        );
        let ok = violations.is_empty() && self.suppressed_violations == 0;
        Value::Object(vec![
            ("ok".into(), Value::Bool(ok)),
            ("checks".into(), Value::U64(self.checks)),
            (
                "counters".into(),
                Value::Object(vec![
                    ("sent_events".into(), Value::U64(self.sent_events)),
                    ("forwarded_events".into(), Value::U64(self.forwarded_events)),
                    ("delivered_events".into(), Value::U64(self.delivered_events)),
                    ("dropped_events".into(), Value::U64(self.dropped_events)),
                    ("transform_events".into(), Value::U64(self.transform_events)),
                    ("originated".into(), Value::U64(self.originated)),
                    ("adopted".into(), Value::U64(self.adopted)),
                    ("in_flight".into(), Value::U64(self.live.len() as u64)),
                    (
                        "extra_terminations".into(),
                        Value::U64(self.extra_terminations),
                    ),
                    ("wire_losses".into(), Value::U64(self.wire_losses)),
                    ("detached_frames".into(), Value::U64(self.detached_frames)),
                    ("parked".into(), Value::U64(self.parked_net())),
                    ("unclaimed_frames".into(), Value::U64(self.unclaimed_frames)),
                    ("hook_consumed".into(), Value::U64(self.hook_consumed)),
                ]),
            ),
            ("violations".into(), Value::Array(violations)),
            (
                "suppressed_violations".into(),
                Value::U64(self.suppressed_violations),
            ),
        ])
    }

    /// Whether any violation has been observed so far (incremental checks
    /// only; final checks are recomputed by [`InvariantMonitor::final_violations`]).
    pub fn violated(&self) -> bool {
        !self.violations.is_empty() || self.suppressed_violations > 0
    }
}

/// Normalized per-flow sketch key: outer-header endpoints (direction
/// insensitive) plus IANA protocol number. Outer rather than logical
/// endpoints keeps the sketched hot path free of tunnel parsing; at wire
/// level the tunnel aggregate (HA ↔ care-of) *is* the heavy hitter.
pub type FlowLabel = (Ipv4Addr, Ipv4Addr, u8);

/// The [`FlowLabel`] of a packet.
pub fn flow_label(pkt: &Ipv4Packet) -> FlowLabel {
    if pkt.src <= pkt.dst {
        (pkt.src, pkt.dst, pkt.protocol.number())
    } else {
        (pkt.dst, pkt.src, pkt.protocol.number())
    }
}

/// Re-exported for sketches keyed by node.
pub type NodeKey = NodeId;

/// Stable drop-reason listing used by diff tooling.
pub fn drop_reason_tags() -> impl Iterator<Item = &'static str> {
    DropReason::ALL.into_iter().map(|r| r.tag())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use bytes::Bytes;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pkt(src: &str, dst: &str, ident: u16) -> Ipv4Packet {
        let mut p = Ipv4Packet::new(ip(src), ip(dst), IpProtocol::Udp, Bytes::from_static(b"x"));
        p.ident = ident;
        p
    }

    #[test]
    fn space_saving_exact_below_capacity() {
        let mut s: SpaceSaving<u64> = SpaceSaving::new(4);
        for (k, n) in [(1u64, 10u64), (2, 5), (3, 1)] {
            for _ in 0..n {
                s.offer(k, 1);
            }
        }
        assert!(s.is_exact());
        assert_eq!(s.count(&1), Some(10));
        assert_eq!(s.count(&3), Some(1));
        let top = s.top();
        assert_eq!(top[0].key, 1);
        assert_eq!(top[0].count, 10);
        assert_eq!(top[0].error, 0);
    }

    #[test]
    fn space_saving_bounds_memory_and_error_above_capacity() {
        let mut s: SpaceSaving<u64> = SpaceSaving::new(8);
        // One true heavy hitter among 10k distinct light keys.
        for i in 0..10_000u64 {
            s.offer(i, 1);
            s.offer(42, 1);
        }
        assert_eq!(s.len(), 8, "memory bound holds");
        assert!(!s.is_exact());
        let c = s.count(&42).expect("heavy hitter retained");
        assert!(c >= 10_000, "count is an overestimate, was {c}");
        let e = s.top().iter().find(|e| e.key == 42).unwrap().error;
        assert!(c - e <= 10_000 + 1, "true count within error bound");
    }

    #[test]
    fn space_saving_merge_exact_when_union_fits() {
        let mut a: SpaceSaving<u64> = SpaceSaving::new(8);
        let mut b: SpaceSaving<u64> = SpaceSaving::new(8);
        a.offer(1, 3);
        a.offer(2, 2);
        b.offer(2, 5);
        b.offer(9, 1);
        a.merge(&b);
        assert!(a.is_exact());
        assert_eq!(a.count(&1), Some(3));
        assert_eq!(a.count(&2), Some(7));
        assert_eq!(a.count(&9), Some(1));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let run = || {
            let mut r: Reservoir<u64> = Reservoir::new(8, 7);
            for i in 0..10_000u64 {
                r.offer(i);
            }
            r.items().to_vec()
        };
        let a = run();
        assert_eq!(a.len(), 8);
        assert_eq!(a, run(), "same seed, same sample");
        let mut other: Reservoir<u64> = Reservoir::new(8, 8);
        for i in 0..10_000u64 {
            other.offer(i);
        }
        let mut merged: Reservoir<u64> = Reservoir::new(8, 7);
        for i in 0..10_000u64 {
            merged.offer(i);
        }
        merged.merge(&other);
        assert_eq!(merged.items().len(), 8);
        assert_eq!(merged.seen(), 20_000);
    }

    #[test]
    fn monitor_clean_run_reports_no_violations() {
        let mut m = InvariantMonitor::new();
        m.set_enabled(true);
        let p = pkt("1.1.1.1", "2.2.2.2", 1);
        m.record_packet(TraceEventKind::Sent, &p);
        m.record_packet(TraceEventKind::Forwarded, &p);
        m.record_packet(TraceEventKind::DeliveredLocal, &p);
        let stats = SchedulerStats {
            pushed: 10,
            dispatched: 7,
            cancelled: 3,
        };
        let v = m.final_violations(SimTime(5), &stats, 0, true, None);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn monitor_detects_leaked_packet() {
        let mut m = InvariantMonitor::new();
        m.set_enabled(true);
        m.record_packet(TraceEventKind::Sent, &pkt("1.1.1.1", "2.2.2.2", 1));
        let stats = SchedulerStats {
            pushed: 0,
            dispatched: 0,
            cancelled: 0,
        };
        let v = m.final_violations(SimTime(5), &stats, 0, true, None);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "packet-conservation");
        // The same leak is forgiven when a wire loss explains it.
        m.note_wire_loss();
        let v = m.final_violations(SimTime(5), &stats, 0, true, None);
        assert!(v.is_empty());
    }

    #[test]
    fn monitor_transform_hands_flight_over() {
        let mut m = InvariantMonitor::new();
        m.set_enabled(true);
        let inner = pkt("1.1.1.1", "2.2.2.2", 1);
        let outer = pkt("9.9.9.9", "8.8.8.8", 77);
        m.record_packet(TraceEventKind::Sent, &inner);
        m.record_transform(Some(&inner), &outer);
        assert_eq!(m.in_flight(), 1, "child replaced parent");
        m.record_packet(TraceEventKind::DeliveredLocal, &outer);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn monitor_scheduler_reconciliation_fires_once() {
        let mut m = InvariantMonitor::new();
        m.set_enabled(true);
        let bad = SchedulerStats {
            pushed: 10,
            dispatched: 3,
            cancelled: 1,
        };
        m.check_scheduler(SimTime(1), &bad, 2);
        m.check_scheduler(SimTime(2), &bad, 2);
        assert_eq!(m.violations().len(), 1, "flagged once, not per batch");
        assert_eq!(m.violations()[0].invariant, "scheduler-reconciliation");
    }

    #[test]
    fn monitor_metrics_reconciliation() {
        let mut m = InvariantMonitor::new();
        m.set_enabled(true);
        m.record_packet(TraceEventKind::Sent, &pkt("1.1.1.1", "2.2.2.2", 1));
        let mut totals = crate::metrics::NodeMetrics::default();
        totals.packets_sent = 2; // registry claims one more than observed
        let stats = SchedulerStats {
            pushed: 0,
            dispatched: 0,
            cancelled: 0,
        };
        let v = m.final_violations(SimTime(1), &stats, 0, false, Some(&totals));
        assert!(v.iter().any(|v| v.invariant == "metrics-reconciliation"));
    }

    #[test]
    fn disabled_monitor_costs_and_stores_nothing() {
        let mut m = InvariantMonitor::new();
        m.record_packet(TraceEventKind::Sent, &pkt("1.1.1.1", "2.2.2.2", 1));
        m.note_wire_loss();
        assert_eq!(m.in_flight(), 0);
        let stats = SchedulerStats {
            pushed: 5,
            dispatched: 0,
            cancelled: 0,
        };
        let v = m.final_violations(SimTime(1), &stats, 0, true, None);
        assert!(v.is_empty(), "disabled monitor never reports");
    }
}
