//! Flight recorder: hierarchical wall-clock profiling scopes, allocation
//! telemetry, global counters, and a sim-time-driven gauge sampler.
//!
//! The recorder is **zero-cost when disabled**: every entry point starts
//! with a single relaxed atomic load and returns immediately, so
//! instrumented hot paths (forwarding, route lookup, timer dispatch) pay
//! one predictable branch. When enabled via [`set_enabled`] (experiment
//! binaries honor `NETSIM_PROFILE=1` / `--profile`), each thread records
//! into a private call tree:
//!
//! - [`scope`] returns an RAII guard; enter/exit deltas from the
//!   monotonic clock aggregate into per-(parent, name) nodes holding
//!   inclusive nanoseconds, call counts, and allocation deltas.
//! - A counting [`GlobalAlloc`] wrapper ([`CountingAllocator`]) tracks
//!   per-thread allocation count and bytes, so each scope also learns how
//!   much it allocated (exclusive figures are derived at report time as
//!   `inclusive − Σ children`).
//! - Named global [`Counter`]s (route-cache hits/misses, …) accumulate in
//!   process-wide atomics.
//! - [`TimeSeries`] snapshots gauges on a sim-time stride that doubles
//!   whenever the bounded buffer fills, so arbitrarily long runs keep a
//!   capped, evenly spread sample set.
//!
//! Thread trees merge into a process-global tree on [`flush_thread`] (and
//! automatically when a thread's recorder drops); [`capture`] flushes the
//! calling thread, snapshots the merged tree as a [`ProfileReport`], and
//! leaves the data in place so repeated captures are cheap. Reports
//! render as text (`render_tree` / `render_hot` / `render_alloc`), lower
//! into the run-report JSON via [`report_value`], round-trip back through
//! [`ProfileReport::from_value`] for the `profile` inspector bin, and
//! export as chrome-trace complete events via
//! [`ProfileReport::chrome_trace`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Serialize, Value};

// ---------------------------------------------------------------------------
// Enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Nanoseconds-since-process-anchor when profiling was last enabled; lets
/// reports state the wall time the recorder was live.
static ENABLED_AT_NS: AtomicU64 = AtomicU64::new(0);

/// Whether the flight recorder is currently on. One relaxed load — this
/// is the only cost instrumented code pays when profiling is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off process-wide. Scopes opened while
/// enabled keep recording their exit even if disabled mid-flight.
pub fn set_enabled(on: bool) {
    if on {
        ENABLED_AT_NS.store(ns_since_anchor(), Ordering::Relaxed);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process-wide monotonic anchor; all wall timestamps are deltas from it.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

fn ns_since_anchor() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Allocation telemetry
// ---------------------------------------------------------------------------

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide live heap bytes: every allocation adds its size, every
/// free subtracts it. Unlike the monotonic thread-local tallies this is
/// dealloc-aware, so diffing two readings measures *steady-state* memory
/// (what stays resident), not allocator churn — the number the scale
/// experiments publish as per-host bytes.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

#[inline]
fn count_live(delta: i64) {
    LIVE_BYTES.fetch_add(delta, Ordering::Relaxed);
}

/// Current live heap bytes (allocated minus freed since process start).
/// Racy only to the extent other threads are allocating concurrently;
/// single-threaded measurement regions read it exactly.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

#[inline]
fn count_alloc(bytes: usize) {
    // `try_with` + const-initialized `Cell`s (no destructor, no lazy
    // registration) make this safe to call from inside the allocator at
    // any point in a thread's lifetime, including TLS teardown.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = TL_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

/// Counting wrapper around the system allocator: maintains per-thread
/// allocation-count and byte tallies (always on — two thread-local cell
/// bumps per allocation) that profiling scopes diff to attribute
/// allocations. Installed as the workspace `#[global_allocator]`.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System` for memory management; the counting
// side effect touches only const-initialized thread-local cells.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        let p = System.alloc(layout);
        if !p.is_null() {
            count_live(layout.size() as i64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            count_live(layout.size() as i64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc(new_size);
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            count_live(new_size as i64 - layout.size() as i64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        count_live(-(layout.size() as i64));
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

/// This thread's running `(allocation count, allocated bytes)` totals
/// since thread start. Monotonic (frees are not subtracted); diff two
/// readings to measure a region, e.g. the O(1)-allocation regression
/// tests do exactly that.
pub fn thread_allocations() -> (u64, u64) {
    (
        TL_ALLOCS.try_with(Cell::get).unwrap_or(0),
        TL_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
    )
}

// ---------------------------------------------------------------------------
// Global counters
// ---------------------------------------------------------------------------

/// Process-wide event counters sampled by the gauge sampler and embedded
/// in profile reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Route lookups answered from the per-table lookup cache.
    RouteCacheHit = 0,
    /// Route lookups that fell through to the longest-prefix-match walk.
    RouteCacheMiss = 1,
    /// Policy method-cache lookups answered from a live entry.
    PolicyCacheHit = 2,
    /// Policy method-cache lookups that decided afresh (first contact).
    PolicyCacheMiss = 3,
    /// Policy method-cache entries displaced by LRU eviction at capacity.
    PolicyCacheEviction = 4,
    /// Policy method-cache entries discarded by TTL expiry.
    PolicyCacheExpiry = 5,
}

const NCOUNTERS: usize = 6;
static COUNTERS: [AtomicU64; NCOUNTERS] = [const { AtomicU64::new(0) }; NCOUNTERS];

const COUNTER_NAMES: [&str; NCOUNTERS] = [
    "route_cache_hit",
    "route_cache_miss",
    "policy_cache_hit",
    "policy_cache_miss",
    "policy_cache_eviction",
    "policy_cache_expiry",
];

/// Adds `n` to a global counter; no-op while profiling is disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of a global counter.
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Per-thread call-tree recorder
// ---------------------------------------------------------------------------

const NONE: u32 = u32::MAX;

/// One node of a thread's call tree. Children form an intrusive singly
/// linked list so `enter` allocates nothing on the hot path once a
/// (parent, name) pair has been seen.
struct TreeNode {
    name: &'static str,
    parent: u32,
    first_child: u32,
    next_sibling: u32,
    calls: u64,
    incl_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

struct Frame {
    node: u32,
    start: Instant,
    allocs0: u64,
    bytes0: u64,
}

struct Recorder {
    nodes: Vec<TreeNode>,
    stack: Vec<Frame>,
    dirty: bool,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            nodes: vec![TreeNode {
                name: "",
                parent: NONE,
                first_child: NONE,
                next_sibling: NONE,
                calls: 0,
                incl_ns: 0,
                allocs: 0,
                alloc_bytes: 0,
            }],
            stack: Vec::new(),
            dirty: false,
        }
    }

    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().map_or(0, |f| f.node);
        let mut child = self.nodes[parent as usize].first_child;
        let node = loop {
            if child == NONE {
                let ix = self.nodes.len() as u32;
                let head = self.nodes[parent as usize].first_child;
                self.nodes.push(TreeNode {
                    name,
                    parent,
                    first_child: NONE,
                    next_sibling: head,
                    calls: 0,
                    incl_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                });
                self.nodes[parent as usize].first_child = ix;
                break ix;
            }
            let n = &self.nodes[child as usize];
            // Names are literals, so pointer equality is the common case;
            // fall back to content comparison across codegen units.
            if std::ptr::eq(n.name.as_ptr(), name.as_ptr()) || n.name == name {
                break child;
            }
            child = n.next_sibling;
        };
        let (allocs0, bytes0) = thread_allocations();
        self.stack.push(Frame {
            node,
            start: Instant::now(),
            allocs0,
            bytes0,
        });
    }

    fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let delta = frame.start.elapsed().as_nanos() as u64;
        let (allocs, bytes) = thread_allocations();
        let node = &mut self.nodes[frame.node as usize];
        node.calls += 1;
        node.incl_ns += delta;
        node.allocs += allocs.wrapping_sub(frame.allocs0);
        node.alloc_bytes += bytes.wrapping_sub(frame.bytes0);
        self.dirty = true;
    }

    /// Zeroes every tally while keeping the node structure (live frames
    /// reference nodes by index, so the tree must survive a flush).
    fn zero(&mut self) {
        for n in &mut self.nodes {
            n.calls = 0;
            n.incl_ns = 0;
            n.allocs = 0;
            n.alloc_bytes = 0;
        }
        self.dirty = false;
    }
}

/// Thread-local wrapper whose `Drop` flushes whatever the thread recorded
/// into the global merged tree, so short-lived pool workers never lose
/// samples.
struct Holder(Recorder);

impl Drop for Holder {
    fn drop(&mut self) {
        merge_into_global(&mut self.0);
    }
}

thread_local! {
    static RECORDER: RefCell<Holder> = RefCell::new(Holder(Recorder::new()));
}

/// RAII guard returned by [`scope`]; records the scope's inclusive time
/// and allocation delta when dropped.
#[must_use = "hold the guard in a binding for the scope's duration"]
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    #[inline]
    fn drop(&mut self) {
        if self.active {
            let _ = RECORDER.try_with(|r| r.borrow_mut().0.exit());
        }
    }
}

/// Opens a named profiling scope on this thread. When profiling is
/// disabled this is one atomic load and an inert guard; when enabled the
/// guard's lifetime becomes one call-tree sample under the innermost
/// enclosing scope.
#[inline]
pub fn scope(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { active: false };
    }
    let active = RECORDER.try_with(|r| r.borrow_mut().0.enter(name)).is_ok();
    ScopeGuard { active }
}

// ---------------------------------------------------------------------------
// Global merged tree
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MergedNode {
    name: &'static str,
    children: Vec<u32>,
    calls: u64,
    incl_ns: u64,
    allocs: u64,
    alloc_bytes: u64,
}

#[derive(Default)]
struct Merged {
    nodes: Vec<MergedNode>,
    flushes: u64,
}

impl Merged {
    fn ensure_root(&mut self) {
        if self.nodes.is_empty() {
            self.nodes.push(MergedNode::default());
        }
    }

    fn child_named(&mut self, parent: u32, name: &'static str) -> u32 {
        if let Some(&c) = self.nodes[parent as usize]
            .children
            .iter()
            .find(|&&c| self.nodes[c as usize].name == name)
        {
            return c;
        }
        let ix = self.nodes.len() as u32;
        self.nodes.push(MergedNode {
            name,
            ..MergedNode::default()
        });
        self.nodes[parent as usize].children.push(ix);
        ix
    }
}

fn global() -> &'static Mutex<Merged> {
    static GLOBAL: OnceLock<Mutex<Merged>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Merged::default()))
}

fn merge_into_global(rec: &mut Recorder) {
    if !rec.dirty {
        return;
    }
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    g.ensure_root();
    // A recorder node's parent always has a smaller index (parents are
    // created before the child is first entered), so one forward pass can
    // map thread indices onto merged indices.
    let mut map = vec![0u32; rec.nodes.len()];
    for i in 1..rec.nodes.len() {
        let parent = map[rec.nodes[i].parent as usize];
        let mix = g.child_named(parent, rec.nodes[i].name);
        map[i] = mix;
        let src = &rec.nodes[i];
        let dst = &mut g.nodes[mix as usize];
        dst.calls += src.calls;
        dst.incl_ns += src.incl_ns;
        dst.allocs += src.allocs;
        dst.alloc_bytes += src.alloc_bytes;
    }
    g.flushes += 1;
    rec.zero();
}

/// Merges this thread's recorded tree into the global one and zeroes the
/// thread-local tallies. Call after a worker finishes a batch and before
/// building reports; a no-op when the thread recorded nothing new.
pub fn flush_thread() {
    let _ = RECORDER.try_with(|r| merge_into_global(&mut r.borrow_mut().0));
}

/// Clears all recorded data: the global merged tree, this thread's
/// recorder, and every global counter. Primarily for tests and benches
/// that must not leak samples into a later capture.
pub fn reset() {
    let _ = RECORDER.try_with(|r| {
        let rec = &mut r.borrow_mut().0;
        rec.zero();
    });
    let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
    g.nodes.clear();
    g.flushes = 0;
    drop(g);
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    ENABLED_AT_NS.store(ns_since_anchor(), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregated statistics for one profiling scope (one call-tree node).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScopeStat {
    /// Scope name as passed to [`scope`].
    pub name: String,
    /// Times the scope was entered and exited.
    pub calls: u64,
    /// Wall nanoseconds inside the scope, children included.
    pub incl_ns: u64,
    /// Wall nanoseconds inside the scope minus time in child scopes.
    pub excl_ns: u64,
    /// Heap allocations performed while the scope was innermost-or-above.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Child scopes, sorted by inclusive time, largest first.
    pub children: Vec<ScopeStat>,
}

/// A snapshot of everything the flight recorder gathered: the merged
/// call-tree forest, global counters, and bookkeeping totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Wall nanoseconds profiling has been enabled when captured.
    pub wall_ns: u64,
    /// How many thread flushes fed the merged tree.
    pub flushes: u64,
    /// Global counter values, in declaration order.
    pub counters: Vec<(String, u64)>,
    /// Top-level scopes (scopes entered with no enclosing scope).
    pub roots: Vec<ScopeStat>,
}

fn to_stat(g: &Merged, ix: u32) -> ScopeStat {
    let n = &g.nodes[ix as usize];
    let mut children: Vec<ScopeStat> = n.children.iter().map(|&c| to_stat(g, c)).collect();
    children.sort_by_key(|c| std::cmp::Reverse(c.incl_ns));
    let child_incl: u64 = children.iter().map(|c| c.incl_ns).sum();
    ScopeStat {
        name: n.name.to_string(),
        calls: n.calls,
        incl_ns: n.incl_ns,
        excl_ns: n.incl_ns.saturating_sub(child_incl),
        allocs: n.allocs,
        alloc_bytes: n.alloc_bytes,
        children,
    }
}

/// Flushes this thread and snapshots the merged tree as a
/// [`ProfileReport`]. Non-destructive: recorded data stays in place.
pub fn capture() -> ProfileReport {
    flush_thread();
    let g = global().lock().unwrap_or_else(|e| e.into_inner());
    let roots = if g.nodes.is_empty() {
        Vec::new()
    } else {
        let mut roots: Vec<ScopeStat> = g.nodes[0]
            .children
            .iter()
            .map(|&c| to_stat(&g, c))
            .collect();
        roots.sort_by_key(|r| std::cmp::Reverse(r.incl_ns));
        roots
    };
    ProfileReport {
        wall_ns: ns_since_anchor().saturating_sub(ENABLED_AT_NS.load(Ordering::Relaxed)),
        flushes: g.flushes,
        counters: COUNTER_NAMES
            .iter()
            .zip(&COUNTERS)
            .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
            .collect(),
        roots,
    }
}

/// Captures a report and lowers it to a run-report value, keeping at most
/// `cap` scopes (largest inclusive time first, ancestors always kept).
pub fn report_value(cap: usize) -> Value {
    capture().to_value_capped(cap)
}

fn count_nodes(stats: &[ScopeStat]) -> usize {
    stats.iter().map(|s| 1 + count_nodes(&s.children)).sum()
}

fn stat_value(s: &ScopeStat, budget: &mut usize) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(s.name.clone())),
        ("calls".to_string(), Value::U64(s.calls)),
        ("incl_ns".to_string(), Value::U64(s.incl_ns)),
        ("excl_ns".to_string(), Value::U64(s.excl_ns)),
        ("allocs".to_string(), Value::U64(s.allocs)),
        ("alloc_bytes".to_string(), Value::U64(s.alloc_bytes)),
    ];
    let mut children = Vec::new();
    // Children arrive sorted by inclusive time, so a greedy budget walk
    // keeps the hottest subtrees when capped.
    for c in &s.children {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        children.push(stat_value(c, budget));
    }
    if !children.is_empty() {
        fields.push(("children".to_string(), Value::Array(children)));
    }
    Value::Object(fields)
}

impl ProfileReport {
    /// Total inclusive nanoseconds across root scopes. On a single
    /// profiled thread this is the wall time attributed to named scopes;
    /// with pool workers it can exceed [`ProfileReport::wall_ns`].
    pub fn total_incl_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.incl_ns).sum()
    }

    /// Lowers the report into a run-report JSON value, emitting at most
    /// `cap` scopes (hottest-first; the `scopes_total` field records how
    /// many existed before capping).
    pub fn to_value_capped(&self, cap: usize) -> Value {
        let total = count_nodes(&self.roots);
        let mut budget = cap.max(1);
        let mut scopes = Vec::new();
        for r in &self.roots {
            if budget == 0 {
                break;
            }
            budget -= 1;
            scopes.push(stat_value(r, &mut budget));
        }
        Value::Object(vec![
            ("wall_ns".to_string(), Value::U64(self.wall_ns)),
            ("flushes".to_string(), Value::U64(self.flushes)),
            ("scopes_total".to_string(), Value::U64(total as u64)),
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            ("scopes".to_string(), Value::Array(scopes)),
        ])
    }

    /// Parses a report back out of a run-report `profile` section.
    /// Returns `None` when the value is not a profile object.
    pub fn from_value(v: &Value) -> Option<ProfileReport> {
        fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
            match v {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        fn as_u64(v: &Value) -> Option<u64> {
            match v {
                Value::U64(n) => Some(*n),
                Value::I64(n) => u64::try_from(*n).ok(),
                Value::F64(f) => Some(*f as u64),
                _ => None,
            }
        }
        fn parse_stat(v: &Value) -> Option<ScopeStat> {
            let name = match get(v, "name")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            let children = match get(v, "children") {
                Some(Value::Array(items)) => items.iter().filter_map(parse_stat).collect(),
                _ => Vec::new(),
            };
            Some(ScopeStat {
                name,
                calls: get(v, "calls").and_then(as_u64)?,
                incl_ns: get(v, "incl_ns").and_then(as_u64)?,
                excl_ns: get(v, "excl_ns").and_then(as_u64)?,
                allocs: get(v, "allocs").and_then(as_u64).unwrap_or(0),
                alloc_bytes: get(v, "alloc_bytes").and_then(as_u64).unwrap_or(0),
                children,
            })
        }
        let scopes = get(v, "scopes")?;
        let roots = match scopes {
            Value::Array(items) => items.iter().filter_map(parse_stat).collect(),
            _ => return None,
        };
        let counters = match get(v, "counters") {
            Some(Value::Object(fields)) => fields
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), as_u64(v)?)))
                .collect(),
            _ => Vec::new(),
        };
        Some(ProfileReport {
            wall_ns: get(v, "wall_ns").and_then(as_u64).unwrap_or(0),
            flushes: get(v, "flushes").and_then(as_u64).unwrap_or(0),
            counters,
            roots,
        })
    }

    /// Renders the call-tree forest, one indented line per scope.
    pub fn render_tree(&self) -> String {
        fn walk(out: &mut String, s: &ScopeStat, depth: usize) {
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}{:<width$} {:>10} calls  incl {:>10}  excl {:>10}  {:>8} allocs  {:>10}\n",
                s.name,
                s.calls,
                human_ns(s.incl_ns),
                human_ns(s.excl_ns),
                s.allocs,
                human_bytes(s.alloc_bytes),
                width = 36usize.saturating_sub(depth * 2),
            ));
            for c in &s.children {
                walk(out, c, depth + 1);
            }
        }
        let mut out = format!(
            "profile: wall {} · {} flushes · {} scopes\n",
            human_ns(self.wall_ns),
            self.flushes,
            count_nodes(&self.roots),
        );
        for r in &self.roots {
            walk(&mut out, r, 0);
        }
        out
    }

    /// Flat aggregation across the tree keyed by scope name. Returns
    /// `(name, calls, excl_ns, allocs, alloc_bytes)` sorted by the chosen
    /// key, largest first.
    fn flat(&self, by_alloc: bool) -> Vec<(String, u64, u64, u64, u64)> {
        fn walk(acc: &mut std::collections::HashMap<String, (u64, u64, u64, u64)>, s: &ScopeStat) {
            let e = acc.entry(s.name.clone()).or_default();
            e.0 += s.calls;
            e.1 += s.excl_ns;
            e.2 += s.allocs;
            e.3 += s.alloc_bytes;
            for c in &s.children {
                walk(acc, c);
            }
        }
        let mut acc = std::collections::HashMap::new();
        for r in &self.roots {
            walk(&mut acc, r);
        }
        let mut flat: Vec<_> = acc
            .into_iter()
            .map(|(name, (calls, excl, allocs, bytes))| (name, calls, excl, allocs, bytes))
            .collect();
        if by_alloc {
            flat.sort_by(|a, b| b.4.cmp(&a.4).then(a.0.cmp(&b.0)));
        } else {
            flat.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        }
        flat
    }

    /// Renders the hottest scopes by exclusive time, with the share of
    /// recorder wall time each accounts for.
    pub fn render_hot(&self, top: usize) -> String {
        let attributed = self.total_incl_ns();
        let pct = if self.wall_ns > 0 {
            attributed as f64 * 100.0 / self.wall_ns as f64
        } else {
            0.0
        };
        let mut out = format!(
            "hot scopes by exclusive time · wall {} · attributed {} ({pct:.1}% of wall)\n",
            human_ns(self.wall_ns),
            human_ns(attributed),
        );
        for (name, calls, excl, _, _) in self.flat(false).into_iter().take(top) {
            let share = if self.wall_ns > 0 {
                excl as f64 * 100.0 / self.wall_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>10}  {share:>5.1}%  {calls:>10} calls  {name}\n",
                human_ns(excl),
            ));
        }
        out
    }

    /// Renders the heaviest allocators by bytes, aggregated by scope name.
    pub fn render_alloc(&self, top: usize) -> String {
        let mut out = String::from("scopes by allocated bytes\n");
        for (name, calls, _, allocs, bytes) in self.flat(true).into_iter().take(top) {
            out.push_str(&format!(
                "{:>10}  {allocs:>10} allocs  {calls:>10} calls  {name}\n",
                human_bytes(bytes),
            ));
        }
        out
    }

    /// Lowers the forest into chrome-trace "complete" (`ph: "X"`) events:
    /// a synthetic flame layout where each scope spans its inclusive time
    /// and children tile left-to-right inside the parent. Load the result
    /// in `chrome://tracing` / Perfetto.
    pub fn chrome_trace(&self) -> Value {
        fn emit(events: &mut Vec<Value>, s: &ScopeStat, ts_us: f64) {
            let dur_us = s.incl_ns as f64 / 1_000.0;
            events.push(Value::Object(vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::F64(ts_us)),
                ("dur".to_string(), Value::F64(dur_us)),
                ("pid".to_string(), Value::U64(1)),
                ("tid".to_string(), Value::U64(1)),
                (
                    "args".to_string(),
                    Value::Object(vec![
                        ("calls".to_string(), Value::U64(s.calls)),
                        ("allocs".to_string(), Value::U64(s.allocs)),
                        ("alloc_bytes".to_string(), Value::U64(s.alloc_bytes)),
                    ]),
                ),
            ]));
            let mut child_ts = ts_us;
            for c in &s.children {
                emit(events, c, child_ts);
                child_ts += c.incl_ns as f64 / 1_000.0;
            }
        }
        let mut events = vec![Value::Object(vec![
            ("name".to_string(), Value::Str("process_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::U64(1)),
            (
                "args".to_string(),
                Value::Object(vec![(
                    "name".to_string(),
                    Value::Str("netsim profile (merged scopes)".to_string()),
                )]),
            ),
        ])];
        let mut ts = 0.0;
        for r in &self.roots {
            emit(&mut events, r, ts);
            ts += r.incl_ns as f64 / 1_000.0;
        }
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ])
    }
}

fn human_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn human_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.2} MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

// ---------------------------------------------------------------------------
// Time-series gauge sampler
// ---------------------------------------------------------------------------

/// One gauge snapshot taken by the [`TimeSeries`] sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulation clock at the snapshot, microseconds.
    pub sim_us: u64,
    /// Wall nanoseconds since sampling was enabled.
    pub wall_ns: u64,
    /// Cumulative events dispatched by the scheduler.
    pub dispatched: u64,
    /// Live (pushed, not yet dispatched or cancelled) timers.
    pub live_timers: u64,
    /// Occupied timing-wheel slots summed across levels (0 on the
    /// reference-heap backend).
    pub wheel_occupancy: u64,
    /// Entries parked in the overflow heap (whole queue for the
    /// reference-heap backend).
    pub overflow_len: u64,
    /// Cumulative global route-cache hits (all worlds in the process).
    pub route_cache_hits: u64,
    /// Cumulative global route-cache misses.
    pub route_cache_misses: u64,
    /// Crude estimate of the world's heap footprint, bytes.
    pub mem_est_bytes: u64,
    /// Dispatch rate against the wall clock since the previous sample.
    pub events_per_wall_sec: f64,
    /// Dispatch rate against the simulation clock since the previous
    /// sample.
    pub events_per_sim_sec: f64,
}

serde::impl_serialize!(Sample {
    sim_us,
    wall_ns,
    dispatched,
    live_timers,
    wheel_occupancy,
    overflow_len,
    route_cache_hits,
    route_cache_misses,
    mem_est_bytes,
    events_per_wall_sec,
    events_per_sim_sec,
});

/// Raw gauges a caller hands to [`TimeSeries::push`]; the sampler
/// derives rates and attaches counter values itself.
#[derive(Debug, Clone, Copy)]
pub struct RawGauges {
    /// Simulation clock, microseconds.
    pub sim_us: u64,
    /// Cumulative dispatched events.
    pub dispatched: u64,
    /// Live timers in the queue.
    pub live_timers: u64,
    /// Occupied wheel slots summed across levels.
    pub wheel_occupancy: u64,
    /// Overflow-heap length.
    pub overflow_len: u64,
    /// Estimated world heap footprint, bytes.
    pub mem_est_bytes: u64,
}

/// Bounded, sim-time-driven gauge sampler with stride doubling: when the
/// buffer reaches its cap, every other sample is dropped and the sampling
/// interval doubles, so any run length yields ≤ `cap` samples spread
/// evenly across the whole run.
#[derive(Debug)]
pub struct TimeSeries {
    interval_us: u64,
    next_at: u64,
    cap: usize,
    samples: Vec<Sample>,
    started: Instant,
    last_wall_ns: u64,
    last_sim_us: u64,
    last_dispatched: u64,
}

impl TimeSeries {
    /// Creates a sampler that snapshots every `interval_us` of sim time
    /// and keeps at most `cap` samples (minimum 8).
    pub fn new(interval_us: u64, cap: usize) -> TimeSeries {
        TimeSeries {
            interval_us: interval_us.max(1),
            next_at: 0,
            cap: cap.max(8),
            samples: Vec::new(),
            started: Instant::now(),
            last_wall_ns: 0,
            last_sim_us: 0,
            last_dispatched: 0,
        }
    }

    /// Whether the next sample is due at sim time `sim_us`.
    #[inline]
    pub fn due(&self, sim_us: u64) -> bool {
        sim_us >= self.next_at
    }

    /// Records a snapshot from raw gauges, deriving wall/sim dispatch
    /// rates from the deltas since the previous sample.
    pub fn push(&mut self, raw: RawGauges) {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let d_events = raw.dispatched.saturating_sub(self.last_dispatched) as f64;
        let d_wall_s = wall_ns.saturating_sub(self.last_wall_ns) as f64 / 1e9;
        let d_sim_s = raw.sim_us.saturating_sub(self.last_sim_us) as f64 / 1e6;
        self.samples.push(Sample {
            sim_us: raw.sim_us,
            wall_ns,
            dispatched: raw.dispatched,
            live_timers: raw.live_timers,
            wheel_occupancy: raw.wheel_occupancy,
            overflow_len: raw.overflow_len,
            route_cache_hits: counter(Counter::RouteCacheHit),
            route_cache_misses: counter(Counter::RouteCacheMiss),
            mem_est_bytes: raw.mem_est_bytes,
            events_per_wall_sec: if d_wall_s > 0.0 {
                d_events / d_wall_s
            } else {
                0.0
            },
            events_per_sim_sec: if d_sim_s > 0.0 {
                d_events / d_sim_s
            } else {
                0.0
            },
        });
        self.last_wall_ns = wall_ns;
        self.last_sim_us = raw.sim_us;
        self.last_dispatched = raw.dispatched;
        if self.samples.len() >= self.cap {
            // Stride doubling: keep even-indexed samples, double the
            // interval. The retained set stays evenly spread in sim time.
            let mut keep = 0;
            for i in (0..self.samples.len()).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.samples.truncate(keep);
            self.interval_us = self.interval_us.saturating_mul(2);
        }
        self.next_at = raw.sim_us.saturating_add(self.interval_us);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Current sampling interval (doubles as the buffer fills).
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Lowers the sample set to a run-report value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("interval_us".to_string(), Value::U64(self.interval_us)),
            ("samples".to_string(), self.samples.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Profiling state is process-global; unit tests here only exercise
    // pieces that do not flip the global enable flag (integration tests
    // own that, serialized behind a lock).

    #[test]
    fn counting_allocator_sees_boxed_allocations() {
        let (a0, b0) = thread_allocations();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let (a1, b1) = thread_allocations();
        assert!(a1 > a0, "allocation count must advance");
        assert!(b1 - b0 >= 8 * 1024, "byte tally must cover the vec");
        drop(v);
    }

    #[test]
    fn disabled_scope_is_inert() {
        assert!(!enabled());
        let g = scope("test/inert");
        assert!(!g.active);
    }

    #[test]
    fn recorder_builds_a_tree_without_global_state() {
        let mut r = Recorder::new();
        r.enter("outer");
        r.enter("inner");
        r.exit();
        r.enter("inner");
        r.exit();
        r.exit();
        // root + outer + inner
        assert_eq!(r.nodes.len(), 3);
        let outer = &r.nodes[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.calls, 1);
        let inner = &r.nodes[2];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.calls, 2);
        assert!(outer.incl_ns >= inner.incl_ns);
    }

    #[test]
    fn time_series_stride_doubles_at_cap() {
        let mut ts = TimeSeries::new(10, 8);
        for i in 0..1000u64 {
            let sim_us = i * 10;
            if ts.due(sim_us) {
                ts.push(RawGauges {
                    sim_us,
                    dispatched: i,
                    live_timers: 1,
                    wheel_occupancy: 1,
                    overflow_len: 0,
                    mem_est_bytes: 64,
                });
            }
        }
        assert!(ts.samples().len() <= 8, "cap must hold");
        assert!(ts.interval_us() > 10, "interval must have doubled");
        let times: Vec<u64> = ts.samples().iter().map(|s| s.sim_us).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "samples stay time-ordered");
    }

    #[test]
    fn report_value_round_trips() {
        let rep = ProfileReport {
            wall_ns: 5_000,
            flushes: 2,
            counters: vec![("route_cache_hit".into(), 7)],
            roots: vec![ScopeStat {
                name: "world/run".into(),
                calls: 3,
                incl_ns: 4_000,
                excl_ns: 1_000,
                allocs: 12,
                alloc_bytes: 640,
                children: vec![ScopeStat {
                    name: "world/dispatch".into(),
                    calls: 9,
                    incl_ns: 3_000,
                    excl_ns: 3_000,
                    allocs: 4,
                    alloc_bytes: 128,
                    children: Vec::new(),
                }],
            }],
        };
        let v = rep.to_value_capped(64);
        let back = ProfileReport::from_value(&v).expect("parses");
        assert_eq!(back, rep);
    }

    #[test]
    fn capped_report_keeps_hottest_scopes() {
        let mk = |name: &str, incl: u64| ScopeStat {
            name: name.into(),
            calls: 1,
            incl_ns: incl,
            excl_ns: incl,
            ..ScopeStat::default()
        };
        let rep = ProfileReport {
            roots: vec![mk("hot", 100), mk("warm", 50), mk("cold", 1)],
            ..ProfileReport::default()
        };
        let v = rep.to_value_capped(2);
        let back = ProfileReport::from_value(&v).expect("parses");
        assert_eq!(back.roots.len(), 2);
        assert_eq!(back.roots[0].name, "hot");
        assert_eq!(back.roots[1].name, "warm");
    }

    #[test]
    fn chrome_trace_tiles_children_inside_parents() {
        let rep = ProfileReport {
            roots: vec![ScopeStat {
                name: "root".into(),
                calls: 1,
                incl_ns: 10_000,
                excl_ns: 4_000,
                children: vec![
                    ScopeStat {
                        name: "a".into(),
                        calls: 1,
                        incl_ns: 4_000,
                        excl_ns: 4_000,
                        ..ScopeStat::default()
                    },
                    ScopeStat {
                        name: "b".into(),
                        calls: 1,
                        incl_ns: 2_000,
                        excl_ns: 2_000,
                        ..ScopeStat::default()
                    },
                ],
                ..ScopeStat::default()
            }],
            ..ProfileReport::default()
        };
        let text = serde_json::to_string(&rep.chrome_trace()).unwrap();
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"root\""));
    }

    #[test]
    fn renderers_mention_scope_names() {
        let rep = ProfileReport {
            wall_ns: 1_000_000,
            roots: vec![ScopeStat {
                name: "route/lookup".into(),
                calls: 42,
                incl_ns: 900_000,
                excl_ns: 900_000,
                allocs: 3,
                alloc_bytes: 96,
                children: Vec::new(),
            }],
            ..ProfileReport::default()
        };
        assert!(rep.render_tree().contains("route/lookup"));
        assert!(rep.render_hot(10).contains("route/lookup"));
        assert!(rep.render_alloc(10).contains("route/lookup"));
    }
}
