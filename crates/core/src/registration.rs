//! The mobile-host ↔ home-agent registration protocol.
//!
//! A simplified rendering of the IETF draft the paper builds on (\[Per96a\],
//! which became RFC 2002): UDP port 434, a Registration Request carrying
//! (home address, home agent, care-of address, lifetime, identification)
//! and a Registration Reply with a result code. A lifetime of zero is a
//! deregistration, sent when the mobile host returns home.
//!
//! Omitted from the draft: authentication extensions (the simulator has no
//! adversary) and foreign-agent relay flags (handled by the foreign agent
//! module rewriting the care-of address).

use netsim::wire::ParseError;
use netsim::Ipv4Addr;

/// UDP port for registration traffic (IANA, as in the draft).
pub const REGISTRATION_PORT: u16 = 434;

/// Wire length of a request.
pub const REQUEST_LEN: usize = 24;
/// Wire length of a reply.
pub const REPLY_LEN: usize = 20;

/// Registration Request (type 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrationRequest {
    /// Seconds the binding should remain valid; 0 deregisters.
    pub lifetime: u16,
    /// The mobile's permanent home address.
    pub home_address: Ipv4Addr,
    /// The agent being asked to serve (echoed in replies).
    pub home_agent: Ipv4Addr,
    /// Where tunnelled packets should be sent.
    pub care_of: Ipv4Addr,
    /// Matches replies to requests (and, in the real protocol, provides
    /// replay protection).
    pub ident: u64,
}

/// Result code in a reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCode {
    /// Binding installed (or deregistration honoured).
    Accepted,
    /// The agent refuses service (unknown home address, etc.).
    Denied,
}

/// Registration Reply (type 3, as in the draft).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrationReply {
    /// Whether the request was accepted.
    pub code: ReplyCode,
    /// Lifetime actually granted (may be shorter than requested).
    pub lifetime: u16,
    /// The mobile's permanent home address.
    pub home_address: Ipv4Addr,
    /// The agent being asked to serve (echoed in replies).
    pub home_agent: Ipv4Addr,
    /// Echo of the request identification.
    pub ident: u64,
}

impl RegistrationRequest {
    /// Is this a deregistration (mobile host back home)?
    pub fn is_deregistration(&self) -> bool {
        self.lifetime == 0
    }

    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(REQUEST_LEN);
        self.emit_into(&mut b);
        b
    }

    /// Serialize into a caller-provided buffer, appending [`REQUEST_LEN`]
    /// bytes. Mass-registration drivers reuse one buffer across thousands
    /// of requests instead of allocating per packet.
    pub fn emit_into(&self, b: &mut Vec<u8>) {
        b.reserve(REQUEST_LEN);
        b.push(1); // type
        b.push(0); // flags (no FA relay, no minimal-encap request)
        b.extend_from_slice(&self.lifetime.to_be_bytes());
        b.extend_from_slice(&self.home_address.octets());
        b.extend_from_slice(&self.home_agent.octets());
        b.extend_from_slice(&self.care_of.octets());
        b.extend_from_slice(&self.ident.to_be_bytes());
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<RegistrationRequest, ParseError> {
        if data.len() < REQUEST_LEN {
            return Err(ParseError::Truncated {
                needed: REQUEST_LEN,
                got: data.len(),
            });
        }
        if data[0] != 1 {
            return Err(ParseError::BadField {
                what: "registration type",
                value: u64::from(data[0]),
            });
        }
        Ok(RegistrationRequest {
            lifetime: u16::from_be_bytes([data[2], data[3]]),
            home_address: Ipv4Addr::from_octets([data[4], data[5], data[6], data[7]]),
            home_agent: Ipv4Addr::from_octets([data[8], data[9], data[10], data[11]]),
            care_of: Ipv4Addr::from_octets([data[12], data[13], data[14], data[15]]),
            ident: u64::from_be_bytes(data[16..24].try_into().unwrap()),
        })
    }
}

impl RegistrationReply {
    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(REPLY_LEN);
        b.push(3); // type
        b.push(match self.code {
            ReplyCode::Accepted => 0,
            ReplyCode::Denied => 128,
        });
        b.extend_from_slice(&self.lifetime.to_be_bytes());
        b.extend_from_slice(&self.home_address.octets());
        b.extend_from_slice(&self.home_agent.octets());
        b.extend_from_slice(&self.ident.to_be_bytes());
        b
    }

    /// Parse from wire bytes.
    pub fn parse(data: &[u8]) -> Result<RegistrationReply, ParseError> {
        if data.len() < REPLY_LEN {
            return Err(ParseError::Truncated {
                needed: REPLY_LEN,
                got: data.len(),
            });
        }
        if data[0] != 3 {
            return Err(ParseError::BadField {
                what: "registration type",
                value: u64::from(data[0]),
            });
        }
        let code = match data[1] {
            0 => ReplyCode::Accepted,
            128 => ReplyCode::Denied,
            other => {
                return Err(ParseError::BadField {
                    what: "registration reply code",
                    value: u64::from(other),
                })
            }
        };
        Ok(RegistrationReply {
            code,
            lifetime: u16::from_be_bytes([data[2], data[3]]),
            home_address: Ipv4Addr::from_octets([data[4], data[5], data[6], data[7]]),
            home_agent: Ipv4Addr::from_octets([data[8], data[9], data[10], data[11]]),
            ident: u64::from_be_bytes(data[12..20].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn request() -> RegistrationRequest {
        RegistrationRequest {
            lifetime: 300,
            home_address: ip("171.64.15.9"),
            home_agent: ip("171.64.15.1"),
            care_of: ip("36.186.0.99"),
            ident: 0xdead_beef_0000_0001,
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = request();
        let wire = r.emit();
        assert_eq!(wire.len(), REQUEST_LEN);
        assert_eq!(RegistrationRequest::parse(&wire).unwrap(), r);
        assert!(!r.is_deregistration());
    }

    #[test]
    fn deregistration_is_lifetime_zero() {
        let r = RegistrationRequest {
            lifetime: 0,
            ..request()
        };
        assert!(r.is_deregistration());
        assert!(RegistrationRequest::parse(&r.emit())
            .unwrap()
            .is_deregistration());
    }

    #[test]
    fn reply_roundtrip_both_codes() {
        for code in [ReplyCode::Accepted, ReplyCode::Denied] {
            let r = RegistrationReply {
                code,
                lifetime: 120,
                home_address: ip("171.64.15.9"),
                home_agent: ip("171.64.15.1"),
                ident: 42,
            };
            let wire = r.emit();
            assert_eq!(wire.len(), REPLY_LEN);
            assert_eq!(RegistrationReply::parse(&wire).unwrap(), r);
        }
    }

    #[test]
    fn parsers_reject_wrong_type_and_truncation() {
        let req = request().emit();
        assert!(RegistrationRequest::parse(&req[..20]).is_err());
        assert!(
            RegistrationReply::parse(&req).is_err(),
            "type 1 is not a reply"
        );
        let mut bad = req.clone();
        bad[0] = 9;
        assert!(RegistrationRequest::parse(&bad).is_err());
    }
}
